//! A minimal JSON document model with a deterministic serializer.
//!
//! Object fields keep their insertion order (a `Vec` of pairs, not a map),
//! so the serialized bytes are a pure function of construction order.
//! Floats are rendered with Rust's shortest-roundtrip formatting, which is
//! deterministic for identical bit patterns; non-finite values become
//! `null` (JSON has no NaN/Infinity).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A float, rendered shortest-roundtrip (`null` when non-finite).
    Num(f64),
    /// An unsigned integer, rendered exactly.
    UInt(u64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields serialize in the order given.
    Obj(Vec<(String, Json)>),
    /// A pre-rendered JSON fragment, emitted verbatim. Used for exact
    /// decimal numbers (e.g. nanosecond counts rendered as microseconds)
    /// that `f64` formatting could distort.
    Raw(String),
}

impl Json {
    /// Convenience constructor for an object from `&str` keys.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes into `out` (compact, no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                    // `{}` omits the decimal point for integral floats;
                    // that is still a valid JSON number.
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(n) => out.push_str(&format!("{n}")),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Raw(s) => out.push_str(s),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::UInt(42).to_string(), "42");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Raw("12.345".into()).to_string(), "12.345");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).to_string(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn containers_preserve_order() {
        let j = Json::obj(vec![
            ("z", Json::UInt(1)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(j.to_string(), r#"{"z":1,"a":[null,false]}"#);
    }
}
