//! Window derivation and export for the continuous telemetry plane.
//!
//! The simulator records telemetry as *events* — timestamped counter
//! deltas, gauge levels and latency samples (see `fractos_sim::telemetry`).
//! This module turns a canonically-sorted event list into periodic time
//! series (one row per virtual-time window) and renders them three ways:
//!
//! * [`TelemetryReport::to_json`] — the `BENCH_telemetry.json` document;
//! * [`TelemetryReport::prometheus`] — Prometheus text exposition
//!   (counters, gauges, and summary quantiles over the whole run);
//! * [`TelemetryReport::jsonl`] — one JSON object per `(series, window)`
//!   row, keys in sorted order, every time/value an integer (nanoseconds).
//!
//! Derivation is a pure function of the events: counter deltas and
//! samples fold order-independently per window, gauges keep the last
//! value in canonical `(time, series, actor, ord)` order. Series under
//! the `runtime.` prefix describe the engine itself (queue depths,
//! barrier rounds) and legitimately differ between backends; exports
//! exclude them unless explicitly asked, so everything written to
//! byte-compared artifacts is identical across backends, repeat runs and
//! chaos plans.

use std::collections::BTreeMap;

use fractos_sim::{SimDuration, StreamHist, TelemetryEvent, TelemetryKind};

use crate::json::Json;

/// What one derived series holds per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Summed counter deltas.
    Count,
    /// Last gauge level in the window.
    Gauge,
    /// A streaming histogram of samples.
    Sample,
}

impl SeriesKind {
    fn name(self) -> &'static str {
        match self {
            SeriesKind::Count => "count",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Sample => "sample",
        }
    }
}

/// Per-window value of one series.
#[derive(Debug, Clone)]
pub enum WindowValue {
    /// Sum of counter deltas in the window.
    Count(u64),
    /// Last gauge level observed in the window.
    Gauge(u64),
    /// Histogram of the window's samples.
    Hist(StreamHist),
}

/// One derived series: its kind and the non-empty windows, keyed by
/// window start (nanoseconds of virtual time).
#[derive(Debug, Clone)]
pub struct Series {
    /// The series kind (fixed by the first event seen).
    pub kind: SeriesKind,
    /// Window start (ns) → value. Only windows with events appear.
    pub windows: BTreeMap<u64, WindowValue>,
}

impl Series {
    /// Total over the run: summed deltas for counters, last level for
    /// gauges, merged histogram for samples.
    pub fn total(&self) -> WindowValue {
        match self.kind {
            SeriesKind::Count => WindowValue::Count(
                self.windows
                    .values()
                    .map(|w| match w {
                        WindowValue::Count(c) => *c,
                        _ => 0,
                    })
                    .sum(),
            ),
            SeriesKind::Gauge => {
                WindowValue::Gauge(self.windows.values().next_back().map_or(0, |w| match w {
                    WindowValue::Gauge(g) => *g,
                    _ => 0,
                }))
            }
            SeriesKind::Sample => {
                let mut h = StreamHist::new();
                for w in self.windows.values() {
                    if let WindowValue::Hist(wh) = w {
                        h.merge_from(wh);
                    }
                }
                WindowValue::Hist(h)
            }
        }
    }
}

/// Periodic time series derived from the telemetry plane's event log.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Sampling window width in nanoseconds of virtual time.
    pub period_ns: u64,
    /// Derived series, name-ordered.
    pub series: BTreeMap<String, Series>,
}

impl TelemetryReport {
    /// Buckets `events` (must be canonically sorted; `Runtime::
    /// take_telemetry` and `Testbed::take_telemetry` return them that way)
    /// into windows of `period`.
    pub fn derive(events: &[TelemetryEvent], period: SimDuration) -> Self {
        let period_ns = period.as_nanos().max(1);
        let mut series: BTreeMap<String, Series> = BTreeMap::new();
        for ev in events {
            let window = (ev.time.as_nanos() / period_ns) * period_ns;
            let kind = match ev.kind {
                TelemetryKind::Count(_) => SeriesKind::Count,
                TelemetryKind::Gauge(_) => SeriesKind::Gauge,
                TelemetryKind::Sample(_) => SeriesKind::Sample,
            };
            let entry = series.entry(ev.series.clone()).or_insert_with(|| Series {
                kind,
                windows: BTreeMap::new(),
            });
            // A series name must carry one kind; a mismatch is an
            // instrumentation bug. Skip rather than corrupt the window.
            if entry.kind != kind {
                debug_assert!(false, "telemetry series {} changed kind", ev.series);
                continue;
            }
            match ev.kind {
                TelemetryKind::Count(d) => {
                    let slot = entry.windows.entry(window).or_insert(WindowValue::Count(0));
                    if let WindowValue::Count(c) = slot {
                        *c += d;
                    }
                }
                TelemetryKind::Gauge(v) => {
                    // Events arrive in canonical order, so overwriting
                    // keeps the last value of the window.
                    entry.windows.insert(window, WindowValue::Gauge(v));
                }
                TelemetryKind::Sample(v) => {
                    let slot = entry
                        .windows
                        .entry(window)
                        .or_insert_with(|| WindowValue::Hist(StreamHist::new()));
                    if let WindowValue::Hist(h) = slot {
                        h.record(v);
                    }
                }
            }
        }
        TelemetryReport { period_ns, series }
    }

    fn visible(&self, include_runtime: bool) -> impl Iterator<Item = (&String, &Series)> {
        self.series
            .iter()
            .filter(move |(name, _)| include_runtime || !name.starts_with("runtime."))
    }

    /// The `BENCH_telemetry.json` document: period, then every series with
    /// its windows. All values are integers (nanoseconds / raw counts), so
    /// the bytes are identical across backends and repeat runs.
    pub fn to_json(&self, include_runtime: bool) -> Json {
        let series = self
            .visible(include_runtime)
            .map(|(name, s)| {
                let windows = s.windows.iter().map(|(t, w)| window_json(*t, w)).collect();
                (
                    name.clone(),
                    Json::obj(vec![
                        ("kind", Json::Str(s.kind.name().to_string())),
                        ("windows", Json::Arr(windows)),
                    ]),
                )
            })
            .collect();
        Json::obj(vec![
            ("period_ns", Json::UInt(self.period_ns)),
            ("series", Json::Obj(series)),
        ])
    }

    /// Prometheus text exposition of the run totals: counters as
    /// `fractos_counter_total`, gauges as `fractos_gauge` (final level),
    /// sample series as `fractos_sample` summaries with exact-bucket
    /// p50/p95/p99/p99.9. Deterministic: series iterate name-ordered and
    /// every value is an integer.
    pub fn prometheus(&self, include_runtime: bool) -> String {
        let mut out = String::new();
        out.push_str("# HELP fractos_counter_total Counter total over the run.\n");
        out.push_str("# TYPE fractos_counter_total counter\n");
        for (name, s) in self.visible(include_runtime) {
            if let WindowValue::Count(c) = s.total() {
                out.push_str(&format!("fractos_counter_total{{series=\"{name}\"}} {c}\n"));
            }
        }
        out.push_str("# HELP fractos_gauge Final gauge level.\n");
        out.push_str("# TYPE fractos_gauge gauge\n");
        for (name, s) in self.visible(include_runtime) {
            if let WindowValue::Gauge(g) = s.total() {
                out.push_str(&format!("fractos_gauge{{series=\"{name}\"}} {g}\n"));
            }
        }
        out.push_str("# HELP fractos_sample Streaming-histogram summary of sampled values.\n");
        out.push_str("# TYPE fractos_sample summary\n");
        for (name, s) in self.visible(include_runtime) {
            if let WindowValue::Hist(h) = s.total() {
                for (q, v) in [
                    ("0.5", h.p50()),
                    ("0.95", h.p95()),
                    ("0.99", h.p99()),
                    ("0.999", h.p999()),
                ] {
                    out.push_str(&format!(
                        "fractos_sample{{series=\"{name}\",quantile=\"{q}\"}} {v}\n"
                    ));
                }
                out.push_str(&format!(
                    "fractos_sample_sum{{series=\"{name}\"}} {}\n",
                    h.sum()
                ));
                out.push_str(&format!(
                    "fractos_sample_count{{series=\"{name}\"}} {}\n",
                    h.count()
                ));
            }
        }
        out
    }

    /// Structured JSONL: one object per `(series, window)` row, keys in
    /// sorted order, all values integers. Rows iterate name- then
    /// time-ordered.
    pub fn jsonl(&self, include_runtime: bool) -> String {
        let mut out = String::new();
        for (name, s) in self.visible(include_runtime) {
            for (t, w) in &s.windows {
                let mut fields: Vec<(&str, Json)> = vec![
                    ("kind", Json::Str(s.kind.name().to_string())),
                    ("series", Json::Str(name.clone())),
                    ("t_ns", Json::UInt(*t)),
                ];
                match w {
                    WindowValue::Count(c) => fields.push(("value", Json::UInt(*c))),
                    WindowValue::Gauge(g) => fields.push(("value", Json::UInt(*g))),
                    WindowValue::Hist(h) => {
                        // Sorted key order: count < kind < max < p50 <
                        // p95 < p99 < series < t_ns.
                        fields = vec![
                            ("count", Json::UInt(h.count())),
                            ("kind", Json::Str(s.kind.name().to_string())),
                            ("max", Json::UInt(h.max())),
                            ("p50", Json::UInt(h.p50())),
                            ("p95", Json::UInt(h.p95())),
                            ("p99", Json::UInt(h.p99())),
                            ("series", Json::Str(name.clone())),
                            ("t_ns", Json::UInt(*t)),
                        ];
                    }
                }
                out.push_str(&Json::obj(fields).to_string());
                out.push('\n');
            }
        }
        out
    }

    /// A compact fixed-width terminal table of the run totals (the Fig 2
    /// bench prints it when telemetry is enabled).
    pub fn summary_table(&self, include_runtime: bool) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "series", "kind", "total", "p50", "p99", "max"
        ));
        for (name, s) in self.visible(include_runtime) {
            match s.total() {
                WindowValue::Count(c) => out.push_str(&format!(
                    "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                    name, "count", c, "-", "-", "-"
                )),
                WindowValue::Gauge(g) => out.push_str(&format!(
                    "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                    name, "gauge", g, "-", "-", "-"
                )),
                WindowValue::Hist(h) => out.push_str(&format!(
                    "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                    name,
                    "sample",
                    h.count(),
                    h.p50(),
                    h.p99(),
                    h.max()
                )),
            }
        }
        out
    }
}

fn window_json(t: u64, w: &WindowValue) -> Json {
    match w {
        WindowValue::Count(c) => {
            Json::obj(vec![("t_ns", Json::UInt(t)), ("value", Json::UInt(*c))])
        }
        WindowValue::Gauge(g) => {
            Json::obj(vec![("t_ns", Json::UInt(t)), ("value", Json::UInt(*g))])
        }
        WindowValue::Hist(h) => Json::obj(vec![
            ("t_ns", Json::UInt(t)),
            ("count", Json::UInt(h.count())),
            ("p50", Json::UInt(h.p50())),
            ("p95", Json::UInt(h.p95())),
            ("p99", Json::UInt(h.p99())),
            ("max", Json::UInt(h.max())),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractos_sim::{ActorId, SimTime, TelemetryStore};

    fn events() -> Vec<TelemetryEvent> {
        let mut s = TelemetryStore::new();
        let a = ActorId::from_raw(0);
        s.record(
            a,
            SimTime::from_nanos(10),
            "c".into(),
            TelemetryKind::Count(2),
        );
        s.record(
            a,
            SimTime::from_nanos(20),
            "c".into(),
            TelemetryKind::Count(3),
        );
        s.record(
            a,
            SimTime::from_nanos(120),
            "c".into(),
            TelemetryKind::Count(5),
        );
        s.record(
            a,
            SimTime::from_nanos(30),
            "g".into(),
            TelemetryKind::Gauge(7),
        );
        s.record(
            a,
            SimTime::from_nanos(40),
            "g".into(),
            TelemetryKind::Gauge(4),
        );
        s.record(
            a,
            SimTime::from_nanos(50),
            "lat".into(),
            TelemetryKind::Sample(100),
        );
        s.record(
            a,
            SimTime::from_nanos(60),
            "lat".into(),
            TelemetryKind::Sample(200),
        );
        s.record(
            a,
            SimTime::from_nanos(70),
            "runtime.q".into(),
            TelemetryKind::Gauge(9),
        );
        let mut events = s.take();
        fractos_sim::sort_canonical_telemetry(&mut events);
        events
    }

    #[test]
    fn windows_bucket_by_period() {
        let r = TelemetryReport::derive(&events(), SimDuration::from_nanos(100));
        let c = &r.series["c"];
        assert_eq!(c.windows.len(), 2);
        assert!(matches!(c.windows[&0], WindowValue::Count(5)));
        assert!(matches!(c.windows[&100], WindowValue::Count(5)));
        let g = &r.series["g"];
        assert!(matches!(g.windows[&0], WindowValue::Gauge(4)));
        let lat = &r.series["lat"];
        let WindowValue::Hist(h) = &lat.windows[&0] else {
            panic!("sample series must hold a histogram");
        };
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn totals_fold_over_windows() {
        let r = TelemetryReport::derive(&events(), SimDuration::from_nanos(100));
        assert!(matches!(r.series["c"].total(), WindowValue::Count(10)));
        assert!(matches!(r.series["g"].total(), WindowValue::Gauge(4)));
        let WindowValue::Hist(h) = r.series["lat"].total() else {
            panic!("sample total must be a histogram");
        };
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 200);
    }

    #[test]
    fn exports_exclude_runtime_namespace_by_default() {
        let r = TelemetryReport::derive(&events(), SimDuration::from_nanos(100));
        let json = r.to_json(false).to_string();
        assert!(!json.contains("runtime.q"));
        assert!(r.to_json(true).to_string().contains("runtime.q"));
        let prom = r.prometheus(false);
        assert!(!prom.contains("runtime.q"));
        assert!(prom.contains("fractos_counter_total{series=\"c\"} 10"));
        assert!(prom.contains("fractos_gauge{series=\"g\"} 4"));
        assert!(prom.contains("fractos_sample_count{series=\"lat\"} 2"));
        let jsonl = r.jsonl(false);
        assert!(!jsonl.contains("runtime.q"));
    }

    #[test]
    fn jsonl_rows_are_sorted_key_integer_valued() {
        let r = TelemetryReport::derive(&events(), SimDuration::from_nanos(100));
        let jsonl = r.jsonl(false);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            r#"{"kind":"count","series":"c","t_ns":0,"value":5}"#
        );
        assert_eq!(
            lines[1],
            r#"{"kind":"count","series":"c","t_ns":100,"value":5}"#
        );
        assert_eq!(
            lines[2],
            r#"{"kind":"gauge","series":"g","t_ns":0,"value":4}"#
        );
        assert!(lines[3].starts_with(r#"{"count":2,"kind":"sample","max":"#));
        assert!(lines[3].contains(r#""series":"lat","t_ns":0"#));
    }

    #[test]
    fn derivation_is_independent_of_order_free_event_order() {
        // Counter and sample events may arrive in any order (shards race
        // to the shared fabric): the derived report must not change.
        let mut fwd = events();
        let mut rev: Vec<TelemetryEvent> = fwd.clone();
        rev.reverse();
        // Gauges rely on canonical order; restore it for the gauge
        // series only by re-sorting (counters/samples stay reversed
        // within equal keys — the point of the test).
        fractos_sim::sort_canonical_telemetry(&mut fwd);
        fractos_sim::sort_canonical_telemetry(&mut rev);
        let a = TelemetryReport::derive(&fwd, SimDuration::from_nanos(100));
        let b = TelemetryReport::derive(&rev, SimDuration::from_nanos(100));
        assert_eq!(a.to_json(true).to_string(), b.to_json(true).to_string());
    }

    #[test]
    fn summary_table_lists_each_series() {
        let r = TelemetryReport::derive(&events(), SimDuration::from_nanos(100));
        let table = r.summary_table(false);
        assert!(table.contains("series"));
        assert!(table.contains("lat"));
        assert!(!table.contains("runtime.q"));
    }
}
