//! Chrome Trace Event export (loadable in `chrome://tracing` and Perfetto).
//!
//! Spans become complete (`"ph":"X"`) events on one process (`pid` 0) with
//! one thread per simulation actor (`tid` = actor index). Timestamps and
//! durations are microseconds; they are rendered from the integer
//! nanosecond counts with integer arithmetic (three decimal places), so the
//! output is byte-identical across runtime backends and repeat runs.

use fractos_sim::SpanRecord;

use crate::json::Json;

/// Renders integer nanoseconds as a decimal-microsecond JSON number.
fn micros(ns: u64) -> Json {
    Json::Raw(format!("{}.{:03}", ns / 1000, ns % 1000))
}

/// Builds the Chrome Trace Event document for `spans`.
///
/// `spans` must be in the canonical order produced by
/// [`fractos_sim::Runtime::take_spans`]; events are emitted in that order,
/// after one `thread_name` metadata event per participating actor (in
/// actor-index order). `actor_name` maps an actor index to its registered
/// name (pass [`fractos_sim::Runtime::actor_name`] through a closure).
pub fn chrome_trace(spans: &[SpanRecord], mut actor_name: impl FnMut(usize) -> String) -> Json {
    let mut actors: Vec<usize> = spans.iter().map(|s| s.actor.index()).collect();
    actors.sort_unstable();
    actors.dedup();

    let mut events = Vec::with_capacity(actors.len() + spans.len());
    for idx in actors {
        events.push(Json::obj(vec![
            ("ph", Json::Str("M".into())),
            ("pid", Json::UInt(0)),
            ("tid", Json::UInt(idx as u64)),
            ("name", Json::Str("thread_name".into())),
            (
                "args",
                Json::obj(vec![("name", Json::Str(actor_name(idx)))]),
            ),
        ]));
    }
    for s in spans {
        let start = s.start.as_nanos();
        let dur = s.end.as_nanos().saturating_sub(start);
        events.push(Json::obj(vec![
            ("ph", Json::Str("X".into())),
            ("pid", Json::UInt(0)),
            ("tid", Json::UInt(s.actor.index() as u64)),
            ("ts", micros(start)),
            ("dur", micros(dur)),
            ("name", Json::Str(format!("{}:{}", s.kind.name(), s.label))),
            ("cat", Json::Str(s.kind.name().into())),
            (
                "args",
                Json::obj(vec![
                    ("trace", Json::Str(format!("{:016x}", s.trace))),
                    ("span", Json::Str(format!("{:016x}", s.id))),
                    ("parent", Json::Str(format!("{:016x}", s.parent))),
                ]),
            ),
        ]));
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractos_sim::{SpanKind, SpanStore, TraceCtx};

    #[test]
    fn micros_uses_integer_arithmetic() {
        assert_eq!(micros(0).to_string(), "0.000");
        assert_eq!(micros(1).to_string(), "0.001");
        assert_eq!(micros(12_345).to_string(), "12.345");
        assert_eq!(micros(3_000_000).to_string(), "3000.000");
    }

    #[test]
    fn trace_document_shape() {
        let a = fractos_sim::ActorId::from_raw(3);
        let mut store = SpanStore::new(7);
        let root = store.record(
            a,
            SpanKind::Syscall,
            "null".into(),
            TraceCtx::NONE,
            fractos_sim::SimTime::from_nanos(10),
            fractos_sim::SimTime::from_nanos(10),
        );
        store.record(
            a,
            SpanKind::FabricProp,
            "hop".into(),
            root,
            fractos_sim::SimTime::from_nanos(10),
            fractos_sim::SimTime::from_nanos(1510),
        );
        let spans = store.take();
        let doc = chrome_trace(&spans, |i| format!("actor{i}")).to_string();
        assert!(doc.starts_with(r#"{"traceEvents":["#));
        assert!(doc.contains(r#""name":"thread_name""#));
        assert!(doc.contains(r#""name":"syscall:null""#));
        assert!(doc.contains(r#""dur":1.500"#));
        assert!(doc.contains(r#""ts":0.010"#));
    }
}
