//! Critical-path analysis: decomposes each request's end-to-end latency
//! into network, device and control-plane components.
//!
//! The decomposition is a priority interval coverage over the request's
//! span tree: every instant in the trace window (first span start to last
//! span end) is attributed to exactly one component, with device time
//! winning over network time winning over control time where spans overlap;
//! instants covered by no span are `other` (e.g. the continuation waiting
//! in the destination actor's event queue). All arithmetic is on the
//! simulator's integer nanoseconds, so the components of each request sum
//! *exactly* to its end-to-end latency.

use fractos_sim::{SpanKind, SpanRecord};

/// Attribution component, in coverage priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Component {
    Device,
    Network,
    Control,
}

fn component(kind: SpanKind) -> Component {
    match kind {
        SpanKind::Device => Component::Device,
        SpanKind::FabricSer
        | SpanKind::FabricProp
        | SpanKind::Data
        | SpanKind::Retransmit
        | SpanKind::Fault => Component::Network,
        SpanKind::Syscall
        | SpanKind::Control
        | SpanKind::Deliver
        | SpanKind::Integrity
        | SpanKind::Recovery => Component::Control,
    }
}

/// Per-request latency attribution. All fields are nanoseconds;
/// `network_ns + device_ns + control_ns + other_ns == total_ns` exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// The trace (root span) id this breakdown describes.
    pub trace: u64,
    /// End-to-end latency: last span end minus first span start.
    pub total_ns: u64,
    /// Time attributed to the fabric (serialization, propagation, data
    /// movement, retransmit backoff).
    pub network_ns: u64,
    /// Time attributed to device processing (GPU/NVMe service time).
    pub device_ns: u64,
    /// Time attributed to the control plane (Controller validation and
    /// processing, syscall issue, delivery).
    pub control_ns: u64,
    /// Residual time covered by no span (queueing between events).
    pub other_ns: u64,
}

/// Analyzes spans (canonical order from
/// [`fractos_sim::Runtime::take_spans`]) into one [`PhaseBreakdown`] per
/// trace, in order of each trace's first span.
pub fn analyze(spans: &[SpanRecord]) -> Vec<PhaseBreakdown> {
    let mut order: Vec<u64> = Vec::new();
    for s in spans {
        if !order.contains(&s.trace) {
            order.push(s.trace);
        }
    }
    order
        .into_iter()
        .map(|trace| {
            let members: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace == trace).collect();
            analyze_one(trace, &members)
        })
        .collect()
}

fn analyze_one(trace: u64, members: &[&SpanRecord]) -> PhaseBreakdown {
    let lo = members
        .iter()
        .map(|s| s.start.as_nanos())
        .min()
        .unwrap_or(0);
    let hi = members.iter().map(|s| s.end.as_nanos()).max().unwrap_or(0);
    // Elementary segments between consecutive span boundaries; each segment
    // is wholly covered (or not) by any given span.
    let mut cuts: Vec<u64> = members
        .iter()
        .flat_map(|s| [s.start.as_nanos(), s.end.as_nanos()])
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let (mut device, mut network, mut control) = (0u64, 0u64, 0u64);
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let covered = |c: Component| {
            members
                .iter()
                .any(|s| component(s.kind) == c && s.start.as_nanos() <= a && s.end.as_nanos() >= b)
        };
        let len = b - a;
        if covered(Component::Device) {
            device += len;
        } else if covered(Component::Network) {
            network += len;
        } else if covered(Component::Control) {
            control += len;
        }
    }
    let total = hi - lo;
    PhaseBreakdown {
        trace,
        total_ns: total,
        network_ns: network,
        device_ns: device,
        control_ns: control,
        other_ns: total - network - device - control,
    }
}

/// Aggregate of many [`PhaseBreakdown`]s (sums, in nanoseconds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Number of requests aggregated.
    pub requests: u64,
    /// Sum of end-to-end latencies.
    pub total_ns: u64,
    /// Sum of network components.
    pub network_ns: u64,
    /// Sum of device components.
    pub device_ns: u64,
    /// Sum of control-plane components.
    pub control_ns: u64,
    /// Sum of residuals.
    pub other_ns: u64,
}

/// Sums per-request breakdowns; the component sums still add up exactly to
/// `total_ns`.
pub fn aggregate(breakdowns: &[PhaseBreakdown]) -> PhaseTotals {
    let mut t = PhaseTotals::default();
    for b in breakdowns {
        t.requests += 1;
        t.total_ns += b.total_ns;
        t.network_ns += b.network_ns;
        t.device_ns += b.device_ns;
        t.control_ns += b.control_ns;
        t.other_ns += b.other_ns;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractos_sim::{ActorId, SimTime, SpanStore, TraceCtx};

    fn span(
        store: &mut SpanStore,
        kind: SpanKind,
        parent: TraceCtx,
        start: u64,
        end: u64,
    ) -> TraceCtx {
        store.record(
            ActorId::from_raw(0),
            kind,
            "t".into(),
            parent,
            SimTime::from_nanos(start),
            SimTime::from_nanos(end),
        )
    }

    #[test]
    fn components_sum_exactly_with_overlap_and_gaps() {
        let mut store = SpanStore::new(1);
        let root = span(&mut store, SpanKind::Syscall, TraceCtx::NONE, 100, 100);
        // Network 100..300 overlapping control 150..400; device 500..900;
        // nothing covers 400..500 and 900..1000.
        let hop = span(&mut store, SpanKind::FabricProp, root, 100, 300);
        span(&mut store, SpanKind::Control, hop, 150, 400);
        let dev = span(&mut store, SpanKind::Device, hop, 500, 900);
        span(&mut store, SpanKind::Control, dev, 1000, 1000);
        let spans = store.take();
        let b = &analyze(&spans)[0];
        assert_eq!(b.total_ns, 900);
        assert_eq!(b.network_ns, 200);
        assert_eq!(b.control_ns, 100);
        assert_eq!(b.device_ns, 400);
        assert_eq!(b.other_ns, 200);
        assert_eq!(
            b.network_ns + b.device_ns + b.control_ns + b.other_ns,
            b.total_ns
        );
    }

    #[test]
    fn device_wins_over_network_wins_over_control() {
        let mut store = SpanStore::new(2);
        let root = span(&mut store, SpanKind::Syscall, TraceCtx::NONE, 0, 0);
        span(&mut store, SpanKind::Control, root, 0, 100);
        span(&mut store, SpanKind::FabricSer, root, 0, 100);
        span(&mut store, SpanKind::Device, root, 0, 50);
        let spans = store.take();
        let b = &analyze(&spans)[0];
        assert_eq!(b.device_ns, 50);
        assert_eq!(b.network_ns, 50);
        assert_eq!(b.control_ns, 0);
    }

    #[test]
    fn empty_span_list_yields_no_breakdowns() {
        let bs = analyze(&[]);
        assert!(bs.is_empty());
        let t = aggregate(&bs);
        assert_eq!(t, PhaseTotals::default());
    }

    #[test]
    fn single_span_request_attributes_everything_to_its_component() {
        let mut store = SpanStore::new(7);
        span(&mut store, SpanKind::Device, TraceCtx::NONE, 100, 400);
        let spans = store.take();
        let bs = analyze(&spans);
        assert_eq!(bs.len(), 1);
        let b = &bs[0];
        assert_eq!(b.total_ns, 300);
        assert_eq!(b.device_ns, 300);
        assert_eq!(b.network_ns + b.control_ns + b.other_ns, 0);
        assert_eq!(
            b.network_ns + b.device_ns + b.control_ns + b.other_ns,
            b.total_ns
        );
    }

    #[test]
    fn zero_width_single_span_is_a_zero_total() {
        let mut store = SpanStore::new(8);
        span(&mut store, SpanKind::Syscall, TraceCtx::NONE, 50, 50);
        let spans = store.take();
        let b = &analyze(&spans)[0];
        assert_eq!(b.total_ns, 0);
        assert_eq!(b.other_ns, 0);
    }

    #[test]
    fn recovery_span_tree_sums_exactly() {
        // Shape of a crash-plan trace: a request hits a dead peer, burns a
        // retransmit window, then a Recovery span covers failover to the
        // replica before a device finishes the work.
        let mut store = SpanStore::new(9);
        let root = span(&mut store, SpanKind::Syscall, TraceCtx::NONE, 0, 0);
        let hop = span(&mut store, SpanKind::FabricProp, root, 0, 200);
        span(&mut store, SpanKind::Fault, hop, 200, 200);
        span(&mut store, SpanKind::Retransmit, hop, 200, 500);
        let rec = span(&mut store, SpanKind::Recovery, hop, 500, 900);
        // Recovery overlaps the replica's device work; device wins.
        span(&mut store, SpanKind::Device, rec, 700, 900);
        // Residual queueing before the reply closes the trace.
        span(&mut store, SpanKind::Deliver, rec, 950, 1000);
        let spans = store.take();
        let b = &analyze(&spans)[0];
        assert_eq!(b.total_ns, 1000);
        assert_eq!(b.network_ns, 500); // hop 0..200 + retransmit 200..500
        assert_eq!(b.control_ns, 250); // recovery 500..700 + deliver 950..1000
        assert_eq!(b.device_ns, 200);
        assert_eq!(b.other_ns, 50); // 900..950 covered by nothing
        assert_eq!(
            b.network_ns + b.device_ns + b.control_ns + b.other_ns,
            b.total_ns
        );
    }

    #[test]
    fn traces_separate_and_aggregate() {
        let mut store = SpanStore::new(3);
        let r1 = span(&mut store, SpanKind::Syscall, TraceCtx::NONE, 0, 0);
        span(&mut store, SpanKind::FabricProp, r1, 0, 10);
        let r2 = span(&mut store, SpanKind::Syscall, TraceCtx::NONE, 100, 100);
        span(&mut store, SpanKind::Device, r2, 100, 130);
        let spans = store.take();
        let bs = analyze(&spans);
        assert_eq!(bs.len(), 2);
        let t = aggregate(&bs);
        assert_eq!(t.requests, 2);
        assert_eq!(t.total_ns, 40);
        assert_eq!(t.network_ns, 10);
        assert_eq!(t.device_ns, 30);
    }
}
