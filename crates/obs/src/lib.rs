#![forbid(unsafe_code)]
//! Observability tooling over the simulator's causal spans (`fractos-sim`'s
//! [`fractos_sim::SpanRecord`]): latency attribution, Chrome-trace export and
//! machine-readable benchmark telemetry.
//!
//! Everything here is a pure function of recorded data — nothing in this
//! crate touches wall clocks, environment randomness or the simulation RNG,
//! so identical span/metric inputs always produce byte-identical output.
//! JSON is serialized with the in-tree writer in [`json`] (the build
//! environment has no crates.io access, and a hand-rolled writer keeps the
//! byte-level output under our control).

#![warn(missing_docs)]

pub mod chrome;
pub mod critical;
pub mod json;
pub mod snapshot;
pub mod telemetry;

pub use chrome::chrome_trace;
pub use critical::{aggregate, analyze, PhaseBreakdown, PhaseTotals};
pub use json::Json;
pub use snapshot::{HistSummary, MetricsSnapshot};
pub use telemetry::{Series, SeriesKind, TelemetryReport, WindowValue};

/// Destination for trace export, parsed from the `FRACTOS_TRACE`
/// environment variable. Currently one scheme: `chrome:<path>` writes a
/// Chrome Trace Event / Perfetto JSON file to `<path>`.
///
/// Returns `None` when the variable is unset or names an unknown scheme.
pub fn chrome_trace_path() -> Option<String> {
    let v = std::env::var("FRACTOS_TRACE").ok()?;
    v.strip_prefix("chrome:").map(str::to_string)
}
