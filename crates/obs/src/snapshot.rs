//! Structured, machine-readable snapshot of a run's metrics registry.
//!
//! The snapshot is deterministic across runtime backends: counters under
//! the `runtime.` prefix are excluded (they describe the engine itself,
//! e.g. sharded worker occupancy, and legitimately differ between
//! backends), and histogram means are computed over *sorted* samples so
//! floating-point summation order does not depend on event interleaving.

use fractos_sim::{quantile_sorted, Metrics};

use crate::json::Json;

/// Summary statistics of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean (summed in sorted order).
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// 50th percentile (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Maximum sample.
    pub max: f64,
}

impl HistSummary {
    fn from_samples(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        HistSummary {
            count: sorted.len() as u64,
            mean,
            min: sorted.first().copied().unwrap_or(0.0),
            p50: quantile_sorted(&sorted, 0.5),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
            max: sorted.last().copied().unwrap_or(0.0),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::UInt(self.count)),
            ("mean", Json::Num(self.mean)),
            ("min", Json::Num(self.min)),
            ("p50", Json::Num(self.p50)),
            ("p95", Json::Num(self.p95)),
            ("p99", Json::Num(self.p99)),
            ("max", Json::Num(self.max)),
        ])
    }
}

/// A point-in-time copy of a run's counters and histogram summaries,
/// serializable to JSON with [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counters in name order (minus the backend-specific `runtime.`
    /// namespace).
    pub counters: Vec<(String, u64)>,
    /// Histogram summaries in name order.
    pub histograms: Vec<(String, HistSummary)>,
}

impl MetricsSnapshot {
    /// Captures the registry. Counter iteration is already name-ordered
    /// (the registry is a BTree map), so the snapshot is deterministic.
    pub fn capture(metrics: &Metrics) -> Self {
        let counters = metrics
            .counters()
            .filter(|(name, _)| !name.starts_with("runtime."))
            .map(|(name, v)| (name.to_string(), v))
            .collect();
        let histograms = metrics
            .histograms()
            .map(|(name, h)| (name.to_string(), HistSummary::from_samples(h.samples())))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Serializes the snapshot (field order fixed: counters, histograms).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_filters_runtime_namespace_and_sorts_means() {
        let mut m = Metrics::new();
        m.add("net.msgs", 3);
        m.add("runtime.sharded.active_workers.peak", 4);
        // Insertion order differs from sorted order; the mean must not
        // depend on it.
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            m.sample("lat", v);
        }
        let snap = MetricsSnapshot::capture(&m);
        assert_eq!(snap.counters, vec![("net.msgs".to_string(), 3)]);
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "lat");
        assert_eq!(h.count, 5);
        assert!((h.mean - 3.0).abs() < 1e-12);
        assert_eq!(h.p50, 3.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 5.0);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut m = Metrics::new();
        m.add("a", 1);
        let s = MetricsSnapshot::capture(&m).to_json().to_string();
        assert_eq!(s, r#"{"counters":{"a":1},"histograms":{}}"#);
    }
}
