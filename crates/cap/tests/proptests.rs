//! Property-based tests for the capability layer invariants.
//!
//! These check the security-critical properties the paper relies on:
//! revocation is a *closure* over the revocation tree (no survivor in the
//! subtree, no casualty outside it), capability spaces behave like POSIX fd
//! tables, monitored delegation counts drain exactly once, and reboots
//! implicitly revoke everything.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use fractos_cap::{
    CapRef, CapSpace, ControllerAddr, ObjectId, ObjectTable, Perms, ProcessToken, Watcher,
};

const CTRL: ControllerAddr = ControllerAddr(0);
const OWNER: ProcessToken = ProcessToken(0);

fn capref(n: u64) -> CapRef {
    CapRef {
        ctrl: CTRL,
        epoch: fractos_cap::Epoch(0),
        object: ObjectId(n),
    }
}

/// Operations on a capability space, mirrored against a simple model.
#[derive(Debug, Clone)]
enum SpaceOp {
    Insert(u64),
    Remove(u32),
}

fn space_ops() -> impl Strategy<Value = Vec<SpaceOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..1000).prop_map(SpaceOp::Insert),
            (0u32..64).prop_map(SpaceOp::Remove),
        ],
        0..200,
    )
}

proptest! {
    /// The capability space always allocates the lowest free index and
    /// agrees with a naive model.
    #[test]
    fn capspace_matches_fd_model(ops in space_ops()) {
        let mut space = CapSpace::new();
        let mut model: BTreeMap<u32, u64> = BTreeMap::new();

        for op in ops {
            match op {
                SpaceOp::Insert(v) => {
                    let cid = space.insert(capref(v)).unwrap();
                    // Lowest free index in the model.
                    let expect = (0u32..).find(|i| !model.contains_key(i)).unwrap();
                    prop_assert_eq!(cid.0, expect);
                    model.insert(cid.0, v);
                }
                SpaceOp::Remove(idx) => {
                    let got = space.remove(fractos_cap::Cid(idx));
                    match model.remove(&idx) {
                        Some(v) => prop_assert_eq!(got.unwrap().object.0, v),
                        None => prop_assert!(got.is_err()),
                    }
                }
            }
            prop_assert_eq!(space.len(), model.len());
        }
        // Final contents agree.
        let live: BTreeMap<u32, u64> =
            space.iter().map(|(cid, cap)| (cid.0, cap.object.0)).collect();
        prop_assert_eq!(live, model);
    }

    /// Revoking any node invalidates exactly its subtree.
    #[test]
    fn revocation_is_subtree_closure(
        parent_seeds in prop::collection::vec(any::<usize>(), 0..40),
        victim_seed in any::<u64>(),
    ) {
        // Parent choices: node i+1 attaches to some node <= i.
        let parents: Vec<usize> = parent_seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| s % (i + 1))
            .collect();
        let mut table: ObjectTable<u64> = ObjectTable::new(CTRL);
        let root = table.create(OWNER, 0);
        let mut caps = vec![root];
        for (i, &p) in parents.iter().enumerate() {
            let parent = caps[p];
            let cap = table.derive(parent.object, OWNER, (i + 1) as u64).unwrap();
            caps.push(cap);
        }
        let n = caps.len();
        let victim = (victim_seed % n as u64) as usize;

        // Compute the expected subtree in the model.
        let mut subtree = BTreeSet::new();
        subtree.insert(victim);
        // parents[i] is the parent of node i+1.
        loop {
            let before = subtree.len();
            for (i, &p) in parents.iter().enumerate() {
                if subtree.contains(&p) {
                    subtree.insert(i + 1);
                }
            }
            if subtree.len() == before {
                break;
            }
        }

        let outcome = table.revoke(caps[victim].object).unwrap();
        let revoked: BTreeSet<ObjectId> = outcome.revoked.iter().copied().collect();
        prop_assert_eq!(revoked.len(), subtree.len());

        for (i, cap) in caps.iter().enumerate() {
            if subtree.contains(&i) {
                prop_assert!(table.check(*cap).is_err(), "node {} should be revoked", i);
                prop_assert!(revoked.contains(&cap.object));
            } else {
                prop_assert!(table.check(*cap).is_ok(), "node {} should be live", i);
                prop_assert!(!revoked.contains(&cap.object));
            }
        }
    }

    /// Revtree (inherit) nodes always resolve to the payload of their
    /// nearest payload-owning ancestor.
    #[test]
    fn inherit_nodes_resolve_to_nearest_owned(
        depth in 1usize..12,
        owned_mask in any::<u16>(),
        payloads in prop::collection::vec(any::<u64>(), 12),
    ) {
        let mut table: ObjectTable<u64> = ObjectTable::new(CTRL);
        let root = table.create(OWNER, payloads[0]);
        let mut chain = vec![root];
        let mut expected = vec![payloads[0]];
        for d in 1..=depth {
            let parent = chain[d - 1];
            if owned_mask & (1 << d) != 0 {
                let cap = table.derive(parent.object, OWNER, payloads[d]).unwrap();
                chain.push(cap);
                expected.push(payloads[d]);
            } else {
                let cap = table.create_revtree_node(parent.object, OWNER).unwrap();
                chain.push(cap);
                expected.push(expected[d - 1]);
            }
        }
        for (cap, want) in chain.iter().zip(&expected) {
            prop_assert_eq!(table.resolve(*cap).unwrap(), want);
        }
    }

    /// With `monitor_delegate` armed, exactly one `DelegateDrained` event
    /// fires, and only after the last delegatee child is revoked.
    #[test]
    fn monitor_delegate_drains_exactly_once(
        k in 1usize..20,
        order_seed in any::<u64>(),
    ) {
        let mut table: ObjectTable<u64> = ObjectTable::new(CTRL);
        let cap = table.create(OWNER, 7);
        let watcher = Watcher { process: OWNER, callback_id: 42 };
        table.monitor_delegate(cap.object, watcher).unwrap();

        let mut children = Vec::new();
        for i in 0..k {
            children.push(table.delegate(cap.object, ProcessToken(i as u64 + 1)).unwrap());
        }
        // Deterministic pseudo-shuffle of the revocation order.
        let mut order: Vec<usize> = (0..k).collect();
        let mut s = order_seed;
        for i in (1..k).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }

        let mut drained = 0;
        for (n, &i) in order.iter().enumerate() {
            let outcome = table.revoke(children[i].object).unwrap();
            let events = outcome.events.len();
            if n + 1 == k {
                prop_assert_eq!(events, 1, "drain event on last revoke");
            } else {
                prop_assert_eq!(events, 0, "no event before last revoke");
            }
            drained += events;
        }
        prop_assert_eq!(drained, 1);
        // The armed capability itself stays live.
        prop_assert!(table.check(cap).is_ok());
    }

    /// After a reboot every previously minted capability is stale and every
    /// newly minted capability validates.
    #[test]
    fn reboot_stales_all_prior_caps(n in 1usize..30) {
        let mut table: ObjectTable<u64> = ObjectTable::new(CTRL);
        let old: Vec<CapRef> = (0..n).map(|i| table.create(OWNER, i as u64)).collect();
        table.reboot();
        for cap in &old {
            prop_assert!(table.check(*cap).is_err());
        }
        let fresh = table.create(OWNER, 0);
        prop_assert!(table.check(fresh).is_ok());
    }

    /// Diminishing permissions never adds bits.
    #[test]
    fn perms_diminish_monotone(a in 0u8..4, b in 0u8..4) {
        let before = Perms::from_bits(a);
        let after = before.diminish(Perms::from_bits(b));
        prop_assert!(before.contains(after));
    }

    /// Failing a process revokes all and only its objects (when trees do
    /// not span owners).
    #[test]
    fn fail_process_scopes_to_owner(assignment in prop::collection::vec(0u64..3, 1..30)) {
        let mut table: ObjectTable<u64> = ObjectTable::new(CTRL);
        let caps: Vec<(CapRef, u64)> = assignment
            .iter()
            .enumerate()
            .map(|(i, &p)| (table.create(ProcessToken(p), i as u64), p))
            .collect();
        table.fail_process(ProcessToken(1));
        for (cap, owner) in &caps {
            if *owner == 1 {
                prop_assert!(table.check(*cap).is_err());
            } else {
                prop_assert!(table.check(*cap).is_ok());
            }
        }
    }
}
