//! Owner-centric object tables with revocation trees and monitors.
//!
//! Each Controller owns one [`ObjectTable`]. Objects referenced by
//! capabilities "can only be used by contacting the owner of the object —
//! the Controller with which it is registered" (§3.5), so revocation is a
//! *local* invalidation at the owner followed by an out-of-critical-path
//! cleanup broadcast. Delegations are deliberately *not* tracked; instead,
//! separately revocable nodes are created explicitly via
//! `cap_create_revtree` (the caretaker pattern), or implicitly per
//! delegation when a `monitor_delegate` is armed on the source capability
//! (§3.6).
//!
//! The table is generic over the payload type `T` so the OS layer can store
//! its Memory/Request descriptors while this crate owns the lifecycle rules.

use std::collections::BTreeMap;

use crate::error::{CapError, Result};
use crate::ids::{CapRef, ControllerAddr, Epoch, ObjectId, ProcessToken};

/// What a revocation-tree node stores.
///
/// Nodes minted by `cap_create_revtree` and by monitored delegation carry no
/// payload of their own: they *inherit* the nearest ancestor's payload, which
/// keeps them at the paper's "a few bytes each" (§3.5).
#[derive(Debug, Clone)]
enum Payload<T> {
    Owned(T),
    Inherit,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    payload: Payload<T>,
    owner: ProcessToken,
    parent: Option<ObjectId>,
    children: Vec<ObjectId>,
    revoked: bool,
    /// Armed by `monitor_delegate`: counts live implicitly-created children.
    delegator: Option<DelegatorMonitor>,
    /// Set on implicitly-created delegation children: revoking them
    /// decrements the delegator's counter.
    delegatee_of: Option<ObjectId>,
    /// Armed by `monitor_receive`: notified when this object is revoked.
    receive_watchers: Vec<Watcher>,
}

#[derive(Debug, Clone)]
struct DelegatorMonitor {
    watcher: Watcher,
    outstanding: u64,
}

/// A registered monitor callback target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watcher {
    /// The Process to notify.
    pub process: ProcessToken,
    /// The user-chosen callback id echoed back in the notification.
    pub callback_id: u64,
}

/// A monitor notification produced by a revocation (§3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorEvent {
    /// `monitor_delegate_cb`: every implicitly-created child of the armed
    /// capability has been invalidated.
    DelegateDrained(Watcher),
    /// `monitor_receive_cb`: the watched capability was revoked.
    Receive(Watcher),
}

/// The result of a revocation: which objects were invalidated, which
/// payloads were released (so backing resources can be freed), and which
/// monitor callbacks fired.
#[derive(Debug, Default)]
pub struct RevokeOutcome<T> {
    /// Every object invalidated, in cascade order (the argument first).
    pub revoked: Vec<ObjectId>,
    /// Payloads of invalidated `Owned` objects.
    pub released: Vec<T>,
    /// Monitor callbacks to deliver.
    pub events: Vec<MonitorEvent>,
}

impl<T> RevokeOutcome<T> {
    fn new() -> Self {
        RevokeOutcome {
            revoked: Vec::new(),
            released: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Number of revocation-tree nodes visited (the Fig 7 cost metric).
    pub fn nodes_visited(&self) -> usize {
        self.revoked.len()
    }

    /// Merges another outcome into this one.
    pub fn merge(&mut self, other: RevokeOutcome<T>) {
        self.revoked.extend(other.revoked);
        self.released.extend(other.released);
        self.events.extend(other.events);
    }
}

/// One Controller's table of capability-protected objects.
#[derive(Debug)]
pub struct ObjectTable<T> {
    ctrl: ControllerAddr,
    epoch: Epoch,
    next_id: u64,
    /// Ordered so that whole-table sweeps (`fail_process`,
    /// `cleanup_revoked`, `live_objects`) visit entries in a deterministic
    /// order regardless of insertion history — the cascade order of a
    /// failure-translation revocation is observable through monitor events.
    entries: BTreeMap<ObjectId, Entry<T>>,
}

impl<T> ObjectTable<T> {
    /// Creates an empty table for the Controller at `ctrl`, epoch 0.
    pub fn new(ctrl: ControllerAddr) -> Self {
        ObjectTable {
            ctrl,
            epoch: Epoch(0),
            next_id: 0,
            entries: BTreeMap::new(),
        }
    }

    /// The owning Controller's address.
    pub fn ctrl(&self) -> ControllerAddr {
        self.ctrl
    }

    /// The current reboot epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Number of entries, including revoked-but-not-cleaned ones.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn mint(&mut self, entry: Entry<T>) -> CapRef {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        self.entries.insert(id, entry);
        CapRef {
            ctrl: self.ctrl,
            epoch: self.epoch,
            object: id,
        }
    }

    /// Registers a brand-new root object (e.g. `memory_create`,
    /// `request_create` without a source).
    pub fn create(&mut self, owner: ProcessToken, payload: T) -> CapRef {
        self.mint(Entry {
            payload: Payload::Owned(payload),
            owner,
            parent: None,
            children: Vec::new(),
            revoked: false,
            delegator: None,
            delegatee_of: None,
            receive_watchers: Vec::new(),
        })
    }

    /// Derives a new object with its own payload from `parent`
    /// (`memory_diminish`, Request refinement). The child joins the parent's
    /// revocation tree: revoking the parent invalidates the child.
    pub fn derive(&mut self, parent: ObjectId, owner: ProcessToken, payload: T) -> Result<CapRef> {
        self.check_live(parent)?;
        let cap = self.mint(Entry {
            payload: Payload::Owned(payload),
            owner,
            parent: Some(parent),
            children: Vec::new(),
            revoked: false,
            delegator: None,
            delegatee_of: None,
            receive_watchers: Vec::new(),
        });
        if let Some(p) = self.entries.get_mut(&parent) {
            p.children.push(cap.object);
        }
        Ok(cap)
    }

    /// `cap_create_revtree`: creates a separately revocable node that
    /// inherits the parent's payload (the caretaker indirection, §3.5).
    pub fn create_revtree_node(&mut self, parent: ObjectId, owner: ProcessToken) -> Result<CapRef> {
        self.check_live(parent)?;
        let cap = self.mint(Entry {
            payload: Payload::Inherit,
            owner,
            parent: Some(parent),
            children: Vec::new(),
            revoked: false,
            delegator: None,
            delegatee_of: None,
            receive_watchers: Vec::new(),
        });
        if let Some(p) = self.entries.get_mut(&parent) {
            p.children.push(cap.object);
        }
        Ok(cap)
    }

    /// Produces the capability to hand to a delegatee of `id`.
    ///
    /// Plain delegation mints no new object (delegations are untracked);
    /// the same reference is returned. If `id` carries an armed
    /// `monitor_delegate`, a separately revocable *delegatee child* is
    /// created instead, flagged so its revocation decrements the
    /// delegator's counter (§3.6).
    pub fn delegate(&mut self, id: ObjectId, to: ProcessToken) -> Result<CapRef> {
        self.check_live(id)?;
        let has_monitor = self.entries.get(&id).is_some_and(|e| e.delegator.is_some());
        if !has_monitor {
            return Ok(CapRef {
                ctrl: self.ctrl,
                epoch: self.epoch,
                object: id,
            });
        }
        let cap = self.mint(Entry {
            payload: Payload::Inherit,
            owner: to,
            parent: Some(id),
            children: Vec::new(),
            revoked: false,
            delegator: None,
            delegatee_of: Some(id),
            receive_watchers: Vec::new(),
        });
        if let Some(entry) = self.entries.get_mut(&id) {
            entry.children.push(cap.object);
            if let Some(mon) = entry.delegator.as_mut() {
                mon.outstanding += 1;
            }
        }
        Ok(cap)
    }

    /// Validates a full capability reference: object exists, is not revoked,
    /// and the epoch matches (stale epochs mean the Controller rebooted and
    /// the capability is implicitly revoked, §3.6).
    pub fn check(&self, cap: CapRef) -> Result<()> {
        if cap.epoch != self.epoch {
            return Err(CapError::StaleEpoch(cap.object));
        }
        self.check_live(cap.object)
    }

    fn check_live(&self, id: ObjectId) -> Result<()> {
        match self.entries.get(&id) {
            None => Err(CapError::NoSuchObject(id)),
            Some(e) if e.revoked => Err(CapError::Revoked(id)),
            Some(_) => Ok(()),
        }
    }

    /// Resolves a capability to its effective payload, walking up through
    /// payload-less (revtree / delegatee) nodes to the nearest owned one.
    pub fn resolve(&self, cap: CapRef) -> Result<&T> {
        self.check(cap)?;
        let mut id = cap.object;
        loop {
            let entry = self.entries.get(&id).ok_or(CapError::NoSuchObject(id))?;
            // Ancestors cannot be revoked while a descendant is live:
            // revocation cascades downward atomically.
            match (&entry.payload, entry.parent) {
                (Payload::Owned(t), _) => return Ok(t),
                (Payload::Inherit, Some(p)) => id = p,
                // An Inherit node always has a parent by construction; a
                // missing one means the table was corrupted externally.
                (Payload::Inherit, None) => return Err(CapError::NoSuchObject(id)),
            }
        }
    }

    /// Resolves to the id of the nearest payload-owning ancestor (or self).
    pub fn resolve_owner_object(&self, cap: CapRef) -> Result<ObjectId> {
        self.check(cap)?;
        let mut id = cap.object;
        loop {
            let entry = self.entries.get(&id).ok_or(CapError::NoSuchObject(id))?;
            match (&entry.payload, entry.parent) {
                (Payload::Owned(_), _) => return Ok(id),
                (Payload::Inherit, Some(p)) => id = p,
                (Payload::Inherit, None) => return Err(CapError::NoSuchObject(id)),
            }
        }
    }

    /// The Process that registered the object.
    pub fn owner_of(&self, id: ObjectId) -> Result<ProcessToken> {
        self.entries
            .get(&id)
            .map(|e| e.owner)
            .ok_or(CapError::NoSuchObject(id))
    }

    /// Mutable access to an object's payload (e.g. Request refinement by the
    /// Controller itself).
    pub fn payload_mut(&mut self, cap: CapRef) -> Result<&mut T> {
        self.check(cap)?;
        let id = self.resolve_owner_object(cap)?;
        match self.entries.get_mut(&id).map(|e| &mut e.payload) {
            Some(Payload::Owned(t)) => Ok(t),
            // `resolve_owner_object` only returns Owned nodes.
            _ => Err(CapError::NoSuchObject(id)),
        }
    }

    /// Parent of `id` in the revocation tree, if any (`None` for roots).
    ///
    /// Static verifiers use this to walk derivation edges and prove
    /// privilege monotonicity without mutating the table.
    pub fn parent_of(&self, id: ObjectId) -> Result<Option<ObjectId>> {
        self.entries
            .get(&id)
            .map(|e| e.parent)
            .ok_or(CapError::NoSuchObject(id))
    }

    /// Arms `monitor_delegate` on `id` (§3.6): future delegations create
    /// separately revocable children; when the last child is invalidated the
    /// watcher receives a `DelegateDrained` event.
    ///
    /// Per the paper, the capability must not have children yet.
    pub fn monitor_delegate(&mut self, id: ObjectId, watcher: Watcher) -> Result<()> {
        self.check_live(id)?;
        let entry = self
            .entries
            .get_mut(&id)
            .ok_or(CapError::NoSuchObject(id))?;
        if !entry.children.is_empty() {
            return Err(CapError::HasChildren(id));
        }
        if entry.delegator.is_some() {
            return Err(CapError::AlreadyMonitored(id));
        }
        entry.delegator = Some(DelegatorMonitor {
            watcher,
            outstanding: 0,
        });
        Ok(())
    }

    /// Arms `monitor_receive` on `id` (§3.6): the watcher is notified when
    /// the object is revoked (explicitly or through failure translation).
    pub fn monitor_receive(&mut self, id: ObjectId, watcher: Watcher) -> Result<()> {
        self.check_live(id)?;
        let entry = self
            .entries
            .get_mut(&id)
            .ok_or(CapError::NoSuchObject(id))?;
        entry.receive_watchers.push(watcher);
        Ok(())
    }

    /// Revokes the object and its entire revocation subtree, immediately.
    ///
    /// Invalidation is local to this (owner) table; dangling capabilities at
    /// other Controllers are removed by the later cleanup broadcast and are
    /// harmless in between because every use contacts this table.
    pub fn revoke(&mut self, id: ObjectId) -> Result<RevokeOutcome<T>> {
        self.check_live(id)?;
        let mut outcome = RevokeOutcome::new();
        self.revoke_subtree(id, &mut outcome);
        Ok(outcome)
    }

    fn revoke_subtree(&mut self, root: ObjectId, outcome: &mut RevokeOutcome<T>) {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let Some(entry) = self.entries.get_mut(&id) else {
                continue;
            };
            if entry.revoked {
                continue;
            }
            entry.revoked = true;
            outcome.revoked.push(id);
            stack.extend(entry.children.iter().copied());

            // Fire receive watchers for this node.
            for w in entry.receive_watchers.drain(..) {
                outcome.events.push(MonitorEvent::Receive(w));
            }
            // Release owned payloads so backing resources can be freed.
            if let Payload::Owned(_) = entry.payload {
                if let Payload::Owned(t) = std::mem::replace(&mut entry.payload, Payload::Inherit) {
                    outcome.released.push(t);
                }
                // A released node keeps `Inherit`; it is revoked, so the
                // payload can never be resolved through it again.
            }
            let delegatee_of = entry.delegatee_of;

            // Decrement the delegator counter if this was a monitored
            // delegation child.
            if let Some(parent) = delegatee_of {
                if let Some(pentry) = self.entries.get_mut(&parent) {
                    if let Some(mon) = pentry.delegator.as_mut() {
                        mon.outstanding = mon.outstanding.saturating_sub(1);
                        if mon.outstanding == 0 {
                            outcome
                                .events
                                .push(MonitorEvent::DelegateDrained(mon.watcher));
                        }
                    }
                }
            }
        }
    }

    /// Translates a Process failure into revocations (§3.6): every object
    /// registered by the failed Process is revoked, and its monitor
    /// registrations are discarded (no callbacks to the dead).
    pub fn fail_process(&mut self, proc: ProcessToken) -> RevokeOutcome<T> {
        let owned: Vec<ObjectId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.owner == proc && !e.revoked)
            .map(|(id, _)| *id)
            .collect();
        let mut outcome = RevokeOutcome::new();
        for id in owned {
            // A cascade from an earlier root may have taken this one already.
            if let Ok(o) = self.revoke(id) {
                outcome.merge(o);
            }
        }
        // Drop monitors registered by the failed Process and suppress any
        // events already routed to it.
        for entry in self.entries.values_mut() {
            entry.receive_watchers.retain(|w| w.process != proc);
            if entry
                .delegator
                .as_ref()
                .is_some_and(|m| m.watcher.process == proc)
            {
                entry.delegator = None;
            }
        }
        outcome.events.retain(|ev| match ev {
            MonitorEvent::DelegateDrained(w) | MonitorEvent::Receive(w) => w.process != proc,
        });
        outcome
    }

    /// The cleanup step (§3.5): physically removes revoked entries.
    ///
    /// In the full system this runs after the broadcast confirms no
    /// Controller still holds references; it is outside the critical path
    /// and neither security- nor performance-critical.
    pub fn cleanup_revoked(&mut self) -> Vec<ObjectId> {
        let dead: Vec<ObjectId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.revoked)
            .map(|(id, _)| *id)
            .collect();
        for id in &dead {
            self.entries.remove(id);
        }
        // Prune dangling child links on survivors.
        for entry in self.entries.values_mut() {
            entry.children.retain(|c| !dead.contains(c));
        }
        dead
    }

    /// Simulates a Controller reboot: the epoch advances and all state is
    /// lost, implicitly revoking every capability minted before (§3.6).
    pub fn reboot(&mut self) {
        self.epoch = self.epoch.next();
        self.entries.clear();
        // Object ids keep increasing so pre-reboot ids can never alias
        // post-reboot objects even if the epoch check were skipped.
    }

    /// Ids of all live (non-revoked) objects, in ascending order.
    pub fn live_objects(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.revoked)
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    /// Immediate children of `id` in the revocation tree.
    pub fn children_of(&self, id: ObjectId) -> Result<&[ObjectId]> {
        self.entries
            .get(&id)
            .map(|e| e.children.as_slice())
            .ok_or(CapError::NoSuchObject(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTRL: ControllerAddr = ControllerAddr(0);
    const P0: ProcessToken = ProcessToken(0);
    const P1: ProcessToken = ProcessToken(1);

    fn table() -> ObjectTable<&'static str> {
        ObjectTable::new(CTRL)
    }

    #[test]
    fn create_resolve_roundtrip() {
        let mut t = table();
        let cap = t.create(P0, "mem");
        assert_eq!(*t.resolve(cap).unwrap(), "mem");
        assert!(t.check(cap).is_ok());
    }

    #[test]
    fn derive_builds_tree_and_inherits_revocation() {
        let mut t = table();
        let root = t.create(P0, "root");
        let child = t.derive(root.object, P0, "child").unwrap();
        let grand = t.derive(child.object, P1, "grand").unwrap();

        let outcome = t.revoke(child.object).unwrap();
        assert_eq!(outcome.nodes_visited(), 2);
        assert!(outcome.revoked.contains(&child.object));
        assert!(outcome.revoked.contains(&grand.object));
        assert_eq!(t.check(root), Ok(()));
        assert_eq!(t.check(child), Err(CapError::Revoked(child.object)));
        assert_eq!(t.check(grand), Err(CapError::Revoked(grand.object)));
        // Released payloads come back for resource freeing.
        assert_eq!(outcome.released.len(), 2);
    }

    #[test]
    fn revtree_node_inherits_payload() {
        let mut t = table();
        let root = t.create(P0, "blob");
        let node = t.create_revtree_node(root.object, P0).unwrap();
        assert_eq!(*t.resolve(node).unwrap(), "blob");
        // Revoking the indirection node leaves the root alive.
        t.revoke(node.object).unwrap();
        assert!(t.check(root).is_ok());
        assert_eq!(t.resolve(node), Err(CapError::Revoked(node.object)));
    }

    #[test]
    fn plain_delegation_shares_the_object() {
        let mut t = table();
        let root = t.create(P0, "x");
        let d = t.delegate(root.object, P1).unwrap();
        assert_eq!(d.object, root.object);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn monitored_delegation_mints_children_and_drains() {
        let mut t = table();
        let root = t.create(P0, "svc");
        let w = Watcher {
            process: P0,
            callback_id: 99,
        };
        t.monitor_delegate(root.object, w).unwrap();

        let d1 = t.delegate(root.object, P1).unwrap();
        let d2 = t.delegate(root.object, P1).unwrap();
        assert_ne!(d1.object, root.object);
        assert_ne!(d1.object, d2.object);
        // Children resolve to the root payload.
        assert_eq!(*t.resolve(d1).unwrap(), "svc");

        let o1 = t.revoke(d1.object).unwrap();
        assert!(o1.events.is_empty(), "counter not yet drained");
        let o2 = t.revoke(d2.object).unwrap();
        assert_eq!(o2.events, vec![MonitorEvent::DelegateDrained(w)]);
        assert!(t.check(root).is_ok());
    }

    #[test]
    fn monitor_delegate_requires_childless_cap() {
        let mut t = table();
        let root = t.create(P0, "x");
        t.derive(root.object, P0, "c").unwrap();
        let w = Watcher {
            process: P0,
            callback_id: 1,
        };
        assert_eq!(
            t.monitor_delegate(root.object, w),
            Err(CapError::HasChildren(root.object))
        );
    }

    #[test]
    fn monitor_receive_fires_on_revoke() {
        let mut t = table();
        let root = t.create(P0, "x");
        let w = Watcher {
            process: P1,
            callback_id: 7,
        };
        t.monitor_receive(root.object, w).unwrap();
        let outcome = t.revoke(root.object).unwrap();
        assert_eq!(outcome.events, vec![MonitorEvent::Receive(w)]);
    }

    #[test]
    fn monitor_receive_fires_on_cascade() {
        let mut t = table();
        let root = t.create(P0, "x");
        let node = t.create_revtree_node(root.object, P1).unwrap();
        let w = Watcher {
            process: P1,
            callback_id: 3,
        };
        t.monitor_receive(node.object, w).unwrap();
        // Revoking the *parent* cascades into the watched node.
        let outcome = t.revoke(root.object).unwrap();
        assert!(outcome.events.contains(&MonitorEvent::Receive(w)));
    }

    #[test]
    fn fail_process_revokes_owned_objects_and_mutes_callbacks() {
        let mut t = table();
        let a = t.create(P0, "a");
        let b = t.create(P1, "b");
        // P1 watches its own object — callbacks to the dead are suppressed.
        t.monitor_receive(
            b.object,
            Watcher {
                process: P1,
                callback_id: 1,
            },
        )
        .unwrap();
        // P0 watches P1's object — this callback must fire.
        t.monitor_receive(
            b.object,
            Watcher {
                process: P0,
                callback_id: 2,
            },
        )
        .unwrap();

        let outcome = t.fail_process(P1);
        assert!(outcome.revoked.contains(&b.object));
        assert!(!outcome.revoked.contains(&a.object));
        assert_eq!(
            outcome.events,
            vec![MonitorEvent::Receive(Watcher {
                process: P0,
                callback_id: 2
            })]
        );
        assert!(t.check(a).is_ok());
    }

    #[test]
    fn cleanup_removes_revoked_entries() {
        let mut t = table();
        let root = t.create(P0, "r");
        let child = t.derive(root.object, P0, "c").unwrap();
        t.revoke(child.object).unwrap();
        let dead = t.cleanup_revoked();
        assert_eq!(dead, vec![child.object]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.children_of(root.object).unwrap(), &[]);
        assert_eq!(t.check(child), Err(CapError::NoSuchObject(child.object)));
    }

    #[test]
    fn reboot_bumps_epoch_and_stales_caps() {
        let mut t = table();
        let cap = t.create(P0, "x");
        t.reboot();
        assert_eq!(t.epoch(), Epoch(1));
        assert_eq!(t.check(cap), Err(CapError::StaleEpoch(cap.object)));
        // New objects mint with the new epoch and validate fine.
        let fresh = t.create(P0, "y");
        assert!(t.check(fresh).is_ok());
    }

    #[test]
    fn revoked_object_rejects_all_operations() {
        let mut t = table();
        let cap = t.create(P0, "x");
        t.revoke(cap.object).unwrap();
        assert_eq!(t.resolve(cap), Err(CapError::Revoked(cap.object)));
        assert_eq!(
            t.derive(cap.object, P0, "y").unwrap_err(),
            CapError::Revoked(cap.object)
        );
        assert_eq!(
            t.delegate(cap.object, P1).unwrap_err(),
            CapError::Revoked(cap.object)
        );
        assert_eq!(
            t.revoke(cap.object).unwrap_err(),
            CapError::Revoked(cap.object)
        );
    }

    #[test]
    fn double_monitor_delegate_rejected() {
        let mut t = table();
        let cap = t.create(P0, "x");
        let w = Watcher {
            process: P0,
            callback_id: 0,
        };
        t.monitor_delegate(cap.object, w).unwrap();
        assert_eq!(
            t.monitor_delegate(cap.object, w),
            Err(CapError::AlreadyMonitored(cap.object))
        );
    }

    #[test]
    fn payload_mut_reaches_owner_node() {
        let mut t = table();
        let root = t.create(P0, "old");
        let node = t.create_revtree_node(root.object, P0).unwrap();
        *t.payload_mut(node).unwrap() = "new";
        assert_eq!(*t.resolve(root).unwrap(), "new");
    }
}
