//! Per-Process capability spaces.
//!
//! A Process never holds raw [`CapRef`]s; it holds small integer indices
//! ([`Cid`]) into its capability space, exactly like POSIX file descriptors
//! (§3.1: "the references behind the capabilities are protected by FractOS,
//! and Processes access them via indices in their capability space").
//! Insertion reuses the lowest free index, mirroring fd allocation.

use std::collections::BinaryHeap;

use crate::error::{CapError, Result};
use crate::ids::{CapRef, Cid};

/// Maximum number of capability slots per Process (quota, §4 mentions the
/// capability space "can be capped via quotas").
pub const DEFAULT_QUOTA: usize = 1 << 20;

/// A Process's table of capabilities.
#[derive(Debug, Clone)]
pub struct CapSpace {
    slots: Vec<Option<CapRef>>,
    // Min-heap of freed indices (stored negated in a max-heap).
    free: BinaryHeap<std::cmp::Reverse<u32>>,
    quota: usize,
    live: usize,
}

impl CapSpace {
    /// Creates an empty space with the default quota.
    pub fn new() -> Self {
        Self::with_quota(DEFAULT_QUOTA)
    }

    /// Creates an empty space with a specific slot quota.
    pub fn with_quota(quota: usize) -> Self {
        CapSpace {
            slots: Vec::new(),
            free: BinaryHeap::new(),
            quota,
            live: 0,
        }
    }

    /// Inserts a capability at the lowest free index.
    pub fn insert(&mut self, cap: CapRef) -> Result<Cid> {
        if self.live >= self.quota {
            return Err(CapError::SpaceExhausted);
        }
        let cid = if let Some(std::cmp::Reverse(idx)) = self.free.pop() {
            self.slots[idx as usize] = Some(cap);
            Cid(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).map_err(|_| CapError::SpaceExhausted)?;
            self.slots.push(Some(cap));
            Cid(idx)
        };
        self.live += 1;
        Ok(cid)
    }

    /// Looks up the capability at `cid`.
    pub fn get(&self, cid: Cid) -> Result<CapRef> {
        self.slots
            .get(cid.0 as usize)
            .copied()
            .flatten()
            .ok_or(CapError::BadCid(cid))
    }

    /// Removes and returns the capability at `cid`, freeing the index.
    pub fn remove(&mut self, cid: Cid) -> Result<CapRef> {
        let slot = self
            .slots
            .get_mut(cid.0 as usize)
            .ok_or(CapError::BadCid(cid))?;
        let cap = slot.take().ok_or(CapError::BadCid(cid))?;
        self.free.push(std::cmp::Reverse(cid.0));
        self.live -= 1;
        Ok(cap)
    }

    /// Number of live capabilities.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the space holds no capabilities.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over `(cid, cap)` pairs of live slots.
    pub fn iter(&self) -> impl Iterator<Item = (Cid, CapRef)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.map(|cap| (Cid(i as u32), cap)))
    }

    /// Removes every capability, returning them (used on Process failure).
    pub fn drain_all(&mut self) -> Vec<CapRef> {
        let caps: Vec<CapRef> = self.slots.iter().copied().flatten().collect();
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        caps
    }
}

impl Default for CapSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ControllerAddr, Epoch, ObjectId};

    fn cap(n: u64) -> CapRef {
        CapRef {
            ctrl: ControllerAddr(0),
            epoch: Epoch(0),
            object: ObjectId(n),
        }
    }

    #[test]
    fn inserts_use_lowest_free_index() {
        let mut s = CapSpace::new();
        assert_eq!(s.insert(cap(0)).unwrap(), Cid(0));
        assert_eq!(s.insert(cap(1)).unwrap(), Cid(1));
        assert_eq!(s.insert(cap(2)).unwrap(), Cid(2));
        s.remove(Cid(1)).unwrap();
        s.remove(Cid(0)).unwrap();
        // Lowest freed index first, like POSIX fds.
        assert_eq!(s.insert(cap(3)).unwrap(), Cid(0));
        assert_eq!(s.insert(cap(4)).unwrap(), Cid(1));
        assert_eq!(s.insert(cap(5)).unwrap(), Cid(3));
    }

    #[test]
    fn get_and_remove() {
        let mut s = CapSpace::new();
        let cid = s.insert(cap(7)).unwrap();
        assert_eq!(s.get(cid).unwrap().object, ObjectId(7));
        assert_eq!(s.remove(cid).unwrap().object, ObjectId(7));
        assert_eq!(s.get(cid), Err(CapError::BadCid(cid)));
        assert_eq!(s.remove(cid), Err(CapError::BadCid(cid)));
    }

    #[test]
    fn bad_indices_rejected() {
        let s = CapSpace::new();
        assert_eq!(s.get(Cid(42)), Err(CapError::BadCid(Cid(42))));
    }

    #[test]
    fn quota_enforced() {
        let mut s = CapSpace::with_quota(2);
        s.insert(cap(0)).unwrap();
        s.insert(cap(1)).unwrap();
        assert_eq!(s.insert(cap(2)), Err(CapError::SpaceExhausted));
        s.remove(Cid(0)).unwrap();
        assert!(s.insert(cap(3)).is_ok());
    }

    #[test]
    fn drain_all_empties() {
        let mut s = CapSpace::new();
        s.insert(cap(1)).unwrap();
        s.insert(cap(2)).unwrap();
        let drained = s.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(s.is_empty());
        assert_eq!(s.insert(cap(3)).unwrap(), Cid(0));
    }

    #[test]
    fn iter_yields_live_slots() {
        let mut s = CapSpace::new();
        s.insert(cap(1)).unwrap();
        let c = s.insert(cap(2)).unwrap();
        s.insert(cap(3)).unwrap();
        s.remove(c).unwrap();
        let live: Vec<_> = s.iter().map(|(_, c)| c.object.0).collect();
        assert_eq!(live, vec![1, 3]);
    }
}
