#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Distributed capability machinery for FractOS-rs (§3.5–§3.6 of the paper).
//!
//! FractOS protects Memory and Request objects with capabilities that are
//! *owner-centric*: the object lives at exactly one Controller, every use
//! contacts that Controller, and revocation is therefore an immediate local
//! invalidation plus an out-of-critical-path cleanup broadcast. Delegations
//! are never tracked; selective revocation is provided by explicitly created
//! revocation-tree nodes (`cap_create_revtree`, Redell's caretaker pattern)
//! and by the implicit per-delegation children minted when a
//! `monitor_delegate` is armed.
//!
//! This crate owns the pure data-structure layer:
//!
//! * [`ids`] — capability references `(controller, epoch, object)` and
//!   per-Process `cid` indices;
//! * [`perms`] — monotone Memory permissions;
//! * [`space`] — fd-style per-Process capability spaces;
//! * [`table`] — the per-Controller object table with revocation trees,
//!   reboot epochs, monitor callbacks and failure translation.
//!
//! The OS layer (`fractos-core`) drives these tables over the simulated
//! network and charges the message/processing costs the paper measures in
//! Fig 7.
//!
//! # Examples
//!
//! ```
//! use fractos_cap::{ObjectTable, ControllerAddr, ProcessToken};
//!
//! let mut table: ObjectTable<&str> = ObjectTable::new(ControllerAddr(0));
//! let provider = ProcessToken(1);
//! let cap = table.create(provider, "ssd-block-42");
//!
//! // A separately revocable handle for one client:
//! let client_cap = table.create_revtree_node(cap.object, provider).unwrap();
//! assert_eq!(*table.resolve(client_cap).unwrap(), "ssd-block-42");
//!
//! // Revoking the client handle leaves the provider's object intact.
//! table.revoke(client_cap.object).unwrap();
//! assert!(table.resolve(client_cap).is_err());
//! assert!(table.resolve(cap).is_ok());
//! ```

pub mod error;
pub mod ids;
pub mod perms;
pub mod space;
pub mod table;

pub use error::{CapError, Result};
pub use ids::{CapRef, Cid, ControllerAddr, Epoch, ObjectId, ProcessToken};
pub use perms::Perms;
pub use space::CapSpace;
pub use table::{MonitorEvent, ObjectTable, RevokeOutcome, Watcher};
