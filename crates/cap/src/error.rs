//! Error type for capability operations.

use core::fmt;

use crate::ids::{Cid, ObjectId};

/// Errors raised by the capability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapError {
    /// No object with this id exists at this Controller (never created, or
    /// already cleaned up after revocation).
    NoSuchObject(ObjectId),
    /// The object exists but has been revoked (invalidated at its owner).
    Revoked(ObjectId),
    /// The capability's epoch predates the Controller's current epoch: the
    /// Controller rebooted since the capability was minted, so the
    /// capability is implicitly revoked (§3.6 failure translation).
    StaleEpoch(ObjectId),
    /// The capability space index is empty or out of range.
    BadCid(Cid),
    /// The capability space is full.
    SpaceExhausted,
    /// The operation requires permissions the capability lacks.
    PermissionDenied,
    /// `monitor_delegate` requires the capability to have no children yet
    /// (paper, §3.6 footnote).
    HasChildren(ObjectId),
    /// The object already carries a monitor of this kind.
    AlreadyMonitored(ObjectId),
}

impl fmt::Display for CapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapError::NoSuchObject(id) => write!(f, "no such object: {id}"),
            CapError::Revoked(id) => write!(f, "object revoked: {id}"),
            CapError::StaleEpoch(id) => write!(f, "stale capability epoch for {id}"),
            CapError::BadCid(cid) => write!(f, "bad capability index: {cid}"),
            CapError::SpaceExhausted => write!(f, "capability space exhausted"),
            CapError::PermissionDenied => write!(f, "permission denied"),
            CapError::HasChildren(id) => {
                write!(f, "monitor_delegate requires childless capability: {id}")
            }
            CapError::AlreadyMonitored(id) => write!(f, "object already monitored: {id}"),
        }
    }
}

impl std::error::Error for CapError {}

/// Convenience alias.
pub type Result<T> = core::result::Result<T, CapError>;
