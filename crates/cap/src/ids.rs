//! Identifier types for the distributed capability system.
//!
//! A capability in FractOS is *owner-centric*: it names the Controller an
//! object is registered with, the Controller's reboot epoch at grant time,
//! and the object's id within that Controller (§3.5). Processes never hold
//! these references directly — they index into a per-Process capability
//! space via small integers ([`Cid`]), like POSIX file descriptors.

use core::fmt;

/// The unique network address of a Controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ControllerAddr(pub u32);

impl fmt::Display for ControllerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctrl{}", self.0)
    }
}

/// A Controller's reboot counter (monotonically increasing, §3.6).
///
/// Stored inside every capability; comparing it against the live
/// Controller's epoch detects capabilities that survived a Controller
/// failure ("simple form of Lamport timestamps on capabilities").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The next epoch after a reboot.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

/// An object id, unique within one Controller (never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// A global, unforgeable reference to a FractOS object.
///
/// This is what Controllers exchange when delegating; Processes only ever
/// see [`Cid`] indices that map to these internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CapRef {
    /// The Controller the object is registered with (its owner).
    pub ctrl: ControllerAddr,
    /// The owner Controller's epoch when the capability was minted.
    pub epoch: Epoch,
    /// The object within the owner Controller.
    pub object: ObjectId,
}

impl fmt::Display for CapRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@e{}/{}", self.ctrl, self.epoch.0, self.object)
    }
}

/// An index into a Process's capability space (the `cid` of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cid(pub u32);

impl fmt::Display for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cid{}", self.0)
    }
}

/// Opaque token identifying a Process to the capability layer.
///
/// The OS layer maps these to its own Process identities; the capability
/// crate only needs equality (to route monitor callbacks and to revoke a
/// failed Process's objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessToken(pub u64);

impl fmt::Display for ProcessToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_advances() {
        assert_eq!(Epoch(0).next(), Epoch(1));
        assert!(Epoch(1) > Epoch(0));
    }

    #[test]
    fn display_formats() {
        let r = CapRef {
            ctrl: ControllerAddr(2),
            epoch: Epoch(1),
            object: ObjectId(7),
        };
        assert_eq!(r.to_string(), "ctrl2@e1/obj7");
        assert_eq!(Cid(3).to_string(), "cid3");
        assert_eq!(ProcessToken(9).to_string(), "proc9");
    }
}
