//! Permission bits carried by Memory capabilities.
//!
//! `memory_diminish` may only *drop* permissions (Table 1), so the type
//! exposes monotone operations and no way to add bits to an existing set
//! other than explicit construction.

use core::fmt;
use core::ops::{BitAnd, BitOr};

/// A small permission bitset for Memory objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u8);

impl Perms {
    /// No permissions.
    pub const NONE: Perms = Perms(0);
    /// Permission to read the memory.
    pub const READ: Perms = Perms(1);
    /// Permission to write the memory.
    pub const WRITE: Perms = Perms(2);
    /// Both read and write.
    pub const RW: Perms = Perms(3);

    /// Builds from raw bits, masking unknown bits off.
    pub const fn from_bits(bits: u8) -> Perms {
        Perms(bits & Self::RW.0)
    }

    /// Raw bit representation.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Whether every permission in `other` is present in `self`.
    pub const fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `self` without the permissions in `drop`.
    pub const fn diminish(self, drop: Perms) -> Perms {
        Perms(self.0 & !drop.0)
    }

    /// Whether reading is allowed.
    pub const fn can_read(self) -> bool {
        self.contains(Perms::READ)
    }

    /// Whether writing is allowed.
    pub const fn can_write(self) -> bool {
        self.contains(Perms::WRITE)
    }
}

impl BitOr for Perms {
    type Output = Perms;
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitAnd for Perms {
    type Output = Perms;
    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            if self.can_read() { "r" } else { "-" },
            if self.can_write() { "w" } else { "-" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_diminish() {
        assert!(Perms::RW.contains(Perms::READ));
        assert!(!Perms::READ.contains(Perms::WRITE));
        assert_eq!(Perms::RW.diminish(Perms::WRITE), Perms::READ);
        assert_eq!(Perms::READ.diminish(Perms::READ), Perms::NONE);
        // Diminishing a missing bit is a no-op.
        assert_eq!(Perms::READ.diminish(Perms::WRITE), Perms::READ);
    }

    #[test]
    fn diminish_is_monotone() {
        for a in 0..4u8 {
            for b in 0..4u8 {
                let before = Perms::from_bits(a);
                let after = before.diminish(Perms::from_bits(b));
                assert!(before.contains(after), "{before} -> {after} grew");
            }
        }
    }

    #[test]
    fn from_bits_masks_garbage() {
        assert_eq!(Perms::from_bits(0xFF), Perms::RW);
    }

    #[test]
    fn display() {
        assert_eq!(Perms::RW.to_string(), "rw");
        assert_eq!(Perms::READ.to_string(), "r-");
        assert_eq!(Perms::NONE.to_string(), "--");
    }
}
