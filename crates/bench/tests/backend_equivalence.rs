//! Cross-backend equivalence harness.
//!
//! The sharded engine is allowed to interleave same-timestamp events
//! differently from the single-threaded engine, but the *workload-visible*
//! outcome must be identical: every per-link `(src, dst, class)`
//! message/byte counter and every end-to-end payload (match verdicts) must
//! agree bit-for-bit on the Fig 2 workloads — both the FractOS deployment
//! and the centralized baseline. A separate test pins the single-threaded
//! backend's full event trace across repeated runs, and a 4-node workload
//! checks the sharded backend really fans out over more than one OS thread.

use fractos_baselines::faceverify::{deploy_baseline, BaselineClient, Start};
use fractos_baselines::raw::{Peer, PingPongClient, PingPongServer, Start as PingStart};
use fractos_core::prelude::*;
use fractos_net::stats::{FlowCounter, TrafficClass};
use fractos_net::{Fabric, NetParams, NodeConfig, NodeId, Topology};
use fractos_obs::TelemetryReport;
use fractos_services::deploy::deploy_faceverify;
use fractos_services::faceverify::FvClient;
use fractos_services::FvConfig;
use fractos_sim::{
    build_runtime, Runtime, RuntimeConfig, RuntimeKind, ShardedSim, Shared, SimDuration,
};

const IMG: u64 = 4096;
const BATCH: u64 = 8;
const REQUESTS: u64 = 10;

type Flows = Vec<((NodeId, NodeId, TrafficClass), FlowCounter)>;

/// Runs the FractOS Fig 2 deployment on `kind`; returns the per-link
/// traffic counters and the per-request match verdicts (the payload-derived
/// outcome of each verification).
fn run_fractos(kind: RuntimeKind) -> (Flows, Vec<bool>) {
    let mut tb = Testbed::new_on(Topology::paper_testbed(), NetParams::paper(), 61, kind);
    let ctrls = tb.controllers_per_node(false);
    deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
    tb.reset_traffic();
    let client = tb.add_process(
        "client",
        cpu(2),
        ctrls[2],
        FvClient::new(IMG, BATCH, REQUESTS, 2),
    );
    tb.start_process(client);
    tb.run();
    let verdicts = tb.with_service::<FvClient, _>(client, |c| {
        assert_eq!(c.samples.len() as u64, REQUESTS);
        c.samples.iter().map(|s| s.all_matched).collect::<Vec<_>>()
    });
    let flows = tb.traffic().flows().map(|(k, v)| (*k, *v)).collect();
    (flows, verdicts)
}

/// Runs the centralized baseline on `kind`; same return shape.
fn run_baseline(kind: RuntimeKind) -> (Flows, Vec<bool>) {
    let topology = Topology::paper_testbed();
    let params = NetParams::paper();
    let config = Testbed::runtime_config(&topology, &params, 61);
    let mut sim = build_runtime(kind, &config);
    let fabric = Shared::new(Fabric::new(topology, params));
    let dep = deploy_baseline(sim.as_mut(), &fabric, IMG, 256);
    let client = sim.add_actor_on(
        2,
        "client",
        Box::new(BaselineClient::new(
            fractos_net::Endpoint::cpu(NodeId(2)),
            dep.frontend_peer,
            fabric.clone(),
            IMG,
            BATCH,
            REQUESTS,
            2,
        )),
    );
    sim.post(SimDuration::ZERO, client, Start);
    sim.run();
    let verdicts = sim.with_actor::<BaselineClient, _>(client, |c| {
        assert_eq!(c.samples.len() as u64, REQUESTS);
        c.samples.iter().map(|s| s.all_matched).collect::<Vec<_>>()
    });
    let flows = fabric
        .borrow()
        .stats()
        .flows()
        .map(|(k, v)| (*k, *v))
        .collect();
    (flows, verdicts)
}

#[test]
fn fig2_fractos_matches_across_backends() {
    let (single_flows, single_verdicts) = run_fractos(RuntimeKind::SingleThreaded);
    let (sharded_flows, sharded_verdicts) = run_fractos(RuntimeKind::Sharded);
    assert!(!single_flows.is_empty(), "workload produced no traffic");
    assert!(
        single_verdicts.iter().all(|&m| m),
        "payloads must verify on the reference backend"
    );
    assert_eq!(
        single_flows, sharded_flows,
        "per-link message/byte counters diverged across backends"
    );
    assert_eq!(
        single_verdicts, sharded_verdicts,
        "end-to-end payload verdicts diverged across backends"
    );
}

#[test]
fn fig2_baseline_matches_across_backends() {
    let (single_flows, single_verdicts) = run_baseline(RuntimeKind::SingleThreaded);
    let (sharded_flows, sharded_verdicts) = run_baseline(RuntimeKind::Sharded);
    assert!(!single_flows.is_empty(), "workload produced no traffic");
    assert!(
        single_verdicts.iter().all(|&m| m),
        "payloads must verify on the reference backend"
    );
    assert_eq!(
        single_flows, sharded_flows,
        "per-link message/byte counters diverged across backends"
    );
    assert_eq!(
        single_verdicts, sharded_verdicts,
        "end-to-end payload verdicts diverged across backends"
    );
}

/// End-to-end payload *bytes* must be identical across backends — not just
/// the derived verdicts. Payloads travel as cheap-clone [`Payload`] handles
/// (shared `Arc` buffers, zero-copy slicing), so this also pins that the
/// sharded engine's cross-shard buffering never hands an actor a stale or
/// partially-written view of a payload.
#[test]
fn fig2_reply_payloads_are_byte_identical_across_backends() {
    let run = |kind: RuntimeKind| {
        let mut tb = Testbed::new_on(Topology::paper_testbed(), NetParams::paper(), 61, kind);
        let ctrls = tb.controllers_per_node(false);
        deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
        let client = tb.add_process(
            "client",
            cpu(2),
            ctrls[2],
            FvClient::new(IMG, BATCH, REQUESTS, 2),
        );
        tb.start_process(client);
        tb.run();
        tb.with_service::<FvClient, _>(client, |c| {
            c.replies.iter().map(|p| p.to_vec()).collect::<Vec<_>>()
        })
    };
    let single = run(RuntimeKind::SingleThreaded);
    let sharded = run(RuntimeKind::Sharded);
    assert_eq!(single.len() as u64, REQUESTS);
    assert!(
        single.iter().all(|p| p.len() == BATCH as usize),
        "each reply carries one distance byte per image in the batch"
    );
    assert_eq!(
        single, sharded,
        "reply payload bytes diverged across backends"
    );
}

/// The continuous telemetry plane must be part of the cross-backend
/// contract: with sampling armed for the measured phase, every exporter
/// (JSON, JSONL, Prometheus) must produce byte-identical text on both
/// engines — and arming the plane must not perturb the workload itself
/// (same per-link traffic counters as an uninstrumented run).
#[test]
fn fig2_telemetry_exports_match_across_backends_without_perturbing_traffic() {
    let period = SimDuration::from_nanos(50_000);
    let run = |kind: RuntimeKind, telemetry: bool| {
        let mut tb = Testbed::new_on(Topology::paper_testbed(), NetParams::paper(), 61, kind);
        let ctrls = tb.controllers_per_node(false);
        deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
        tb.reset_traffic();
        if telemetry {
            tb.enable_telemetry(period);
        }
        let client = tb.add_process(
            "client",
            cpu(2),
            ctrls[2],
            FvClient::new(IMG, BATCH, REQUESTS, 2),
        );
        tb.start_process(client);
        tb.run();
        let flows: Flows = tb.traffic().flows().map(|(k, v)| (*k, *v)).collect();
        let report = TelemetryReport::derive(&tb.take_telemetry(), period);
        (
            flows,
            report.to_json(false).to_string(),
            report.jsonl(false),
            report.prometheus(false),
        )
    };
    let (flows_off, ..) = run(RuntimeKind::SingleThreaded, false);
    let (flows_single, json_single, jsonl_single, prom_single) =
        run(RuntimeKind::SingleThreaded, true);
    let (flows_sharded, json_sharded, jsonl_sharded, prom_sharded) =
        run(RuntimeKind::Sharded, true);
    assert_eq!(
        flows_off, flows_single,
        "arming telemetry perturbed the workload's traffic"
    );
    assert_eq!(flows_single, flows_sharded);
    assert!(
        json_single.contains("app.fv.latency_ns"),
        "latency series missing from telemetry export"
    );
    assert!(
        json_single.contains("link.") && json_single.contains("dev."),
        "fabric/device series missing from telemetry export"
    );
    assert!(
        !json_single.contains("runtime."),
        "backend self-profiling leaked into a byte-compared export"
    );
    assert_eq!(json_single, json_sharded, "telemetry JSON diverged");
    assert_eq!(jsonl_single, jsonl_sharded, "telemetry JSONL diverged");
    assert_eq!(prom_single, prom_sharded, "Prometheus export diverged");
}

#[test]
fn fig2_single_threaded_trace_is_reproducible() {
    let run = || {
        let mut tb = Testbed::new_on(
            Topology::paper_testbed(),
            NetParams::paper(),
            61,
            RuntimeKind::SingleThreaded,
        );
        tb.sim.enable_trace();
        let ctrls = tb.controllers_per_node(false);
        deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
        let client = tb.add_process(
            "client",
            cpu(2),
            ctrls[2],
            FvClient::new(IMG, BATCH, REQUESTS, 1),
        );
        tb.start_process(client);
        tb.run();
        (tb.sim.take_trace(), tb.sim.steps(), tb.now())
    };
    let (trace_a, steps_a, end_a) = run();
    let (trace_b, steps_b, end_b) = run();
    assert!(!trace_a.is_empty(), "tracing recorded nothing");
    assert_eq!(steps_a, steps_b, "step counts diverged between equal seeds");
    assert_eq!(end_a, end_b, "end times diverged between equal seeds");
    assert_eq!(trace_a, trace_b, "traces diverged between equal seeds");
}

/// `take_trace` returns entries in the canonical `(time, actor, label)`
/// order on every backend: a Fig 2 run yields the identical entry sequence
/// (and identical `Display` renderings) on both engines.
#[test]
fn fig2_trace_order_matches_across_backends() {
    let run = |kind: RuntimeKind| {
        let mut tb = Testbed::new_on(Topology::paper_testbed(), NetParams::paper(), 61, kind);
        let ctrls = tb.controllers_per_node(false);
        deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
        tb.sim.enable_trace();
        let client = tb.add_process(
            "client",
            cpu(2),
            ctrls[2],
            FvClient::new(IMG, BATCH, REQUESTS, 1),
        );
        tb.start_process(client);
        tb.run();
        tb.sim.take_trace()
    };
    let single = run(RuntimeKind::SingleThreaded);
    let sharded = run(RuntimeKind::Sharded);
    assert!(!single.is_empty(), "tracing recorded nothing");
    assert_eq!(single, sharded, "trace order diverged across backends");
    let rendered: Vec<String> = single.iter().map(|e| e.to_string()).collect();
    let rendered_sharded: Vec<String> = sharded.iter().map(|e| e.to_string()).collect();
    assert_eq!(rendered, rendered_sharded);
}

/// A 4-node workload must spread across more than one OS thread on the
/// sharded backend. Prints a wall-clock note so CI logs show the cost of
/// the parallel run.
#[test]
fn sharded_backend_uses_multiple_os_threads_on_four_nodes() {
    let mut topology = Topology::new();
    for name in ["n0", "n1", "n2", "n3"] {
        topology.add_node(NodeConfig::cpu_only(name));
    }
    let params = NetParams::paper();
    let config = RuntimeConfig::new(9, topology.len(), params.conservative_lookahead());
    let mut sim = ShardedSim::new(&config);
    assert!(sim.workers() >= 2, "expected at least two workers");
    let fabric = Shared::new(Fabric::new(topology, params));

    // A ring of cross-node ping-pong pairs (client on node i, server on
    // node i+1), so every shard has deliveries in every lookahead window
    // and both workers get work each round.
    let mut clients = Vec::new();
    for a in 0u32..4 {
        let b = (a + 1) % 4;
        let server_ep = fractos_net::Endpoint::cpu(NodeId(b));
        let server = sim.add_actor_on(
            b as usize,
            &format!("server{a}to{b}"),
            Box::new(PingPongServer::new(server_ep, fabric.clone())),
        );
        let client = sim.add_actor_on(
            a as usize,
            &format!("client{a}"),
            Box::new(PingPongClient::new(
                fractos_net::Endpoint::cpu(NodeId(a)),
                Peer {
                    actor: server,
                    endpoint: server_ep,
                },
                200,
                fabric.clone(),
            )),
        );
        clients.push(client);
    }
    for &client in &clients {
        sim.post(SimDuration::ZERO, client, PingStart);
    }
    let wall = std::time::Instant::now();
    sim.run();
    let wall = wall.elapsed();
    for &client in &clients {
        sim.with_actor::<PingPongClient, _>(client, |c| assert_eq!(c.latencies.len(), 200));
    }
    let peak = sim.metrics().counter("runtime.sharded.active_workers.peak");
    eprintln!(
        "sharded 4-node ping-pong: {} workers configured, {} active at peak, \
         {} virtual events in {:.1} ms wall-clock",
        sim.workers(),
        peak,
        sim.steps(),
        wall.as_secs_f64() * 1e3,
    );
    assert!(
        peak > 1,
        "sharded backend never ran more than one OS thread concurrently"
    );
}
