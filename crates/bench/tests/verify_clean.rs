//! Positive verification harness: every Request plan the in-tree
//! applications build must pass the static verifier, on both runtime
//! backends, and the always-on submission/admission checks must have run
//! (with zero rejects) during the workloads themselves.

use fractos_core::prelude::*;
use fractos_net::{NetParams, Topology, VerifyCounter};
use fractos_services::deploy::deploy_faceverify;
use fractos_services::faceverify::FvClient;
use fractos_services::pipeline::{ChainDriver, PipelineStage};
use fractos_services::FvConfig;
use fractos_sim::RuntimeKind;

const BACKENDS: [RuntimeKind; 2] = [RuntimeKind::SingleThreaded, RuntimeKind::Sharded];

fn assert_clean(tb: &mut Testbed, workload: &str) {
    let checked = tb
        .verify_all_plans()
        .unwrap_or_else(|e| panic!("{workload}: live plan failed verification: {e}"));
    assert!(checked >= 1, "{workload}: sweep visited no Request plans");
    let VerifyCounter {
        submission_checks,
        admission_checks,
        rejects,
    } = tb.traffic().verify_counter();
    assert!(
        submission_checks > 0,
        "{workload}: no plan was verified at submission"
    );
    assert!(
        admission_checks > 0,
        "{workload}: no plan was verified at admission"
    );
    assert_eq!(rejects, 0, "{workload}: a well-formed plan was rejected");
}

#[test]
fn fig2_faceverify_plans_verify_clean_on_both_backends() {
    for kind in BACKENDS {
        let mut tb = Testbed::new_on(Topology::paper_testbed(), NetParams::paper(), 61, kind);
        let ctrls = tb.controllers_per_node(false);
        deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
        let client = tb.add_process("client", cpu(2), ctrls[2], FvClient::new(4096, 8, 10, 2));
        tb.start_process(client);
        tb.run();
        tb.with_service::<FvClient, _>(client, |c| {
            assert_eq!(c.samples.len(), 10, "workload must complete");
        });
        assert_clean(&mut tb, &format!("faceverify/{kind:?}"));
    }
}

#[test]
fn pipeline_chain_plans_verify_clean_on_both_backends() {
    for kind in BACKENDS {
        let mut tb = Testbed::new_on(Topology::paper_testbed(), NetParams::paper(), 71, kind);
        let ctrls = tb.controllers_per_node(false);
        let stages = 3;
        for i in 0..stages {
            let node = (i % 3) as u32;
            let p = tb.add_process(
                &format!("stage{i}"),
                cpu(node),
                ctrls[node as usize],
                PipelineStage::new(i, 1024),
            );
            tb.start_process(p);
            tb.run();
        }
        let d = tb.add_process("chain", cpu(0), ctrls[0], ChainDriver::new(stages, 1024, 4));
        tb.start_process(d);
        tb.run();
        tb.with_service::<ChainDriver, _>(d, |s| {
            assert_eq!(s.latencies.len(), 4, "workload must complete");
        });
        assert_clean(&mut tb, &format!("pipeline-chain/{kind:?}"));
    }
}
