//! Crash-chaos suite: crash-stop and crash-restart node failures under a
//! replicated service, exercising the full §3.6 recovery loop — watchdog
//! detection, death declaration with an epoch bump, capability revocation,
//! directory-routed failover, and client re-dispatch.
//!
//! Every run is replayable from `(seed, plan)`: the crash schedule is part
//! of the typed [`FaultPlan`], the engine drops deliveries to a down node
//! as a pure function of (delivery time, receiver node), and all recovery
//! milestones carry simulator timestamps — so the whole timeline is
//! byte-identical run to run and across backends. CI sweeps this suite
//! over the seed × backend matrix (`FRACTOS_CHAOS_SEED` × `FRACTOS_RUNTIME`).

use fractos_core::prelude::*;
use fractos_core::WatchdogActor;
use fractos_net::stats::{FaultCounter, FlowCounter, TrafficClass};
use fractos_net::{FaultPlan, NetParams, NodeId, Topology};
use fractos_services::replicated::{deploy_replicated, FailoverClient, RequestOutcome};
use fractos_sim::{ActorId, RuntimeKind, SimTime};

const ITERS: u64 = 60;
const SERVICE_US: u64 = 10;
const CRASH_AT_US: u64 = 1_000;
const RESTART_AT_US: u64 = 4_000;
const DEADLINE_US: u64 = 10_000;

/// Bound on the unavailability window (first post-crash failure to first
/// post-crash success): detection is 3 missed 200 µs pings, so recovery
/// must land well inside 2 ms.
const MTTR_BOUND_US: u64 = 2_000;

type Flows = Vec<((NodeId, NodeId, TrafficClass), FlowCounter)>;
type Faults = Vec<((NodeId, NodeId), FaultCounter)>;

fn us(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000)
}

fn chaos_seed() -> u64 {
    std::env::var("FRACTOS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(61)
}

/// Everything a crash run produces, for invariant and replay checks.
#[derive(Debug, PartialEq)]
struct CrashOut {
    outcomes: Vec<RequestOutcome>,
    completed: usize,
    latencies_ns: Vec<u64>,
    failures: Vec<(SimTime, usize)>,
    rehomes: Vec<(SimTime, usize, usize)>,
    redispatches: Vec<SimTime>,
    recoveries: Vec<SimTime>,
    declared: Vec<(ControllerAddr, SimTime, SimTime)>,
    wd_recovered: Vec<(ControllerAddr, SimTime)>,
    revocations: Vec<(ControllerAddr, SimTime)>,
    outage_drops: u64,
    steps: u64,
    end_ns: u64,
    flows: Flows,
    faults: Faults,
}

struct Scene {
    tb: Testbed,
    ctrls: Vec<ControllerAddr>,
    wd: ActorId,
    workers: Vec<ProcId>,
    client: ProcId,
}

/// Builds the recovery scene: Controllers on every node, the watchdog on
/// node 0, the "echo" service replicated on nodes 1 and 2 (registration
/// order = failover priority), and the failover client on node 0. The
/// bootstrap runs before the plan is armed, so the crash hits a warm,
/// mid-workload cluster.
fn build_scene(kind: RuntimeKind, seed: u64, plan: Option<FaultPlan>) -> Scene {
    let mut tb = Testbed::new_on(Topology::paper_testbed(), NetParams::paper(), seed, kind);
    let ctrls = tb.controllers_per_node(false);
    let placements = [(cpu(1), ctrls[1]), (cpu(2), ctrls[2])];
    let dep = deploy_replicated(
        &mut tb,
        "echo",
        &placements,
        SimDuration::from_micros(SERVICE_US),
    );
    // The watchdog starts after the bootstrap: it re-arms its tick forever,
    // so the deploy helper's queue-draining runs must happen first.
    let wd = tb.start_watchdog(NodeId(0));
    tb.reset_traffic();
    let dir = tb.dir.clone();
    let client = tb.add_process(
        "client",
        cpu(0),
        ctrls[0],
        FailoverClient::new("echo", 2, ITERS, dir),
    );
    if let Some(plan) = plan {
        tb.install_fault_plan(plan, seed);
    }
    tb.start_process(client);
    Scene {
        tb,
        ctrls,
        wd,
        workers: dep.workers,
        client,
    }
}

fn collect(scene: &mut Scene) -> CrashOut {
    let Scene {
        tb,
        ctrls,
        wd,
        client,
        ..
    } = scene;
    let (outcomes, completed, latencies_ns, failures, rehomes, redispatches, recoveries) =
        tb.with_service::<FailoverClient, _>(*client, |c| {
            assert!(c.all_resolved(), "client left a request unresolved");
            (
                c.outcomes.clone(),
                c.outcomes
                    .iter()
                    .filter(|o| **o == RequestOutcome::Completed)
                    .count(),
                c.latencies.iter().map(|d| d.as_nanos()).collect::<Vec<_>>(),
                c.failures.clone(),
                c.rehomes.clone(),
                c.redispatches.clone(),
                c.recoveries.clone(),
            )
        });
    let (declared, wd_recovered) = tb
        .sim
        .with_actor::<WatchdogActor, _>(*wd, |w| (w.declared.clone(), w.recovered_at.clone()));
    let revocations = tb.with_controller(ctrls[0], |c| c.peer_revocations.clone());
    let traffic = tb.traffic();
    CrashOut {
        outcomes,
        completed,
        latencies_ns,
        failures,
        rehomes,
        redispatches,
        recoveries,
        declared,
        wd_recovered,
        revocations,
        outage_drops: tb.sim.metrics().counter("engine.outage_drops"),
        steps: tb.sim.steps(),
        end_ns: tb.now().as_nanos(),
        flows: traffic.flows().map(|(k, v)| (*k, *v)).collect(),
        faults: traffic.fault_links().map(|(k, v)| (*k, *v)).collect(),
    }
}

fn run_crash(kind: RuntimeKind, seed: u64, plan: Option<FaultPlan>) -> CrashOut {
    let mut scene = build_scene(kind, seed, plan);
    scene.tb.run_until(us(DEADLINE_US));
    collect(&mut scene)
}

fn crash_stop_plan() -> FaultPlan {
    FaultPlan::new().crash_node(NodeId(1), us(CRASH_AT_US))
}

fn crash_restart_plan() -> FaultPlan {
    FaultPlan::new().crash_restart_node(NodeId(1), us(CRASH_AT_US), us(RESTART_AT_US))
}

/// Tentpole invariants under a crash-stop of the primary's node: every
/// request resolves (success or typed verdict, no hang), the watchdog
/// escalates to a real death declaration, capabilities minted by the dead
/// Controller are revoked everywhere, work re-homes to the survivor, and
/// the unavailability window is bounded.
#[test]
fn crash_stop_recovers_to_survivor() {
    let seed = chaos_seed();
    let mut scene = build_scene(RuntimeKind::from_env(), seed, Some(crash_stop_plan()));
    scene.tb.run_until(us(DEADLINE_US));
    let ctrls = scene.ctrls.clone();
    let client = scene.client;
    let workers = scene.workers.clone();
    let out = collect(&mut scene);

    // Every request resolved; most completed (only the in-flight one may
    // end in a typed verdict after exhausting failover attempts).
    assert_eq!(out.outcomes.len() as u64, ITERS, "requests lost");
    assert!(
        out.completed as u64 >= ITERS - 1,
        "too few completions: {} of {ITERS} (seed {seed})",
        out.completed
    );

    // The recovery pipeline demonstrably ran end to end.
    assert!(!out.failures.is_empty(), "client never observed the crash");
    assert_eq!(
        out.declared.iter().map(|(a, _, _)| *a).collect::<Vec<_>>(),
        vec![ctrls[1]],
        "watchdog did not declare the crashed Controller dead"
    );
    assert!(
        out.revocations.iter().any(|(a, _)| *a == ctrls[1]),
        "client's Controller never revoked the dead peer's capabilities"
    );
    assert_eq!(out.rehomes.len(), 1, "expected exactly one re-home");
    let (rehome_t, from, to) = out.rehomes[0];
    assert_eq!((from, to), (0, 1), "re-home must move primary -> survivor");
    assert_eq!(out.recoveries.len(), 1, "expected one recovery");

    // Crash-stop: the node never comes back, so no watchdog recovery.
    assert!(out.wd_recovered.is_empty(), "crash-stop node 'recovered'");
    assert!(
        out.outage_drops > 0,
        "no deliveries were dropped by the outage"
    );

    // Milestone ordering: crash <= first miss <= declared <= revoked (at
    // the client's Controller) and failure <= re-home <= re-dispatch <=
    // recovered.
    let crash = us(CRASH_AT_US);
    let (_, first_miss, declared_t) = out.declared[0];
    let revoke_t = out
        .revocations
        .iter()
        .find(|(a, _)| *a == ctrls[1])
        .map(|(_, t)| *t)
        .expect("checked above");
    assert!(crash <= first_miss && first_miss <= declared_t && declared_t <= revoke_t);
    let first_failure = out.failures[0].0;
    let recovered_t = out.recoveries[0];
    assert!(first_failure <= rehome_t && rehome_t <= recovered_t);
    assert!(
        out.redispatches.iter().all(|t| *t >= first_failure),
        "re-dispatch before the failure it answers"
    );

    // Bounded unavailability.
    let window = recovered_t.duration_since(crash);
    assert!(
        window <= SimDuration::from_micros(MTTR_BOUND_US),
        "unavailability window {window:?} exceeds {MTTR_BOUND_US} us (seed {seed})"
    );

    // No capability leaks through the dead epoch: the client's space holds
    // nothing minted by the dead Controller, and the registry no longer
    // advertises the dead instance.
    scene.tb.with_controller(ctrls[0], |c| {
        assert!(
            !c.holds_cap_of(client, ctrls[1]),
            "client still holds a dead Controller's capability"
        );
        assert!(
            !c.kv_keys().iter().any(|k| k.starts_with("echo.0.")),
            "registry still advertises the dead instance"
        );
    });

    // The dead instance's Process is gone for good; the survivor routes.
    let dir = scene.tb.dir.borrow();
    assert!(dir.is_declared_dead(ctrls[1]), "death verdict not standing");
    assert!(dir.death_epoch(ctrls[1]) > 0, "death epoch not bumped");
    let route = dir.service_route("echo").expect("survivor must route");
    assert_eq!(route.proc, workers[1], "routing did not re-home");
}

/// Crash-restart: the node reboots with a fresh epoch. The watchdog's
/// recovery probes notice the revived Controller and withdraw the verdict,
/// but the Processes that died with the node stay dead (§3.6 — their state
/// is gone), so the service keeps routing to the survivor.
#[test]
fn crash_restart_revives_controller_with_fresh_epoch() {
    let seed = chaos_seed();
    let mut scene = build_scene(RuntimeKind::from_env(), seed, Some(crash_restart_plan()));
    let epoch_before = scene
        .tb
        .with_controller(scene.ctrls[1], |c| c.table().epoch());
    scene.tb.run_until(us(DEADLINE_US));
    let ctrls = scene.ctrls.clone();
    let workers = scene.workers.clone();
    let out = collect(&mut scene);

    // Declared dead during the outage, then observed again after reboot.
    assert_eq!(
        out.declared.iter().map(|(a, _, _)| *a).collect::<Vec<_>>(),
        vec![ctrls[1]]
    );
    assert_eq!(
        out.wd_recovered.iter().map(|(a, _)| *a).collect::<Vec<_>>(),
        vec![ctrls[1]],
        "rebooted Controller not observed by recovery probes"
    );
    let recovered_at = out.wd_recovered[0].1;
    assert!(
        recovered_at >= us(RESTART_AT_US),
        "recovery observed before the restart"
    );

    // Fresh epoch: every pre-crash capability is stale (§3.6).
    let epoch_after = scene.tb.with_controller(ctrls[1], |c| c.table().epoch());
    assert!(
        epoch_after > epoch_before,
        "reboot did not advance the epoch"
    );

    // Verdict withdrawn, but the dead Process stays dead: routing still
    // prefers the survivor.
    {
        let dir = scene.tb.dir.borrow();
        assert!(!dir.is_declared_dead(ctrls[1]), "verdict not withdrawn");
        let route = dir.service_route("echo").expect("route");
        assert_eq!(route.proc, workers[1], "dead Process revived by restart");
        assert!(
            dir.proc(workers[0]).is_some_and(|p| !p.alive),
            "crashed Process marked alive after restart"
        );
    }

    // The revived Controller serves new Processes again.
    struct Probe {
        ok: bool,
    }
    impl Service for Probe {
        fn on_start(&mut self, fos: &Fos<Self>) {
            fos.request_create_new(0x9999, vec![], vec![], |s: &mut Self, res, _| {
                s.ok = res.is_ok();
            });
        }
        fn on_request(&mut self, _req: IncomingRequest, _fos: &Fos<Self>) {}
    }
    let probe = scene
        .tb
        .add_process("probe", cpu(1), ctrls[1], Probe { ok: false });
    scene.tb.start_process(probe);
    scene.tb.run_until(us(DEADLINE_US + 2_000));
    scene
        .tb
        .with_service::<Probe, _>(probe, |p| assert!(p.ok, "post-reboot syscall failed"));
}

/// Determinism gate: the same `(seed, plan)` replays the whole recovery
/// timeline byte-identically — twice on the selected backend, and across
/// the single-threaded and sharded engines.
#[test]
fn crash_recovery_replays_bit_identically() {
    let seed = chaos_seed();
    let a = run_crash(RuntimeKind::from_env(), seed, Some(crash_stop_plan()));
    let b = run_crash(RuntimeKind::from_env(), seed, Some(crash_stop_plan()));
    assert_eq!(a, b, "same (seed, plan, backend) diverged");
    let single = run_crash(RuntimeKind::SingleThreaded, seed, Some(crash_stop_plan()));
    let sharded = run_crash(RuntimeKind::Sharded, seed, Some(crash_stop_plan()));
    assert_eq!(
        single, sharded,
        "recovery timeline diverged across backends"
    );

    let ra = run_crash(RuntimeKind::from_env(), seed, Some(crash_restart_plan()));
    let rb = run_crash(RuntimeKind::from_env(), seed, Some(crash_restart_plan()));
    assert_eq!(ra, rb, "crash-restart replay diverged");
}

/// Acceptance gate: an armed-but-empty plan is bit-identical to no plan —
/// no outage drops, no Kill/Reboot posts, same steps, traffic and results.
#[test]
fn crash_empty_plan_is_neutral() {
    let base = run_crash(RuntimeKind::SingleThreaded, 61, None);
    let empty = run_crash(RuntimeKind::SingleThreaded, 61, Some(FaultPlan::default()));
    assert_eq!(base, empty, "empty plan perturbed the run");
    assert_eq!(base.outage_drops, 0, "outage drops without a crash plan");
    assert!(base.failures.is_empty(), "failures without a plan");
    assert_eq!(base.completed as u64, ITERS, "fault-free run lost requests");
}
