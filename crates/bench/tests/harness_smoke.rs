//! Smoke tests locking the reproduction harness into `cargo test`: every
//! runner must execute, and the paper's key orderings must hold, on small
//! configurations. (The full sweeps live in the bench targets.)

use fractos_bench::apps::{
    baseline_faceverify, fractos_faceverify, gpu_service_fractos, gpu_service_rcuda,
    pipeline_latency, storage_disagg_baseline, storage_fractos, FvDeploy, PipelineKind,
};
use fractos_bench::micro::{
    delegation_rtt, memcopy_latency, null_op_rtt, raw_loopback_rtt, raw_rdma_write, revoke_latency,
    rpc_latency,
};
use fractos_services::fs::FsMode;

#[test]
fn table3_anchors_hold() {
    assert!((raw_loopback_rtt(false) - 2.42).abs() < 0.15);
    assert!((raw_loopback_rtt(true) - 3.68).abs() < 0.15);
    assert!((null_op_rtt(false) - 3.00).abs() < 0.15);
    assert!((null_op_rtt(true) - 4.50).abs() < 0.25);
}

#[test]
fn fig5_orderings_hold() {
    let raw = raw_rdma_write(4096);
    let cpu = memcopy_latency(4096, false, false);
    let snic = memcopy_latency(4096, true, false);
    let hw = memcopy_latency(4096, false, true);
    assert!(
        raw < hw && hw < cpu && cpu < snic,
        "{raw} {hw} {cpu} {snic}"
    );
    // One-byte anchor: 12.7 µs CPU in the paper.
    let one = memcopy_latency(1, false, false);
    assert!((one - 12.7).abs() < 2.0, "1B copy {one:.1} µs");
}

#[test]
fn fig6_orderings_hold() {
    let c1 = rpc_latency(false, false, 0);
    let c2 = rpc_latency(true, false, 0);
    let s1 = rpc_latency(false, true, 0);
    let s2 = rpc_latency(true, true, 0);
    assert!(c1 < c2 && c1 < s1 && s1 < s2 && c2 < s2);
    // Argument bytes cost what the data plane costs.
    assert!(rpc_latency(true, false, 65536) > c2 + 30.0);
}

#[test]
fn fig7_shapes_hold() {
    let base = delegation_rtt(0, false);
    let with4 = delegation_rtt(4, false);
    let per_cap = (with4 - base) / 4.0;
    assert!((1.5..4.5).contains(&per_cap), "per-cap {per_cap:.2} µs");

    let lin = revoke_latency(16, false, false);
    let shared = revoke_latency(16, true, false);
    assert!(
        lin > shared * 8.0,
        "linear {lin:.1} vs constant {shared:.1}"
    );
}

#[test]
fn fig8_ordering_holds() {
    let star = pipeline_latency(PipelineKind::Star, 3, 16 * 1024);
    let fast = pipeline_latency(PipelineKind::FastStar, 3, 16 * 1024);
    let chain = pipeline_latency(PipelineKind::Chain, 3, 16 * 1024);
    assert!(star > fast && fast > chain, "{star} {fast} {chain}");
}

#[test]
fn fig9_fractos_beats_rcuda_even_on_snic() {
    let (cpu, _) = gpu_service_fractos(4096, 4, 6, 1, false);
    let (snic, _) = gpu_service_fractos(4096, 4, 6, 1, true);
    let (rcuda, _) = gpu_service_rcuda(4096, 4, 6, 1);
    assert!(cpu < snic && snic < rcuda, "{cpu} {snic} {rcuda}");
}

#[test]
fn fig10_shapes_hold() {
    let (fs_r, _) = storage_fractos(FsMode::Mediated, 16 * 1024, 8, 1, false, false, false);
    let (dax_r, _) = storage_fractos(FsMode::Dax, 16 * 1024, 8, 1, false, false, false);
    let (base_r, _) = storage_disagg_baseline(16 * 1024, 8, 1, false, false);
    assert!(dax_r < fs_r, "DAX {dax_r} must beat FS {fs_r}");
    assert!(
        (fs_r - base_r).abs() / fs_r < 0.25,
        "FS {fs_r} ≈ baseline {base_r} for cold random reads"
    );
    // Writes: the baseline's cache absorption wins.
    let (fs_w, _) = storage_fractos(FsMode::Mediated, 16 * 1024, 8, 1, true, false, false);
    let (base_w, _) = storage_disagg_baseline(16 * 1024, 8, 1, true, false);
    assert!(base_w < fs_w, "baseline writes {base_w} beat FS {fs_w}");
}

#[test]
fn headline_shape_holds() {
    let fos = fractos_faceverify(FvDeploy::Cpu, 4096, 8, 6, 1);
    let base = baseline_faceverify(4096, 8, 6, 1);
    assert!(fos.ok && base.ok);
    assert!(fos.lat_mean < base.lat_mean);
    assert!(base.net_bytes as f64 / fos.net_bytes as f64 > 1.7);
}
