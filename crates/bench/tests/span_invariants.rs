//! Span-tree invariants and the tracing zero-overhead guarantee.
//!
//! The causal-span subsystem promises: (1) every recorded span belongs to a
//! well-formed tree rooted at one top-level Request — live parents, no
//! cycles, one root per request; (2) the exported Chrome Trace Event JSON
//! is byte-identical across runtime backends and repeat runs for equal
//! `(seed, workload)`, including under an armed chaos fault plan; and
//! (3) recording is free when disabled — per-link traffic counters, the
//! virtual end time, and the Table 3 calibration anchors are bit-identical
//! with and without the subsystem engaged.

use std::collections::HashMap;

use fractos_core::prelude::*;
use fractos_net::stats::{FlowCounter, TrafficClass};
use fractos_net::{FaultPlan, NetParams, NodeId, Topology};
use fractos_obs::chrome_trace;
use fractos_services::deploy::deploy_faceverify;
use fractos_services::faceverify::FvClient;
use fractos_services::FvConfig;
use fractos_sim::{RuntimeKind, SimTime, SpanKind, SpanRecord};

const IMG: u64 = 4096;
const BATCH: u64 = 8;
const REQUESTS: u64 = 8;

type Flows = Vec<((NodeId, NodeId, TrafficClass), FlowCounter)>;

fn us(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000)
}

/// A recoverable chaos plan: a lossy client↔storage link, one guaranteed
/// early drop, and a transient degradation window. Enough to force
/// retransmit and fault spans without losing any request.
fn lossy_plan() -> FaultPlan {
    FaultPlan::new()
        .drop_prob_between(NodeId(2), NodeId(0), 0.05)
        .one_shot(NodeId(2), NodeId(2), us(20))
        .degrade(NodeId(2), NodeId(0), us(10), us(10_000), 4.0)
        .degrade(NodeId(0), NodeId(2), us(10), us(10_000), 4.0)
}

struct Traced {
    spans: Vec<SpanRecord>,
    actor_names: Vec<String>,
    flows: Flows,
    end: SimTime,
    verdicts: Vec<bool>,
}

/// Runs the Fig 2 FractOS deployment on `kind` (optionally under `plan`),
/// with span recording switched on after boot iff `spans_on`.
fn run_fig2(kind: RuntimeKind, plan: Option<FaultPlan>, spans_on: bool) -> Traced {
    let mut tb = Testbed::new_on(Topology::paper_testbed(), NetParams::paper(), 61, kind);
    let ctrls = tb.controllers_per_node(false);
    deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
    tb.reset_traffic();
    if let Some(plan) = plan {
        tb.install_fault_plan(plan, 61);
    }
    if spans_on {
        tb.sim.enable_spans();
    }
    let client = tb.add_process(
        "client",
        cpu(2),
        ctrls[2],
        FvClient::new(IMG, BATCH, REQUESTS, 1),
    );
    tb.start_process(client);
    tb.run();
    let verdicts = tb.with_service::<FvClient, _>(client, |c| {
        assert_eq!(c.samples.len() as u64, REQUESTS, "requests lost");
        c.samples.iter().map(|s| s.all_matched).collect::<Vec<_>>()
    });
    let spans = if spans_on {
        tb.sim.take_spans()
    } else {
        Vec::new()
    };
    let actor_names = (0..tb.sim.actor_count())
        .map(|i| {
            tb.sim
                .actor_name(fractos_sim::ActorId::from_raw(i as u32))
                .to_string()
        })
        .collect();
    Traced {
        spans,
        actor_names,
        flows: tb.traffic().flows().map(|(k, v)| (*k, *v)).collect(),
        end: tb.now(),
        verdicts,
    }
}

fn render_chrome(t: &Traced) -> String {
    let names = &t.actor_names;
    chrome_trace(&t.spans, |i| {
        names.get(i).cloned().unwrap_or_else(|| format!("actor{i}"))
    })
    .to_string()
}

/// Every span has a live parent, trees are acyclic, time nests forward,
/// and roots are 1:1 with top-level Requests.
#[test]
fn span_trees_are_well_formed() {
    let t = run_fig2(RuntimeKind::SingleThreaded, None, true);
    assert!(!t.spans.is_empty(), "tracing recorded nothing");
    let by_id: HashMap<u64, &SpanRecord> = t.spans.iter().map(|s| (s.id, s)).collect();
    assert_eq!(by_id.len(), t.spans.len(), "span ids must be unique");
    let roots: Vec<&&SpanRecord> = by_id.values().filter(|s| s.parent == 0).collect();
    assert_eq!(
        roots.len() as u64,
        REQUESTS,
        "exactly one root span per top-level request"
    );
    for s in &t.spans {
        assert_ne!(s.id, 0, "span id 0 is reserved for 'no parent'");
        assert!(s.start <= s.end, "span must not end before it starts");
        if s.parent == 0 {
            assert_eq!(
                s.trace, s.id,
                "a root's trace id is its own span id ({:016x})",
                s.id
            );
            assert_eq!(s.kind, SpanKind::Syscall, "roots are top-level syscalls");
            continue;
        }
        let p = by_id
            .get(&s.parent)
            .unwrap_or_else(|| panic!("span {:016x} has a dead parent {:016x}", s.id, s.parent));
        assert_eq!(
            s.trace, p.trace,
            "child {:016x} and parent {:016x} disagree on trace id",
            s.id, s.parent
        );
        assert!(
            p.start <= s.start,
            "child {:016x} starts before its parent {:016x}",
            s.id,
            s.parent
        );
        // Acyclic: walking up must reach a root within the tree size.
        let mut cur = s.parent;
        let mut hops = 0usize;
        while cur != 0 {
            cur = by_id[&cur].parent;
            hops += 1;
            assert!(hops <= t.spans.len(), "cycle in span tree at {:016x}", s.id);
        }
    }
}

/// Equal `(seed, workload)` yields byte-identical Chrome-trace JSON on both
/// runtime backends, and across repeat runs of the same backend.
#[test]
fn chrome_trace_is_byte_identical_across_backends() {
    let single = run_fig2(RuntimeKind::SingleThreaded, None, true);
    let again = run_fig2(RuntimeKind::SingleThreaded, None, true);
    let sharded = run_fig2(RuntimeKind::Sharded, None, true);
    assert!(single.verdicts.iter().all(|&m| m));
    let a = render_chrome(&single);
    assert_eq!(a, render_chrome(&again), "repeat run diverged");
    assert_eq!(single.spans, sharded.spans, "span records diverged");
    assert_eq!(a, render_chrome(&sharded), "backends diverged");
}

/// The same holds with a chaos fault plan armed: drops, retransmits and
/// fault spans are derived from the deterministic plan hash, so both
/// backends still export identical bytes — and the plan demonstrably fired.
#[test]
fn chrome_trace_is_byte_identical_across_backends_under_chaos() {
    let single = run_fig2(RuntimeKind::SingleThreaded, Some(lossy_plan()), true);
    let sharded = run_fig2(RuntimeKind::Sharded, Some(lossy_plan()), true);
    assert!(
        single.verdicts.iter().all(|&m| m),
        "chaos run lost requests"
    );
    assert!(
        single
            .spans
            .iter()
            .any(|s| matches!(s.kind, SpanKind::Fault | SpanKind::Retransmit)),
        "plan armed but no fault/retransmit spans recorded"
    );
    assert_eq!(single.spans, sharded.spans, "span records diverged");
    assert_eq!(
        render_chrome(&single),
        render_chrome(&sharded),
        "backends diverged under chaos"
    );
}

/// With spans recording on, the per-link message/byte counters and the
/// virtual end time are bit-identical to a run with the subsystem off: the
/// trace context rides out of band and recording never perturbs the
/// simulation.
#[test]
fn tracing_does_not_perturb_the_workload() {
    let off = run_fig2(RuntimeKind::SingleThreaded, None, false);
    let on = run_fig2(RuntimeKind::SingleThreaded, None, true);
    assert_eq!(off.flows, on.flows, "traffic counters changed with tracing");
    assert_eq!(off.end, on.end, "virtual end time changed with tracing");
    assert_eq!(off.verdicts, on.verdicts, "payload verdicts changed");
}

/// Overhead guard: with tracing disabled (the default), the four Table 3
/// calibration anchors are bit-identical to the pre-subsystem seed
/// behaviour (the measured values recorded in EXPERIMENTS.md and gated by
/// CI at ±0.1 µs).
#[test]
fn table3_anchors_unchanged_with_tracing_disabled() {
    use fractos_bench::micro::{null_op_rtt, raw_loopback_rtt};
    use fractos_bench::report::us;
    assert_eq!(us(raw_loopback_rtt(false)), "2.46");
    assert_eq!(us(raw_loopback_rtt(true)), "3.72");
    assert_eq!(us(null_op_rtt(false)), "3.05");
    assert_eq!(us(null_op_rtt(true)), "4.55");
}
