//! Chaos suite: the Fig 2 workload under an armed fault plan.
//!
//! Every test here is replayable from `(seed, plan)`: the fault decisions
//! are hashed from the plan seed and per-link message indices, never drawn
//! from the caller's RNG, so the same seed and plan reproduce the same
//! drops, the same retransmissions and the same end state — on both
//! runtime backends. CI runs this suite across a seed × backend matrix
//! (`FRACTOS_CHAOS_SEED` × `FRACTOS_RUNTIME`).
//!
//! The plan used for the completion tests is *recoverable*: probabilistic
//! drops and transient degradation, but no unhealed partition, so the
//! retransmit layer (bounded retries, §3.6 failure translation only on
//! exhaustion) must carry every request to completion.

use fractos_core::prelude::*;
use fractos_core::WatchdogActor;
use fractos_net::stats::{FaultCounter, FlowCounter, TrafficClass};
use fractos_net::{DeviceFaultCounter, Endpoint, FaultPlan, NetParams, NodeId, Topology};
use fractos_services::deploy::deploy_faceverify;
use fractos_services::faceverify::FvClient;
use fractos_services::{FaceVerifyFrontend, FvConfig};
use fractos_sim::{RuntimeKind, SimTime};

const IMG: u64 = 4096;
const BATCH: u64 = 8;
const REQUESTS: u64 = 10;

type Flows = Vec<((NodeId, NodeId, TrafficClass), FlowCounter)>;
type Faults = Vec<((NodeId, NodeId), FaultCounter)>;

fn us(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000)
}

/// Seed for the chaos matrix; CI sweeps it, local runs default to the
/// seed the deterministic suites pin.
fn chaos_seed() -> u64 {
    std::env::var("FRACTOS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(61)
}

/// A recoverable plan for the Fig 2 deployment: lossy client links, one
/// guaranteed early drop, and a transient slowdown of the GPU ↔ storage
/// link. No partitions — every control message must eventually get
/// through within the retry budget.
fn recoverable_plan() -> FaultPlan {
    FaultPlan::new()
        .drop_prob_between(NodeId(2), NodeId(0), 0.05)
        .drop_prob_between(NodeId(2), NodeId(1), 0.05)
        .one_shot(NodeId(2), NodeId(2), us(20))
        .degrade(NodeId(2), NodeId(0), us(10), us(10_000), 4.0)
        .degrade(NodeId(0), NodeId(2), us(10), us(10_000), 4.0)
}

/// Everything a chaos run produces, for completion and replay checks.
#[derive(Debug, PartialEq)]
struct RunOut {
    flows: Flows,
    faults: Faults,
    dev_faults: Vec<(Endpoint, DeviceFaultCounter)>,
    verdicts: Vec<bool>,
    fv_retried: u64,
}

/// Runs the FractOS Fig 2 deployment on `kind` with `plan` armed from the
/// workload start and `params` on the wire; returns per-link traffic and
/// fault counters, per-device fault counters, the per-request match
/// verdicts, and the frontend's retry count.
fn run_fv(kind: RuntimeKind, seed: u64, plan: Option<FaultPlan>, params: NetParams) -> RunOut {
    let mut tb = Testbed::new_on(Topology::paper_testbed(), params, seed, kind);
    let ctrls = tb.controllers_per_node(false);
    let dep = deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
    tb.reset_traffic();
    if let Some(plan) = plan {
        tb.install_fault_plan(plan, seed);
    }
    let client = tb.add_process(
        "client",
        cpu(2),
        ctrls[2],
        FvClient::new(IMG, BATCH, REQUESTS, 2),
    );
    tb.start_process(client);
    tb.run();
    let verdicts = tb.with_service::<FvClient, _>(client, |c| {
        assert_eq!(
            c.samples.len() as u64,
            REQUESTS,
            "requests lost under a recoverable plan"
        );
        c.samples.iter().map(|s| s.all_matched).collect::<Vec<_>>()
    });
    let fv_retried = tb.with_service::<FaceVerifyFrontend, _>(dep.frontend, |f| f.retried);
    let traffic = tb.traffic();
    RunOut {
        flows: traffic.flows().map(|(k, v)| (*k, *v)).collect(),
        faults: traffic.fault_links().map(|(k, v)| (*k, *v)).collect(),
        dev_faults: traffic
            .device_fault_devices()
            .map(|(k, v)| (*k, *v))
            .collect(),
        verdicts,
        fv_retried,
    }
}

/// [`run_fv`] with the paper's wire parameters (integrity checking on).
fn run_faulty(kind: RuntimeKind, seed: u64, plan: Option<FaultPlan>) -> (Flows, Faults, Vec<bool>) {
    let out = run_fv(kind, seed, plan, NetParams::paper());
    (out.flows, out.faults, out.verdicts)
}

/// Under the recoverable plan, every request completes and verifies on the
/// backend selected by `FRACTOS_RUNTIME`, and the plan demonstrably fired.
#[test]
fn chaos_fig2_completes_under_faults() {
    let seed = chaos_seed();
    let (flows, faults, verdicts) =
        run_faulty(RuntimeKind::from_env(), seed, Some(recoverable_plan()));
    assert!(!flows.is_empty(), "workload produced no traffic");
    assert!(
        verdicts.iter().all(|&m| m),
        "a request failed verification under seed {seed}"
    );
    let dropped: u64 = faults.iter().map(|(_, c)| c.dropped).sum();
    let degraded: u64 = faults.iter().map(|(_, c)| c.degraded).sum();
    assert!(dropped > 0, "plan armed but nothing was dropped");
    assert!(degraded > 0, "plan armed but nothing was degraded");
}

/// Acceptance gate: an armed-but-empty plan is bit-identical to no plan —
/// same flows, same verdicts, zero fault counters.
#[test]
fn chaos_default_plan_is_counter_neutral() {
    let (base_flows, base_faults, base_verdicts) =
        run_faulty(RuntimeKind::SingleThreaded, 61, None);
    let (plan_flows, plan_faults, plan_verdicts) =
        run_faulty(RuntimeKind::SingleThreaded, 61, Some(FaultPlan::default()));
    assert!(base_faults.is_empty(), "fault counters without a plan");
    assert!(plan_faults.is_empty(), "empty plan produced fault counters");
    assert_eq!(base_flows, plan_flows, "empty plan perturbed traffic");
    assert_eq!(base_verdicts, plan_verdicts, "empty plan perturbed results");
}

/// The same `(seed, plan)` must replay bit-identically across the
/// single-threaded and sharded engines: drops and partitions resolve at
/// the fabric layer, below the shard barrier.
#[test]
fn chaos_same_seed_and_plan_bit_identical_across_backends() {
    let seed = chaos_seed();
    let (single_flows, single_faults, single_verdicts) =
        run_faulty(RuntimeKind::SingleThreaded, seed, Some(recoverable_plan()));
    let (sharded_flows, sharded_faults, sharded_verdicts) =
        run_faulty(RuntimeKind::Sharded, seed, Some(recoverable_plan()));
    assert_eq!(
        single_faults, sharded_faults,
        "per-link fault counters diverged across backends"
    );
    assert_eq!(
        single_flows, sharded_flows,
        "per-link traffic counters diverged across backends"
    );
    assert_eq!(
        single_verdicts, sharded_verdicts,
        "verdicts diverged across backends"
    );
}

/// The telemetry plane rides through chaos runs deterministically: with
/// the recoverable plan armed and sampling on, every exporter replays
/// byte-identically across repeats and backends, and the injected-fault
/// rate shows up as `link.*.drops` / `link.*.degraded` series.
#[test]
fn chaos_telemetry_exports_replay_byte_identically() {
    let seed = chaos_seed();
    let period = fractos_sim::SimDuration::from_nanos(50_000);
    let run = |kind: RuntimeKind| {
        let mut tb = Testbed::new_on(Topology::paper_testbed(), NetParams::paper(), seed, kind);
        let ctrls = tb.controllers_per_node(false);
        deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
        tb.reset_traffic();
        tb.install_fault_plan(recoverable_plan(), seed);
        tb.enable_telemetry(period);
        let client = tb.add_process(
            "client",
            cpu(2),
            ctrls[2],
            FvClient::new(IMG, BATCH, REQUESTS, 2),
        );
        tb.start_process(client);
        tb.run();
        tb.with_service::<FvClient, _>(client, |c| {
            assert_eq!(c.samples.len() as u64, REQUESTS);
        });
        let report = fractos_obs::TelemetryReport::derive(&tb.take_telemetry(), period);
        (
            report.to_json(false).to_string(),
            report.jsonl(false),
            report.prometheus(false),
        )
    };
    let (json_a, jsonl_a, prom_a) = run(RuntimeKind::SingleThreaded);
    let (json_b, jsonl_b, prom_b) = run(RuntimeKind::SingleThreaded);
    let (json_s, jsonl_s, prom_s) = run(RuntimeKind::Sharded);
    assert!(
        json_a.contains(".drops") || json_a.contains(".degraded"),
        "plan armed but no injected-fault series recorded (seed {seed})"
    );
    assert_eq!(json_a, json_b, "telemetry JSON diverged between repeats");
    assert_eq!(jsonl_a, jsonl_b, "telemetry JSONL diverged between repeats");
    assert_eq!(prom_a, prom_b, "Prometheus diverged between repeats");
    assert_eq!(json_a, json_s, "telemetry JSON diverged across backends");
    assert_eq!(jsonl_a, jsonl_s, "telemetry JSONL diverged across backends");
    assert_eq!(prom_a, prom_s, "Prometheus diverged across backends");
}

/// A recoverable *device*-fault plan for the Fig 2 deployment: the GPU
/// occasionally fails launches and corrupts outputs, the NVMe behind the
/// FS fails media reads and tears writes. Every fault is transient, so
/// the per-stage retry budgets (`RetryPolicy::fv_retries`, `fs_io_retries`) must carry
/// every request to completion with verified payloads.
fn recoverable_device_plan() -> FaultPlan {
    FaultPlan::new()
        .gpu_launch_errors(gpu(1), 0.15)
        .gpu_output_corruption(gpu(1), 0.05)
        .device_latency_spikes(gpu(1), 0.1, 4.0)
        .nvme_read_errors(nvme(0), 0.2)
        .nvme_torn_writes(nvme(0), 0.1)
}

/// Under the recoverable device plan, every Fig 2 request completes with
/// a verified payload on the backend selected by `FRACTOS_RUNTIME`, and
/// the injected device faults demonstrably fired and were recovered.
#[test]
fn chaos_fig2_completes_under_device_faults() {
    let seed = chaos_seed();
    let out = run_fv(
        RuntimeKind::from_env(),
        seed,
        Some(recoverable_device_plan()),
        NetParams::paper(),
    );
    assert!(
        out.verdicts.iter().all(|&m| m),
        "a request failed verification under device faults, seed {seed}"
    );
    let total: u64 = out
        .dev_faults
        .iter()
        .map(|(_, c)| c.failed + c.torn + c.corrupted + c.spiked)
        .sum();
    assert!(
        total > 0,
        "device plan armed but nothing fired (seed {seed})"
    );
    let gpu_errors: u64 = out
        .dev_faults
        .iter()
        .filter(|(e, _)| *e == gpu(1))
        .map(|(_, c)| c.failed + c.corrupted)
        .sum();
    if gpu_errors > 0 {
        assert!(
            out.fv_retried > 0,
            "GPU faults fired but the frontend never retried (seed {seed})"
        );
    }
}

/// The same `(seed, device plan)` replays bit-identically: twice on one
/// backend, and the device-fault counters and verdicts also agree across
/// backends (draws are keyed by per-device op index, not wall clock).
#[test]
fn chaos_device_faults_replay_bit_identically() {
    let seed = chaos_seed();
    let a = run_fv(
        RuntimeKind::SingleThreaded,
        seed,
        Some(recoverable_device_plan()),
        NetParams::paper(),
    );
    let b = run_fv(
        RuntimeKind::SingleThreaded,
        seed,
        Some(recoverable_device_plan()),
        NetParams::paper(),
    );
    assert_eq!(a, b, "same (seed, plan, backend) diverged");
    let c = run_fv(
        RuntimeKind::Sharded,
        seed,
        Some(recoverable_device_plan()),
        NetParams::paper(),
    );
    assert_eq!(
        a.dev_faults, c.dev_faults,
        "device-fault counters diverged across backends"
    );
    assert_eq!(a.verdicts, c.verdicts, "verdicts diverged across backends");
    assert_eq!(
        a.fv_retried, c.fv_retried,
        "recovery retries diverged across backends"
    );
}

/// Tentpole acceptance: payload corruption injected on the GPU → frontend
/// data link is *observable* without integrity envelopes (wrong bytes
/// reach the application) and *detected and recovered* with them.
#[test]
fn chaos_payload_corruption_detected_and_recovered() {
    // Pinned seed: the unchecked half asserts that a bit flip actually
    // lands in a result byte, which is a property of the specific draws.
    let seed = 61;
    let plan = || Some(FaultPlan::new().corrupt_data(NodeId(1), NodeId(2), 0.35));

    // Checked (the paper's wire, end-to-end integrity on): every
    // corrupted copy is caught by the envelope and retried; all verdicts
    // hold.
    let checked = run_fv(
        RuntimeKind::SingleThreaded,
        seed,
        plan(),
        NetParams::paper(),
    );
    let corrupted: u64 = checked.faults.iter().map(|(_, c)| c.corrupted).sum();
    assert!(corrupted > 0, "corruption plan armed but never fired");
    assert!(
        checked.verdicts.iter().all(|&m| m),
        "corruption leaked past the integrity envelope"
    );
    assert!(
        checked.fv_retried > 0,
        "corruption detected but never recovered"
    );

    // Unchecked (integrity verification off): the same plan delivers
    // wrong bytes all the way to the application.
    let mut params = NetParams::paper();
    params.end_to_end_integrity = false;
    let unchecked = run_fv(RuntimeKind::SingleThreaded, seed, plan(), params);
    assert!(
        unchecked.verdicts.iter().any(|&m| !m),
        "unchecked run did not observe the injected corruption"
    );
}

/// CI determinism gate: Fig 2 run twice under the same active plan and
/// seed must produce the same full event trace and the same counters.
#[test]
fn chaos_fig2_trace_is_reproducible_under_faults() {
    let seed = chaos_seed();
    let run = || {
        let mut tb = Testbed::new_on(
            Topology::paper_testbed(),
            NetParams::paper(),
            seed,
            RuntimeKind::SingleThreaded,
        );
        tb.sim.enable_trace();
        let ctrls = tb.controllers_per_node(false);
        deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
        tb.install_fault_plan(recoverable_plan(), seed);
        let client = tb.add_process(
            "client",
            cpu(2),
            ctrls[2],
            FvClient::new(IMG, BATCH, REQUESTS, 1),
        );
        tb.start_process(client);
        tb.run();
        let faults: Faults = tb.traffic().fault_links().map(|(k, v)| (*k, *v)).collect();
        (tb.sim.take_trace(), tb.sim.steps(), faults)
    };
    let (trace_a, steps_a, faults_a) = run();
    let (trace_b, steps_b, faults_b) = run();
    assert!(!trace_a.is_empty(), "tracing recorded nothing");
    assert!(
        faults_a.iter().any(|(_, c)| c.dropped > 0),
        "plan never fired during the determinism run"
    );
    assert_eq!(steps_a, steps_b, "step counts diverged between equal seeds");
    assert_eq!(faults_a, faults_b, "fault counters diverged");
    assert_eq!(trace_a, trace_b, "traces diverged between equal seeds");
}

/// Service used to confirm a Controller serves syscalls again post-heal.
struct Probe {
    pub ok: bool,
}

impl Service for Probe {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.request_create_new(0x9999, vec![], vec![], |s: &mut Self, res, _| {
            s.ok = res.is_ok();
        });
    }
    fn on_request(&mut self, _req: IncomingRequest, _fos: &Fos<Self>) {}
}

/// Partition-then-heal: the watchdog must declare the partitioned
/// Controller dead (it is unreachable — §3.6 treats that as failure), then
/// notice the heal via its recovery probes and broadcast `PeerRecovered`,
/// after which the Controller serves syscalls again and peers drop their
/// dead verdict.
#[test]
fn chaos_partition_is_detected_and_heals() {
    let mut tb = Testbed::paper(chaos_seed());
    let ctrls = tb.controllers_per_node(false);
    let wd = tb.start_watchdog(NodeId(1));

    // Node 0 loses droppable connectivity to the rest of the cluster from
    // 100 µs until the partition heals at 1.5 ms.
    let heal = Some(us(1_500));
    let plan = FaultPlan::new()
        .partition(NodeId(0), NodeId(1), us(100), heal)
        .partition(NodeId(0), NodeId(2), us(100), heal);
    tb.install_fault_plan(plan, 7);

    // Three consecutive 200 µs pings go unanswered: detection by ~800 µs.
    tb.run_until(us(1_200));
    let detected = tb
        .sim
        .with_actor::<WatchdogActor, _>(wd, |w| w.detected.clone());
    assert_eq!(detected, vec![ctrls[0]], "partition not detected");
    assert!(
        tb.with_controller(ctrls[1], |c| c.peer_dead(ctrls[0])),
        "peer verdict not propagated"
    );

    // Past the heal time the recovery probes get through again.
    tb.run_until(us(3_000));
    let recovered = tb
        .sim
        .with_actor::<WatchdogActor, _>(wd, |w| w.recovered.clone());
    assert_eq!(recovered, vec![ctrls[0]], "healed partition not noticed");
    assert!(
        !tb.with_controller(ctrls[1], |c| c.peer_dead(ctrls[0])),
        "peer verdict not cleared after recovery"
    );

    // The once-partitioned Controller serves new Processes again.
    let probe = tb.add_process("probe", cpu(0), ctrls[0], Probe { ok: false });
    tb.start_process(probe);
    tb.run_until(us(4_000));
    tb.with_service::<Probe, _>(probe, |p| assert!(p.ok, "post-heal syscall failed"));
}
