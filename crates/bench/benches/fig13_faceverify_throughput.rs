//! Fig 13: end-to-end throughput of the face-verification application vs
//! in-flight requests, including the Shared-HAL configuration (all
//! Processes on one shared Controller).
//!
//! Paper findings: the baseline is bottlenecked by rCUDA's serialized
//! daemon; with four requests in flight the GPU itself becomes the FractOS
//! bottleneck. Shared HAL sits between the per-node CPU and sNIC
//! configurations.

use fractos_bench::apps::{baseline_faceverify, fractos_faceverify, FvDeploy};
use fractos_bench::report::Table;

const IMG: u64 = 4096;
const BATCH: u64 = 16;
const REQS: u64 = 24;

fn main() {
    let mut t = Table::new(
        "Fig 13: face-verification throughput (req/s, batch 16)",
        &[
            "in-flight",
            "FractOS@CPU",
            "FractOS@sNIC",
            "Shared HAL",
            "baseline",
        ],
    );
    for &inflight in &[1u64, 2, 4, 8] {
        let cpu = fractos_faceverify(FvDeploy::Cpu, IMG, BATCH, REQS, inflight);
        let snic = fractos_faceverify(FvDeploy::Snic, IMG, BATCH, REQS, inflight);
        let shared = fractos_faceverify(FvDeploy::SharedHal, IMG, BATCH, REQS, inflight);
        let base = baseline_faceverify(IMG, BATCH, REQS, inflight);
        assert!(cpu.ok && snic.ok && shared.ok && base.ok);
        t.row(&[
            inflight.to_string(),
            format!("{:.0}", cpu.throughput()),
            format!("{:.0}", snic.throughput()),
            format!("{:.0}", shared.throughput()),
            format!("{:.0}", base.throughput()),
        ]);
    }
    t.print();
    println!("  (paper: baseline bottlenecked by rCUDA; FractOS saturates the GPU");
    println!("   at ~4 in flight; Shared HAL is a middle ground)");
}
