//! Fig 7: capability delegation and revocation costs.
//!
//! Left: RPC round trip with N delegated capability arguments (paper:
//! ~2.4 µs per capability on CPUs, ~3.8 µs on sNICs).
//! Right: revoking N capabilities with one revocation tree per capability
//! (traditional — linear) vs all pointing at one indirection object
//! (FractOS-optimized — constant).

use fractos_bench::micro::{delegation_rtt, revoke_latency};
use fractos_bench::report::{us, Table};

fn main() {
    let mut t = Table::new(
        "Fig 7 (left): RPC round trip with N delegated capabilities (usec)",
        &["caps", "CPU", "sNIC", "CPU per-cap delta"],
    );
    let base_cpu = delegation_rtt(0, false);
    for &n in &[0usize, 1, 2, 4, 8, 16] {
        let cpu = delegation_rtt(n, false);
        let snic = delegation_rtt(n, true);
        let delta = if n > 0 {
            format!("{:.2}", (cpu - base_cpu) / n as f64)
        } else {
            "-".into()
        };
        t.row(&[n.to_string(), us(cpu), us(snic), delta]);
    }
    t.print();
    println!("  (paper: ~2.4 usec per delegated capability on CPU, ~3.8 on sNIC)");

    let mut t = Table::new(
        "Fig 7 (right): revocation latency (usec, total for N caps)",
        &["caps", "1 revtree/cap", "shared revtree"],
    );
    for &n in &[1usize, 2, 4, 8, 16, 32, 64] {
        t.row(&[
            n.to_string(),
            us(revoke_latency(n, false, false)),
            us(revoke_latency(n, true, false)),
        ]);
    }
    t.print();
    println!("  (paper: traditional grows linearly with N; the FractOS-optimized");
    println!("   layout revokes the shared indirection object at constant cost)");
}
