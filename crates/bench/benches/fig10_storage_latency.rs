//! Fig 10: latency of random reads (left) and random writes (right)
//! through the storage stack, vs I/O size.
//!
//! Systems: the FractOS FS (mediated data path), its DAX composition, the
//! disaggregated baseline (kernel FS + page cache over NVMe-oF), and a
//! local block device. Paper findings: FS ≈ baseline for random reads
//! (both move data twice; the cache is cold for random access); baseline
//! wins random writes (page cache absorbs them; the FractOS FS has no
//! cache); DAX cuts network transfers 2× — from 1.1× at 4 KiB (NVMe
//! latency dominates) to 1.3× at larger sizes.

use fractos_baselines::{local_block_read_latency, local_block_write_latency};
use fractos_bench::apps::{storage_disagg_baseline, storage_fractos};
use fractos_bench::report::{us, Table};
use fractos_devices::NvmeParams;
use fractos_net::NetParams;
use fractos_services::fs::FsMode;

const COUNT: u64 = 24;

fn main() {
    let nvme = NvmeParams::default();
    let net = NetParams::paper();
    for write in [false, true] {
        let which = if write { "writes" } else { "reads" };
        let mut t = Table::new(
            &format!("Fig 10: random {which} latency (usec)"),
            &["io size", "FS", "DAX", "Disagg. baseline", "Local"],
        );
        for &io in &[4u64 * 1024, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024] {
            let (fs, _) = storage_fractos(FsMode::Mediated, io, COUNT, 1, write, false, false);
            let (dax, _) = storage_fractos(FsMode::Dax, io, COUNT, 1, write, false, false);
            let (base, _) = storage_disagg_baseline(io, COUNT, 1, write, false);
            let local = if write {
                local_block_write_latency(&nvme, &net, io)
            } else {
                local_block_read_latency(&nvme, &net, io)
            }
            .as_micros_f64();
            t.row(&[
                format!("{}KiB", io / 1024),
                us(fs),
                us(dax),
                us(base),
                us(local),
            ]);
        }
        t.print();
    }
    println!("  (paper: FS ~ baseline for random reads; baseline's page cache absorbs");
    println!("   writes; DAX gains 1.1x at 4 KiB up to ~1.3x at larger sizes)");
}
