//! Fig 2 / §2.1: message complexity of the centralized vs distributed
//! application models, measured on the inference (face-verification)
//! pipeline and checked against the analytic model.
//!
//! Paper claims for the Fig 2 scenario: the distributed design has 2.5×
//! fewer data transfers and 1.6× fewer messages overall; §6.5 counts eight
//! baseline control messages vs five for FractOS; §2.1 derives 2N vs N+1
//! messages for N services and a 2·N/L bound for service trees.

use fractos_bench::apps::{baseline_faceverify_opts, fractos_faceverify_opts, FvDeploy};
use fractos_bench::report::Table;
use fractos_core::msgmodel;

const IMG: u64 = 4096;
const BATCH: u64 = 8;
const REQS: u64 = 16;

fn main() {
    // The full Fig 2 scenario: read → GPU → write output via the FS.
    let fos = fractos_faceverify_opts(FvDeploy::Cpu, IMG, BATCH, REQS, 1, true);
    let base = baseline_faceverify_opts(IMG, BATCH, REQS, 1, true);
    assert!(fos.ok && base.ok);

    // Note: these are *transport-level* counts (every fabric message,
    // including RDMA chunk transfers and acks); the paper's Fig 2 counts
    // application-level interactions, reported by the analytic model below.
    let mut t = Table::new(
        "Fig 2: measured transport-level network traffic per request",
        &["model", "msgs/req", "data msgs/req", "bytes/req"],
    );
    t.row(&[
        "distributed (FractOS)".into(),
        format!("{:.1}", fos.net_msgs as f64 / REQS as f64),
        format!("{:.1}", fos.data_msgs as f64 / REQS as f64),
        format!("{:.0}", fos.net_bytes as f64 / REQS as f64),
    ]);
    t.row(&[
        "centralized (baseline)".into(),
        format!("{:.1}", base.net_msgs as f64 / REQS as f64),
        format!("{:.1}", base.data_msgs as f64 / REQS as f64),
        format!("{:.0}", base.net_bytes as f64 / REQS as f64),
    ]);
    t.row(&[
        "reduction".into(),
        format!("{:.2}x", base.net_msgs as f64 / fos.net_msgs as f64),
        format!("{:.2}x", base.data_msgs as f64 / fos.data_msgs as f64),
        format!("{:.2}x", base.net_bytes as f64 / fos.net_bytes as f64),
    ]);
    t.print();
    println!("  (paper, Fig 2: 2.5x fewer data transfers, 1.6x fewer messages)");

    let mut t = Table::new(
        "§2.1 analytic model: steady-state messages for N services",
        &["N", "star (2N)", "chain (N+1)", "reduction"],
    );
    for &n in &[2u64, 3, 4, 8, 16] {
        t.row(&[
            n.to_string(),
            msgmodel::star_messages(n).to_string(),
            msgmodel::chain_messages(n).to_string(),
            format!("{:.2}x", msgmodel::flat_reduction(n)),
        ]);
    }
    t.print();

    println!(
        "\n  service-tree bound (§2.1): app→FS→SSD (N=3, L=1) allows up to {:.1}x;",
        msgmodel::tree_reduction_bound(3, 1)
    );
    println!(
        "  control messages per request (§6.5): {} baseline vs {} FractOS",
        msgmodel::FACEVERIF_BASELINE_CONTROL_MSGS,
        msgmodel::FACEVERIF_FRACTOS_CONTROL_MSGS
    );
}
