//! Fig 2 / §2.1: message complexity of the centralized vs distributed
//! application models, measured on the inference (face-verification)
//! pipeline and checked against the analytic model.
//!
//! Paper claims for the Fig 2 scenario: the distributed design has 2.5×
//! fewer data transfers and 1.6× fewer messages overall; §6.5 counts eight
//! baseline control messages vs five for FractOS; §2.1 derives 2N vs N+1
//! messages for N services and a 2·N/L bound for service trees.
//!
//! The FractOS run records causal spans, so this bench additionally prints
//! the per-phase latency attribution (network / device / control plane) and
//! writes machine-readable telemetry to `BENCH_fig2.json` at the repository
//! root. Set `FRACTOS_TRACE=chrome:<path>` to also export the span tree as
//! Chrome Trace Event JSON (loadable in Perfetto / `chrome://tracing`);
//! relative paths are resolved against the repository root.

use fractos_bench::apps::{baseline_faceverify_opts, fractos_faceverify_traced, FvDeploy};
use fractos_bench::report::Table;
use fractos_core::msgmodel;
use fractos_obs::{aggregate, analyze, chrome_trace, chrome_trace_path, Json, TelemetryReport};

const IMG: u64 = 4096;
const BATCH: u64 = 8;
const REQS: u64 = 16;

/// Resolves an output path against the repository root (bench binaries run
/// with the package directory as CWD, which is rarely where artifacts are
/// wanted).
fn out_path(p: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(p);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}

fn main() {
    // The full Fig 2 scenario: read → GPU → write output via the FS. The
    // FractOS side runs with span recording on; the trace-context header is
    // out of band, so the traffic counts match an untraced run exactly
    // (asserted by `tests/span_invariants.rs`).
    let run = fractos_faceverify_traced(FvDeploy::Cpu, IMG, BATCH, REQS, 1, true);
    let fos = run.result;
    let base = baseline_faceverify_opts(IMG, BATCH, REQS, 1, true);
    assert!(fos.ok && base.ok);

    // Note: these are *transport-level* counts (every fabric message,
    // including RDMA chunk transfers and acks); the paper's Fig 2 counts
    // application-level interactions, reported by the analytic model below.
    let mut t = Table::new(
        "Fig 2: measured transport-level network traffic per request",
        &["model", "msgs/req", "data msgs/req", "bytes/req"],
    );
    t.row(&[
        "distributed (FractOS)".into(),
        format!("{:.1}", fos.net_msgs as f64 / REQS as f64),
        format!("{:.1}", fos.data_msgs as f64 / REQS as f64),
        format!("{:.0}", fos.net_bytes as f64 / REQS as f64),
    ]);
    t.row(&[
        "centralized (baseline)".into(),
        format!("{:.1}", base.net_msgs as f64 / REQS as f64),
        format!("{:.1}", base.data_msgs as f64 / REQS as f64),
        format!("{:.0}", base.net_bytes as f64 / REQS as f64),
    ]);
    t.row(&[
        "reduction".into(),
        format!("{:.2}x", base.net_msgs as f64 / fos.net_msgs as f64),
        format!("{:.2}x", base.data_msgs as f64 / fos.data_msgs as f64),
        format!("{:.2}x", base.net_bytes as f64 / fos.net_bytes as f64),
    ]);
    t.print();
    println!("  (paper, Fig 2: 2.5x fewer data transfers, 1.6x fewer messages)");

    // Per-phase latency attribution from the span trees. All the underlying
    // arithmetic is integer nanoseconds, so the component rows sum exactly
    // to the end-to-end row.
    let breakdowns = analyze(&run.spans);
    let totals = aggregate(&breakdowns);
    assert_eq!(totals.requests, REQS, "one span tree per request");
    assert_eq!(
        totals.network_ns + totals.device_ns + totals.control_ns + totals.other_ns,
        totals.total_ns,
        "attribution components must sum to the end-to-end latency"
    );
    let per_req_us = |ns: u64| format!("{:.3}", ns as f64 / REQS as f64 / 1000.0);
    let share = |ns: u64| format!("{:.1}%", 100.0 * ns as f64 / totals.total_ns.max(1) as f64);
    let mut t = Table::new(
        "Fig 2: FractOS per-phase latency attribution (per request)",
        &["phase", "mean µs/req", "share"],
    );
    t.row(&[
        "network (ser + prop + data + retx)".into(),
        per_req_us(totals.network_ns),
        share(totals.network_ns),
    ]);
    t.row(&[
        "device (GPU + NVMe service)".into(),
        per_req_us(totals.device_ns),
        share(totals.device_ns),
    ]);
    t.row(&[
        "control plane (ctrl + syscall + deliver)".into(),
        per_req_us(totals.control_ns),
        share(totals.control_ns),
    ]);
    t.row(&[
        "other (queueing)".into(),
        per_req_us(totals.other_ns),
        share(totals.other_ns),
    ]);
    t.row(&[
        "end-to-end".into(),
        per_req_us(totals.total_ns),
        share(totals.total_ns),
    ]);
    t.print();

    // Machine-readable telemetry for this workload.
    let doc = Json::obj(vec![
        ("workload", Json::Str("fig2".into())),
        ("requests", Json::UInt(REQS)),
        (
            "traffic",
            Json::obj(vec![
                ("net_msgs", Json::UInt(fos.net_msgs)),
                ("data_msgs", Json::UInt(fos.data_msgs)),
                ("net_bytes", Json::UInt(fos.net_bytes)),
            ]),
        ),
        (
            "phases_ns",
            Json::obj(vec![
                ("total", Json::UInt(totals.total_ns)),
                ("network", Json::UInt(totals.network_ns)),
                ("device", Json::UInt(totals.device_ns)),
                ("control", Json::UInt(totals.control_ns)),
                ("other", Json::UInt(totals.other_ns)),
            ]),
        ),
        ("metrics", run.snapshot.to_json()),
    ]);
    let bench_json = out_path("BENCH_fig2.json");
    std::fs::write(&bench_json, format!("{doc}\n")).expect("write BENCH_fig2.json");
    println!("\n  wrote {}", bench_json.display());

    // Continuous-telemetry exports (only when `FRACTOS_TELEMETRY` armed the
    // plane for the run). Everything written here excludes the backend's
    // `runtime.` self-profiling namespace, so the files are byte-identical
    // across backends; the terminal table includes it for a live view of
    // the engine.
    if let Some(period) = run.telemetry_period {
        let report = TelemetryReport::derive(&run.telemetry, period);
        println!(
            "\nLive telemetry (period {} ns, incl. engine self-profile):",
            period.as_nanos()
        );
        print!("{}", report.summary_table(true));
        let tele_json = out_path("BENCH_telemetry.json");
        std::fs::write(&tele_json, format!("{}\n", report.to_json(false)))
            .expect("write BENCH_telemetry.json");
        println!("  wrote {}", tele_json.display());
        let tele_jsonl = out_path("BENCH_telemetry.jsonl");
        std::fs::write(&tele_jsonl, report.jsonl(false)).expect("write BENCH_telemetry.jsonl");
        println!("  wrote {}", tele_jsonl.display());
        let tele_prom = out_path("BENCH_telemetry.prom");
        std::fs::write(&tele_prom, report.prometheus(false)).expect("write BENCH_telemetry.prom");
        println!("  wrote {}", tele_prom.display());
    }

    if let Some(path) = chrome_trace_path() {
        let names = &run.actor_names;
        let doc = chrome_trace(&run.spans, |i| {
            names.get(i).cloned().unwrap_or_else(|| format!("actor{i}"))
        });
        let path = out_path(&path);
        std::fs::write(&path, format!("{doc}\n")).expect("write chrome trace");
        println!("  wrote {}", path.display());
    }

    let mut t = Table::new(
        "§2.1 analytic model: steady-state messages for N services",
        &["N", "star (2N)", "chain (N+1)", "reduction"],
    );
    for &n in &[2u64, 3, 4, 8, 16] {
        t.row(&[
            n.to_string(),
            msgmodel::star_messages(n).to_string(),
            msgmodel::chain_messages(n).to_string(),
            format!("{:.2}x", msgmodel::flat_reduction(n)),
        ]);
    }
    t.print();

    println!(
        "\n  service-tree bound (§2.1): app→FS→SSD (N=3, L=1) allows up to {:.1}x;",
        msgmodel::tree_reduction_bound(3, 1)
    );
    println!(
        "  control messages per request (§6.5): {} baseline vs {} FractOS",
        msgmodel::FACEVERIF_BASELINE_CONTROL_MSGS,
        msgmodel::FACEVERIF_FRACTOS_CONTROL_MSGS
    );
}
