//! Crash-recovery benchmark: MTTR attribution for a crash-stop node
//! failure under a replicated service (§3.6).
//!
//! The scene crashes the node hosting the primary instance mid-workload
//! and measures the recovery timeline milestone by milestone: crash →
//! watchdog detection (first missed ping) → death declaration (epoch
//! bump) → capability revocation at the client's Controller → typed
//! verdict at the client → re-home to the survivor → re-dispatch → first
//! post-crash completion. The components are consecutive deltas of the
//! timestamped milestones, so they sum *exactly* to the measured
//! unavailability window.
//!
//! `BENCH_recovery.json` (written at the repository root) contains only
//! simulation-derived integers — virtual timestamps, event counts,
//! request outcomes — which are deterministic for a fixed seed on both
//! backends, so repeated runs produce byte-identical files (CI diffs two
//! runs). Wall-clock timings are printed to stdout only.

use fractos_bench::report::Table;
use fractos_core::prelude::*;
use fractos_core::WatchdogActor;
use fractos_net::{FaultPlan, NetParams, NodeId, Topology};
use fractos_obs::Json;
use fractos_services::replicated::{deploy_replicated, FailoverClient, RequestOutcome};
use fractos_sim::{RuntimeKind, SimTime, SpanKind};

const SEED: u64 = 61;
const ITERS: u64 = 60;
const SERVICE_US: u64 = 10;
const CRASH_AT_US: u64 = 1_000;
const DEADLINE_US: u64 = 10_000;

fn us(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000)
}

fn out_path(p: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(p);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}

/// One backend's deterministic recovery timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Timeline {
    /// `(milestone name, virtual ns)`, in causal order.
    milestones: Vec<(&'static str, u64)>,
    completed: u64,
    verdicts: u64,
    recovery_spans: Vec<(String, u64)>,
    steps: u64,
    end_ns: u64,
}

fn run(kind: RuntimeKind) -> (Timeline, f64) {
    let mut tb = Testbed::new_on(Topology::paper_testbed(), NetParams::paper(), SEED, kind);
    tb.sim.enable_spans();
    let ctrls = tb.controllers_per_node(false);
    let placements = [(cpu(1), ctrls[1]), (cpu(2), ctrls[2])];
    deploy_replicated(
        &mut tb,
        "echo",
        &placements,
        SimDuration::from_micros(SERVICE_US),
    );
    let wd = tb.start_watchdog(NodeId(0));
    let dir = tb.dir.clone();
    let client = tb.add_process(
        "client",
        cpu(0),
        ctrls[0],
        FailoverClient::new("echo", 2, ITERS, dir),
    );
    tb.install_fault_plan(
        FaultPlan::new().crash_node(NodeId(1), us(CRASH_AT_US)),
        SEED,
    );
    tb.start_process(client);
    let wall = std::time::Instant::now();
    tb.run_until(us(DEADLINE_US));
    let wall_secs = wall.elapsed().as_secs_f64();

    let (first_miss, declared) = tb.sim.with_actor::<WatchdogActor, _>(wd, |w| {
        let (subject, miss, decl) = *w.declared.first().expect("death never declared");
        assert_eq!(subject, ctrls[1], "wrong Controller declared dead");
        (miss, decl)
    });
    let revoked = tb.with_controller(ctrls[0], |c| {
        c.peer_revocations
            .iter()
            .find(|(a, _)| *a == ctrls[1])
            .map(|(_, t)| *t)
            .expect("client's Controller never revoked the dead peer")
    });
    let (verdict, rehomed, redispatched, recovered, completed, verdicts) = tb
        .with_service::<FailoverClient, _>(client, |c| {
            assert!(c.all_resolved(), "client left a request unresolved");
            let completed = c
                .outcomes
                .iter()
                .filter(|o| **o == RequestOutcome::Completed)
                .count() as u64;
            (
                c.failures.first().expect("no failure observed").0,
                c.rehomes.first().expect("never re-homed").0,
                *c.redispatches.first().expect("never re-dispatched"),
                *c.recoveries.first().expect("never recovered"),
                completed,
                c.outcomes.len() as u64 - completed,
            )
        });
    let mut recovery_spans: Vec<(String, u64)> = Vec::new();
    for s in tb.sim.take_spans() {
        if s.kind == SpanKind::Recovery {
            match recovery_spans.iter_mut().find(|(l, _)| *l == s.label) {
                Some((_, n)) => *n += 1,
                None => recovery_spans.push((s.label.clone(), 1)),
            }
        }
    }

    let milestones = vec![
        ("crash", us(CRASH_AT_US).as_nanos()),
        ("detect", first_miss.as_nanos()),
        ("declare", declared.as_nanos()),
        ("revoke", revoked.as_nanos()),
        ("verdict", verdict.as_nanos()),
        ("rehome", rehomed.as_nanos()),
        ("redispatch", redispatched.as_nanos()),
        ("recovered", recovered.as_nanos()),
    ];
    // The timeline must be causal: each milestone at or after the one
    // before it, so consecutive deltas telescope exactly to the window.
    for w in milestones.windows(2) {
        assert!(
            w[0].1 <= w[1].1,
            "milestone {} ({} ns) precedes {} ({} ns)",
            w[1].0,
            w[1].1,
            w[0].0,
            w[0].1
        );
    }
    (
        Timeline {
            milestones,
            completed,
            verdicts,
            recovery_spans,
            steps: tb.sim.steps(),
            end_ns: tb.now().as_nanos(),
        },
        wall_secs,
    )
}

fn main() {
    let (single, wall_single) = run(RuntimeKind::SingleThreaded);
    let (sharded, wall_sharded) = run(RuntimeKind::Sharded);
    assert_eq!(
        single, sharded,
        "recovery timeline diverged across backends"
    );

    let crash = single.milestones[0].1;
    let recovered = single.milestones.last().expect("non-empty").1;
    let window = recovered - crash;
    let deltas: Vec<u64> = single
        .milestones
        .windows(2)
        .map(|w| w[1].1 - w[0].1)
        .collect();
    assert_eq!(
        deltas.iter().sum::<u64>(),
        window,
        "MTTR components do not sum to the unavailability window"
    );

    let mut t = Table::new(
        "Crash recovery: MTTR attribution (crash-stop of the primary's node)",
        &["milestone", "at (us)", "+delta (us)"],
    );
    t.row(&[
        "crash".into(),
        format!("{:.1}", crash as f64 / 1e3),
        String::new(),
    ]);
    for (i, d) in deltas.iter().enumerate() {
        let (name, at) = single.milestones[i + 1];
        t.row(&[
            name.into(),
            format!("{:.1}", at as f64 / 1e3),
            format!("{:.1}", *d as f64 / 1e3),
        ]);
    }
    t.print();
    println!(
        "  unavailability window: {:.1} us ({} requests: {} completed, {} by verdict)",
        window as f64 / 1e3,
        ITERS,
        single.completed,
        single.verdicts
    );
    println!(
        "  wall: single {:.1} ms, sharded {:.1} ms (stdout only; JSON is deterministic)",
        wall_single * 1e3,
        wall_sharded * 1e3
    );

    let components = single
        .milestones
        .windows(2)
        .map(|w| {
            Json::obj(vec![
                ("phase", Json::Str(w[1].0.into())),
                ("at_ns", Json::UInt(w[1].1)),
                ("delta_ns", Json::UInt(w[1].1 - w[0].1)),
            ])
        })
        .collect::<Vec<_>>();
    let spans = single
        .recovery_spans
        .iter()
        .map(|(l, n)| (l.as_str(), Json::UInt(*n)))
        .collect::<Vec<_>>();
    let doc = Json::obj(vec![
        ("workload", Json::Str("crash_recovery".into())),
        ("seed", Json::UInt(SEED)),
        (
            "plan",
            Json::obj(vec![
                ("crash_node", Json::UInt(1)),
                ("crash_at_ns", Json::UInt(crash)),
            ]),
        ),
        ("unavailability_ns", Json::UInt(window)),
        ("components", Json::Arr(components)),
        (
            "requests",
            Json::obj(vec![
                ("total", Json::UInt(ITERS)),
                ("completed", Json::UInt(single.completed)),
                ("verdicts", Json::UInt(single.verdicts)),
            ]),
        ),
        ("recovery_spans", Json::obj(spans)),
        (
            "engine",
            Json::obj(vec![
                ("events", Json::UInt(single.steps)),
                ("virtual_end_ns", Json::UInt(single.end_ns)),
            ]),
        ),
    ]);
    let bench_json = out_path("BENCH_recovery.json");
    std::fs::write(&bench_json, format!("{doc}\n")).expect("write BENCH_recovery.json");
    println!("\n  wrote {}", bench_json.display());
}
