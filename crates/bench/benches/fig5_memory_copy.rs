//! Fig 5: throughput of a single cross-node `memory_copy` vs transfer size.
//!
//! Series: raw RDMA (best case), FractOS with Controllers on CPUs, FractOS
//! on sNICs, and the "HW copies" model (third-party RDMA offload replacing
//! the bounce buffers). Paper anchors: 1-byte copies take 12.7 µs (CPU) and
//! 24.5 µs (sNIC) vs 3.3 µs raw; full 10 Gbps line rate is reached around
//! 256 KiB thanks to double buffering above 16 KiB.

use fractos_bench::micro::{memcopy_latency, raw_rdma_write};
use fractos_bench::report::{us, Table};

fn goodput(size: u64, lat_us: f64) -> String {
    format!("{:.0}", size as f64 / (lat_us / 1e6) / 1e6)
}

fn main() {
    let sizes: &[u64] = &[
        1,
        256,
        1024,
        4 * 1024,
        16 * 1024,
        64 * 1024,
        256 * 1024,
        1024 * 1024,
    ];
    let mut t = Table::new(
        "Fig 5: single cross-node memory copy (latency usec / goodput MB/s)",
        &[
            "size",
            "raw RDMA",
            "FractOS@CPU",
            "FractOS@sNIC",
            "HW copies",
            "CPU MB/s",
            "raw MB/s",
        ],
    );
    for &size in sizes {
        let raw = raw_rdma_write(size);
        let cpu = memcopy_latency(size, false, false);
        let snic = memcopy_latency(size, true, false);
        let hw = memcopy_latency(size, false, true);
        t.row(&[
            human(size),
            us(raw),
            us(cpu),
            us(snic),
            us(hw),
            goodput(size, cpu),
            goodput(size, raw),
        ]);
    }
    t.print();
    println!("  (paper: 1 B copy 12.7 usec CPU / 24.5 usec sNIC vs 3.3 usec raw;");
    println!("   line rate = 1250 MB/s, reached at 256 KiB with double buffering)");
}

fn human(size: u64) -> String {
    if size >= 1024 * 1024 {
        format!("{}MiB", size / 1024 / 1024)
    } else if size >= 1024 {
        format!("{}KiB", size / 1024)
    } else {
        format!("{size}B")
    }
}
