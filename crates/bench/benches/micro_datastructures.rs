//! Criterion microbenchmarks of the real (wall-clock) data structures the
//! OS layer runs on: capability spaces, revocation trees, the wire codec
//! and the event queue. These complement the virtual-time reproduction
//! benches — the paper's Controllers spend their cycles in exactly these
//! structures (§7 notes capability/object lookups as an sNIC hotspot).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use fractos_cap::{CapRef, CapSpace, ControllerAddr, Epoch, ObjectId, ObjectTable, ProcessToken};
use fractos_core::types::Syscall;
use fractos_core::wire::Wire;
use fractos_sim::{Actor, Ctx, Msg, Sim, SimDuration};

fn capref(n: u64) -> CapRef {
    CapRef {
        ctrl: ControllerAddr(0),
        epoch: Epoch(0),
        object: ObjectId(n),
    }
}

fn bench_capspace(c: &mut Criterion) {
    c.bench_function("capspace_insert_get_remove", |b| {
        b.iter_batched(
            CapSpace::new,
            |mut space| {
                for i in 0..64 {
                    let cid = space.insert(capref(i)).unwrap();
                    black_box(space.get(cid).unwrap());
                    if i % 2 == 0 {
                        space.remove(cid).unwrap();
                    }
                }
                space
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_revtree(c: &mut Criterion) {
    c.bench_function("revtree_build_and_cascade_64", |b| {
        b.iter_batched(
            || {
                let mut table: ObjectTable<u64> = ObjectTable::new(ControllerAddr(0));
                let root = table.create(ProcessToken(0), 0);
                for i in 0..64 {
                    table
                        .create_revtree_node(root.object, ProcessToken(i))
                        .unwrap();
                }
                (table, root)
            },
            |(mut table, root)| {
                let outcome = table.revoke(root.object).unwrap();
                black_box(outcome.nodes_visited())
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("delegate_monitored_64", |b| {
        b.iter_batched(
            || {
                let mut table: ObjectTable<u64> = ObjectTable::new(ControllerAddr(0));
                let cap = table.create(ProcessToken(0), 0);
                table
                    .monitor_delegate(
                        cap.object,
                        fractos_cap::Watcher {
                            process: ProcessToken(0),
                            callback_id: 0,
                        },
                    )
                    .unwrap();
                (table, cap)
            },
            |(mut table, cap)| {
                for i in 0..64 {
                    black_box(table.delegate(cap.object, ProcessToken(i + 1)).unwrap());
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_wire(c: &mut Criterion) {
    let sc = Syscall::RequestCreate {
        base: Some(fractos_cap::Cid(3)),
        tag: 7,
        imms: vec![vec![0xAB; 256].into(), vec![1, 2, 3].into()],
        caps: vec![fractos_cap::Cid(1), fractos_cap::Cid(2)],
    };
    c.bench_function("wire_encode_request_create", |b| {
        b.iter(|| black_box(sc.to_bytes()));
    });
    let bytes = sc.to_bytes();
    c.bench_function("wire_decode_request_create", |b| {
        b.iter(|| black_box(Syscall::from_bytes(&bytes).unwrap()));
    });
}

struct Sink(u64);
impl Actor for Sink {
    fn handle(&mut self, _msg: Msg, _ctx: &mut Ctx<'_>) {
        self.0 += 1;
    }
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim_dispatch_10k_events", |b| {
        b.iter_batched(
            || {
                let mut sim = Sim::new(0);
                let a = sim.add_actor("sink", Box::new(Sink(0)));
                for i in 0..10_000u64 {
                    sim.post(SimDuration::from_nanos(i % 977), a, ());
                }
                sim
            },
            |mut sim| {
                sim.run();
                black_box(sim.steps())
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_capspace,
    bench_revtree,
    bench_wire,
    bench_event_queue
);
criterion_main!(benches);
