//! Fig 11: storage throughput for random and sequential reads with
//! 1024 KiB blocks and four requests in flight.
//!
//! Paper findings: DAX saturates the 10 Gbps line rate (1250 MB/s); the
//! mediated FS and the disaggregated baseline land roughly 20% lower
//! (their extra store-and-forward hop shares the same links).

use fractos_bench::apps::{storage_disagg_baseline, storage_fractos};
use fractos_bench::report::Table;
use fractos_services::fs::FsMode;

const IO: u64 = 1024 * 1024;
const COUNT: u64 = 32;
const INFLIGHT: u64 = 4;

fn main() {
    let mut t = Table::new(
        "Fig 11: read throughput, 1024 KiB blocks, 4 in flight (MB/s)",
        &["pattern", "FS", "DAX", "Disagg. baseline", "line rate"],
    );
    for seq in [false, true] {
        let (_, fs) = storage_fractos(FsMode::Mediated, IO, COUNT, INFLIGHT, false, seq, false);
        let (_, dax) = storage_fractos(FsMode::Dax, IO, COUNT, INFLIGHT, false, seq, false);
        let (_, base) = storage_disagg_baseline(IO, COUNT, INFLIGHT, false, seq);
        t.row(&[
            if seq { "sequential" } else { "random" }.into(),
            format!("{fs:.0}"),
            format!("{dax:.0}"),
            format!("{base:.0}"),
            "1250".into(),
        ]);
    }
    t.print();
    println!("  (paper: DAX saturates the line rate; FS and the baseline yield");
    println!("   roughly 20% less)");
}
