//! Fig 9: the disaggregated GPU service running the face-verification
//! kernel, vs the rCUDA remoting baseline and a local GPU.
//!
//! Left: single-request latency vs image batch size. Right: throughput
//! with a fixed batch vs in-flight requests. Paper findings: FractOS is
//! substantially faster than rCUDA (one Request round trip vs many driver
//! calls), and reaches near-local throughput with >1 request in flight,
//! even on sNICs, until the GPU itself saturates.

use fractos_baselines::local_gpu_latency;
use fractos_bench::apps::{gpu_service_fractos, gpu_service_rcuda};
use fractos_bench::report::{us, Table};
use fractos_devices::GpuParams;
use fractos_net::NetParams;

const IMG: u64 = 4096;
const REQS: u64 = 12;

fn main() {
    let gpu = GpuParams::default();
    let net = NetParams::paper();

    let mut t = Table::new(
        "Fig 9 (left): kernel-execution latency vs batch size (usec)",
        &["batch", "FractOS@CPU", "FractOS@sNIC", "rCUDA", "local GPU"],
    );
    for &batch in &[1u64, 4, 16, 64, 256] {
        let (fos_cpu, _) = gpu_service_fractos(IMG, batch, REQS, 1, false);
        let (fos_snic, _) = gpu_service_fractos(IMG, batch, REQS, 1, true);
        let (rcuda, _) = gpu_service_rcuda(IMG, batch, REQS, 1);
        let local = local_gpu_latency(&gpu, &net, batch, IMG).as_micros_f64();
        t.row(&[
            batch.to_string(),
            us(fos_cpu),
            us(fos_snic),
            us(rcuda),
            us(local),
        ]);
    }
    t.print();

    let batch = 64u64;
    let mut t = Table::new(
        "Fig 9 (right): throughput vs in-flight requests (req/s, batch 64)",
        &[
            "in-flight",
            "FractOS@CPU",
            "FractOS@sNIC",
            "rCUDA",
            "local bound",
        ],
    );
    let local_bound = fractos_baselines::local_gpu_throughput(&gpu, batch);
    for &inflight in &[1u64, 2, 4, 8] {
        let (_, fos_cpu) = gpu_service_fractos(IMG, batch, REQS * 2, inflight, false);
        let (_, fos_snic) = gpu_service_fractos(IMG, batch, REQS * 2, inflight, true);
        let (_, rcuda) = gpu_service_rcuda(IMG, batch, REQS * 2, inflight);
        t.row(&[
            inflight.to_string(),
            format!("{fos_cpu:.0}"),
            format!("{fos_snic:.0}"),
            format!("{rcuda:.0}"),
            format!("{local_bound:.0}"),
        ]);
    }
    t.print();
    println!("  (paper: FractOS beats rCUDA at all batch sizes, even on sNICs, and");
    println!("   reaches near-local throughput with more than one request in flight)");
}
