//! Fig 8: Request latency for processing pipelines under the three designs
//! of Figure 1 — star (centralized, e.g. rCUDA), fast-star (centralized
//! control with direct data, e.g. LegoOS), and chain (fully distributed,
//! FractOS).
//!
//! Paper anchors: at 64 KiB on CPUs, star → fast-star ≈ 1.6×; at 4 KiB,
//! fast-star → chain ≈ 1.45× and star → fast-star ≈ 1.4×.

use fractos_bench::apps::{pipeline_latency, PipelineKind};
use fractos_bench::report::{ratio, us, Table};

fn main() {
    for &stages in &[2usize, 4, 8] {
        let mut t = Table::new(
            &format!("Fig 8: {stages}-stage pipeline latency (usec)"),
            &[
                "size",
                "star",
                "fast-star",
                "chain",
                "star/fast",
                "fast/chain",
            ],
        );
        for &size in &[4u64 * 1024, 16 * 1024, 64 * 1024, 256 * 1024] {
            let star = pipeline_latency(PipelineKind::Star, stages, size);
            let fast = pipeline_latency(PipelineKind::FastStar, stages, size);
            let chain = pipeline_latency(PipelineKind::Chain, stages, size);
            t.row(&[
                format!("{}KiB", size / 1024),
                us(star),
                us(fast),
                us(chain),
                ratio(star, fast),
                ratio(fast, chain),
            ]);
        }
        t.print();
    }
    println!("  (paper, 4 stages on CPUs: star/fast-star = 1.6x at 64 KiB;");
    println!("   fast-star/chain = 1.45x and star/fast-star = 1.4x at 4 KiB)");
}
