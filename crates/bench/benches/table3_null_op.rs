//! Table 3: latency of a null FractOS operation, compared to raw loopback.
//!
//! Paper values: raw loopback 2.42 µs (CPU) / 3.68 µs (sNIC); FractOS
//! 3.00 µs (CPU) / 4.50 µs (sNIC).

use fractos_bench::micro::{null_op_rtt, raw_loopback_rtt};
use fractos_bench::report::{us, Table};

fn main() {
    let mut t = Table::new(
        "Table 3: null-operation latency (usec)",
        &["configuration", "measured", "paper"],
    );
    t.row(&[
        "Raw loopback w/ server @ CPU".into(),
        us(raw_loopback_rtt(false)),
        "2.42".into(),
    ]);
    t.row(&[
        "Raw loopback w/ server @ sNIC".into(),
        us(raw_loopback_rtt(true)),
        "3.68".into(),
    ]);
    t.row(&[
        "FractOS @ CPU".into(),
        us(null_op_rtt(false)),
        "3.00".into(),
    ]);
    t.row(&[
        "FractOS @ sNIC".into(),
        us(null_op_rtt(true)),
        "4.50".into(),
    ]);
    t.print();
}
