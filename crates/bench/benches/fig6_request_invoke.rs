//! Fig 6: latency of a two-way Request invocation (RPC) between Processes
//! on one or two nodes, for CPU and sNIC Controller deployments, across
//! argument sizes.
//!
//! Paper decomposition: Request handling adds 1.41 µs (CPU) / 5.11 µs
//! (sNIC) both ways; crossing the network adds a further 4.41 µs (CPU) /
//! 12.21 µs (sNIC) of (de)serialization; immediate-argument cost tracks
//! memory-copy throughput.

use fractos_bench::micro::rpc_latency;
use fractos_bench::report::{us, Table};

fn main() {
    let args: &[usize] = &[0, 64, 1024, 4 * 1024, 16 * 1024, 64 * 1024];
    let mut t = Table::new(
        "Fig 6: two-way Request (RPC) latency (usec)",
        &["arg size", "1x CPU", "2x CPU", "1x sNIC", "2x sNIC"],
    );
    for &arg in args {
        t.row(&[
            format!("{arg}B"),
            us(rpc_latency(false, false, arg)),
            us(rpc_latency(true, false, arg)),
            us(rpc_latency(false, true, arg)),
            us(rpc_latency(true, true, arg)),
        ]);
    }
    t.print();
    println!("  (paper: CPU request handling +1.41 usec both ways; crossing the");
    println!("   network adds +4.41 usec; sNIC +5.11 and +12.21 usec respectively)");
}
