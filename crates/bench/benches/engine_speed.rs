//! Engine microbenchmark: raw event throughput and request throughput on
//! both runtime backends (single-threaded and sharded).
//!
//! Two workloads:
//!
//! * **raw events** — a ring of cross-node ping-pong pairs driving the
//!   scheduler and the per-link synchronization protocol with no
//!   application logic, so the numbers isolate engine overhead;
//! * **requests** — the Fig 2 face-verification pipeline end to end, so
//!   the numbers reflect a realistic mix of syscalls, device service and
//!   fabric traffic.
//!
//! `BENCH_engine.json` (written at the repository root) contains only
//! simulation-derived integers — event counts, virtual end times, request
//! counts — which are deterministic for a fixed seed on both backends, so
//! repeated runs produce byte-identical files (CI diffs two runs).
//! Wall-clock throughput (events/sec, requests/sec) is inherently noisy
//! and is printed to stdout only.

use fractos_baselines::raw::{Peer, PingPongClient, PingPongServer, Start as PingStart};
use fractos_bench::report::Table;
use fractos_core::prelude::*;
use fractos_net::{Fabric, NetParams, NodeConfig, NodeId, Topology};
use fractos_obs::Json;
use fractos_services::deploy::deploy_faceverify;
use fractos_services::faceverify::FvClient;
use fractos_services::FvConfig;
use fractos_sim::{build_runtime, RuntimeKind, Shared, SimDuration};

const SEED: u64 = 61;
const PING_NODES: u32 = 4;
const PING_ROUNDS: u64 = 2_000;
const IMG: u64 = 4096;
const BATCH: u64 = 8;
const REQS: u64 = 32;

/// One backend's deterministic outcome plus its (stdout-only) wall time.
struct RunStats {
    steps: u64,
    end_ns: u64,
    wall_secs: f64,
}

/// Resolves an output path against the repository root (bench binaries run
/// with the package directory as CWD, which is rarely where artifacts are
/// wanted).
fn out_path(p: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(p);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}

fn kind_name(kind: RuntimeKind) -> &'static str {
    match kind {
        RuntimeKind::SingleThreaded => "single",
        RuntimeKind::Sharded => "sharded",
    }
}

/// Raw event throughput: a ring of cross-node ping-pong pairs (client on
/// node i, server on node i+1), so every shard has deliveries in every
/// lookahead window and the sharded backend's barrier path is exercised
/// continuously.
fn run_raw(kind: RuntimeKind) -> RunStats {
    let mut topology = Topology::new();
    for i in 0..PING_NODES {
        topology.add_node(NodeConfig::cpu_only(&format!("n{i}")));
    }
    let params = NetParams::paper();
    let config = Testbed::runtime_config(&topology, &params, SEED);
    let mut sim = build_runtime(kind, &config);
    let fabric = Shared::new(Fabric::new(topology, params));

    let mut clients = Vec::new();
    for a in 0..PING_NODES {
        let b = (a + 1) % PING_NODES;
        let server_ep = fractos_net::Endpoint::cpu(NodeId(b));
        let server = sim.add_actor_on(
            b as usize,
            &format!("server{a}to{b}"),
            Box::new(PingPongServer::new(server_ep, fabric.clone())),
        );
        let client = sim.add_actor_on(
            a as usize,
            &format!("client{a}"),
            Box::new(PingPongClient::new(
                fractos_net::Endpoint::cpu(NodeId(a)),
                Peer {
                    actor: server,
                    endpoint: server_ep,
                },
                PING_ROUNDS,
                fabric.clone(),
            )),
        );
        clients.push(client);
    }
    for &client in &clients {
        sim.post(SimDuration::ZERO, client, PingStart);
    }
    let wall = std::time::Instant::now();
    sim.run();
    let wall_secs = wall.elapsed().as_secs_f64();
    for &client in &clients {
        sim.with_actor::<PingPongClient, _>(client, |c| {
            assert_eq!(c.latencies.len() as u64, PING_ROUNDS);
        });
    }
    RunStats {
        steps: sim.steps(),
        end_ns: sim.now().as_nanos(),
        wall_secs,
    }
}

/// Request throughput: the Fig 2 face-verification deployment end to end.
fn run_requests(kind: RuntimeKind) -> RunStats {
    let mut tb = Testbed::new_on(Topology::paper_testbed(), NetParams::paper(), SEED, kind);
    let ctrls = tb.controllers_per_node(false);
    deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
    let client = tb.add_process(
        "client",
        cpu(2),
        ctrls[2],
        FvClient::new(IMG, BATCH, REQS, 2),
    );
    tb.start_process(client);
    let wall = std::time::Instant::now();
    tb.run();
    let wall_secs = wall.elapsed().as_secs_f64();
    tb.with_service::<FvClient, _>(client, |c| {
        assert_eq!(
            c.samples.len() as u64,
            REQS,
            "client finished every request"
        );
    });
    RunStats {
        steps: tb.sim.steps(),
        end_ns: tb.now().as_nanos(),
        wall_secs,
    }
}

fn main() {
    let kinds = [RuntimeKind::SingleThreaded, RuntimeKind::Sharded];

    let raw: Vec<(RuntimeKind, RunStats)> = kinds.iter().map(|&k| (k, run_raw(k))).collect();
    let reqs: Vec<(RuntimeKind, RunStats)> = kinds.iter().map(|&k| (k, run_requests(k))).collect();

    // Both backends must agree on the deterministic outcome: same event
    // count, same virtual end time. (Full trace equality is asserted by
    // `tests/backend_equivalence.rs`; this keeps the bench honest.)
    assert_eq!(raw[0].1.steps, raw[1].1.steps, "raw event counts diverged");
    assert_eq!(raw[0].1.end_ns, raw[1].1.end_ns, "raw end times diverged");
    assert_eq!(
        reqs[0].1.steps, reqs[1].1.steps,
        "request event counts diverged"
    );
    assert_eq!(
        reqs[0].1.end_ns, reqs[1].1.end_ns,
        "request end times diverged"
    );

    let mut t = Table::new(
        "Engine: raw event throughput (4-node ping-pong ring)",
        &[
            "backend",
            "events",
            "virtual ms",
            "wall ms",
            "events/sec (wall)",
        ],
    );
    for (k, s) in &raw {
        t.row(&[
            kind_name(*k).into(),
            s.steps.to_string(),
            format!("{:.3}", s.end_ns as f64 / 1e6),
            format!("{:.1}", s.wall_secs * 1e3),
            format!("{:.0}", s.steps as f64 / s.wall_secs.max(1e-9)),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "Engine: request throughput (Fig 2 face-verification pipeline)",
        &[
            "backend",
            "requests",
            "events",
            "virtual ms",
            "wall ms",
            "requests/sec (wall)",
        ],
    );
    for (k, s) in &reqs {
        t.row(&[
            kind_name(*k).into(),
            REQS.to_string(),
            s.steps.to_string(),
            format!("{:.3}", s.end_ns as f64 / 1e6),
            format!("{:.1}", s.wall_secs * 1e3),
            format!("{:.0}", REQS as f64 / s.wall_secs.max(1e-9)),
        ]);
    }
    t.print();
    println!("  (wall-clock rates vary run to run; the JSON records only deterministic counts)");

    let backend_obj = |s: &RunStats| {
        Json::obj(vec![
            ("events", Json::UInt(s.steps)),
            ("virtual_end_ns", Json::UInt(s.end_ns)),
        ])
    };
    let doc = Json::obj(vec![
        ("workload", Json::Str("engine_speed".into())),
        (
            "raw_events",
            Json::obj(vec![
                ("nodes", Json::UInt(PING_NODES as u64)),
                ("rounds_per_pair", Json::UInt(PING_ROUNDS)),
                ("single", backend_obj(&raw[0].1)),
                ("sharded", backend_obj(&raw[1].1)),
            ]),
        ),
        (
            "requests",
            Json::obj(vec![
                ("count", Json::UInt(REQS)),
                ("single", backend_obj(&reqs[0].1)),
                ("sharded", backend_obj(&reqs[1].1)),
            ]),
        ),
    ]);
    let bench_json = out_path("BENCH_engine.json");
    std::fs::write(&bench_json, format!("{doc}\n")).expect("write BENCH_engine.json");
    println!("\n  wrote {}", bench_json.display());
}
