//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Data-path composition** — the storage stack's three modes
//!    (mediated / §3.4 composed / DAX) isolate how much of the win comes
//!    from moving data directly vs also moving *control* out of the FS.
//! 2. **Third-party RDMA ("HW copies")** — the §7 hardware offload applied
//!    to the whole application, quantifying what the paper's envisioned
//!    NIC support would buy end to end.
//! 3. **Double buffering** — `memory_copy` chunk-size sweep (the prototype
//!    picked 16 KiB; §6.1).
//! 4. **Congestion window** — the §4 back-pressure mechanism's effect on a
//!    syscall-intensive workload.

use fractos_bench::apps::{
    fractos_faceverify_opts, fractos_faceverify_with, storage_fractos, FvDeploy,
};
use fractos_bench::report::{ratio, us, Table};
use fractos_bench::scripts::Script;
use fractos_core::prelude::*;
use fractos_core::types::Syscall;
use fractos_core::CtrlPlacement;
use fractos_services::fs::FsMode;

fn ablate_composition() {
    let mut t = Table::new(
        "Ablation 1: storage data-path composition (random-read latency, usec)",
        &[
            "io size",
            "mediated",
            "composed (§3.4)",
            "DAX",
            "mediated/DAX",
        ],
    );
    for &io in &[4u64 * 1024, 64 * 1024, 1024 * 1024] {
        let (med, _) = storage_fractos(FsMode::Mediated, io, 16, 1, false, false, false);
        let (comp, _) = storage_fractos(FsMode::Compose, io, 16, 1, false, false, false);
        let (dax, _) = storage_fractos(FsMode::Dax, io, 16, 1, false, false, false);
        t.row(&[
            format!("{}KiB", io / 1024),
            us(med),
            us(comp),
            us(dax),
            ratio(med, dax),
        ]);
    }
    t.print();
    println!("  Composition removes the FS from the data path (the big win);");
    println!("  DAX additionally removes it from the per-op control path.");
}

fn ablate_hw_offload() {
    let mut t = Table::new(
        "Ablation 2: third-party RDMA offload (face verification, usec)",
        &["batch", "bounce buffers", "HW copies (§7)", "speedup"],
    );
    for &batch in &[1u64, 8, 64] {
        let base = fractos_faceverify_opts(FvDeploy::Cpu, 4096, batch, 10, 1, false);
        let hw = fractos_faceverify_with(FvDeploy::Cpu, 4096, batch, 10, 1, false, |p| {
            p.third_party_rdma = true;
        });
        assert!(base.ok && hw.ok);
        t.row(&[
            batch.to_string(),
            us(base.lat_mean),
            us(hw.lat_mean),
            ratio(base.lat_mean, hw.lat_mean),
        ]);
    }
    t.print();
    println!("  The offload the paper proposes (§7) removes both bounce-buffer");
    println!("  traversals from every memory_copy.");
}

fn ablate_double_buffering() {
    let mut t = Table::new(
        "Ablation 3: memory_copy chunk size (256 KiB cross-node copy, usec)",
        &["chunk", "latency", "goodput MB/s"],
    );
    let size = 256 * 1024u64;
    for &chunk in &[4u64 * 1024, 16 * 1024, 64 * 1024, 256 * 1024] {
        // Measured through the app-independent micro runner with a tweaked
        // chunk size.
        let lat = memcopy_with_chunk(size, chunk);
        t.row(&[
            format!("{}KiB", chunk / 1024),
            us(lat),
            format!("{:.0}", size as f64 / (lat / 1e6) / 1e6),
        ]);
    }
    t.print();
    println!("  Small chunks pipeline better but pay per-chunk processing; the");
    println!("  prototype's 16 KiB sits at the knee (§6.1).");
}

/// One 256 KiB copy with an overridden double-buffer chunk.
fn memcopy_with_chunk(size: u64, chunk: u64) -> f64 {
    use fractos_bench::scripts::mean_gap_us;
    use fractos_cap::Perms;

    let mut tb = Testbed::paper(4);
    {
        let mut fabric = tb.fabric.borrow_mut();
        let p = fabric.params_mut();
        p.double_buffer_chunk = chunk;
        p.double_buffer_threshold = chunk.min(16 * 1024);
    }
    let ctrls = tb.controllers_per_node(false);
    let dst = tb.add_process(
        "dst",
        cpu(2),
        ctrls[2],
        Script::new(move |_s, fos| {
            fos.memory_create_new(size, Perms::RW, |_s, _a, cid, fos| {
                fos.kv_put("dst", cid.unwrap(), |_, res, _| assert!(res.is_ok()));
            });
        }),
    );
    tb.start_process(dst);
    tb.run();
    let src = tb.add_process(
        "src",
        cpu(0),
        ctrls[0],
        Script::new(move |_s, fos| {
            fos.memory_create_new(size, Perms::RW, move |_s, _a, cid, fos| {
                let src = cid.unwrap();
                fos.kv_get("dst", move |s: &mut Script, res, fos| {
                    let dst = res.cid();
                    s.stamps.push(fos.now());
                    fn next(
                        s: &mut Script,
                        src: fractos_cap::Cid,
                        dst: fractos_cap::Cid,
                        fos: &Fos<Script>,
                    ) {
                        if s.stamps.len() > 8 {
                            return;
                        }
                        fos.memory_copy(src, dst, move |s: &mut Script, res, fos| {
                            assert_eq!(res, SyscallResult::Ok);
                            s.stamps.push(fos.now());
                            next(s, src, dst, fos);
                        });
                    }
                    next(s, src, dst, fos);
                });
            });
        }),
    );
    tb.start_process(src);
    tb.run();
    tb.with_service::<Script, _>(src, |s| mean_gap_us(&s.stamps))
}

fn ablate_congestion_window() {
    let mut t = Table::new(
        "Ablation 4: congestion window (200 null syscalls, wall-clock usec)",
        &["window", "wall time", "effective rate (op/us)"],
    );
    for &window in &[1u32, 4, 16, 64] {
        let wall = null_burst(window);
        t.row(&[window.to_string(), us(wall), format!("{:.2}", 200.0 / wall)]);
    }
    t.print();
    println!("  The §4 back-pressure mechanism bounds outstanding responses;");
    println!("  wider windows pipeline the queue-pair round trips.");
}

fn null_burst(window: u32) -> f64 {
    let mut tb = Testbed::paper(5);
    let ctrl = tb.add_controller(CtrlPlacement::HostCpu(NodeId(0)));
    let p = tb.add_process(
        "burst",
        cpu(0),
        ctrl,
        Script::new(move |_s, fos| {
            fos.set_window(window);
            for _ in 0..200 {
                fos.call(Syscall::Null, |s: &mut Script, _res, fos| {
                    s.stamps.push(fos.now());
                });
            }
        }),
    );
    tb.start_process(p);
    let t0 = tb.now();
    tb.run();
    let wall = tb.now().duration_since(t0).as_micros_f64();
    tb.with_service::<Script, _>(p, |s| assert_eq!(s.stamps.len(), 200));
    wall
}

fn ablate_poll_vs_interrupt() {
    let mut t = Table::new(
        "Ablation 5: polling vs interrupt-driven Controllers (usec)",
        &["workload", "polling", "interrupts", "penalty"],
    );
    // Sparse workload: widely spaced requests always wake a sleeping
    // Controller.
    let poll = fractos_faceverify_opts(FvDeploy::Cpu, 4096, 4, 6, 1, false);
    let intr = fractos_faceverify_with(FvDeploy::Cpu, 4096, 4, 6, 1, false, |p| {
        p.controller_interrupts = true;
    });
    assert!(poll.ok && intr.ok);
    t.row(&[
        "face verify, idle arrivals".into(),
        us(poll.lat_mean),
        us(intr.lat_mean),
        ratio(intr.lat_mean, poll.lat_mean),
    ]);
    // Dense workload: pipelining keeps the Controllers polling.
    let poll = fractos_faceverify_opts(FvDeploy::Cpu, 4096, 4, 24, 4, false);
    let intr = fractos_faceverify_with(FvDeploy::Cpu, 4096, 4, 24, 4, false, |p| {
        p.controller_interrupts = true;
    });
    t.row(&[
        "face verify, 4 in flight".into(),
        us(poll.lat_mean),
        us(intr.lat_mean),
        ratio(intr.lat_mean, poll.lat_mean),
    ]);
    t.print();
    println!("  The §4 trade-off: interrupts free the cores but tax sparse traffic;");
    println!("  under load the Controllers never sleep and the penalty vanishes.");
}

fn report_resource_footprint() {
    use fractos_core::ControllerActor;
    use fractos_services::deploy::deploy_faceverify;
    use fractos_services::FvConfig;

    let mut tb = Testbed::paper(91);
    let ctrls = tb.controllers_per_node(false);
    deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
    let mut t = Table::new(
        "Controller memory footprint (§4 accounting, face-verify deployment)",
        &["controller", "managed procs", "footprint MB"],
    );
    for (i, &addr) in ctrls.iter().enumerate() {
        let bytes = tb.with_controller(addr, |c: &mut ControllerActor| c.memory_footprint());
        let nprocs = tb.dir.borrow().procs_of(addr).len();
        t.row(&[
            format!("ctrl{i}"),
            nprocs.to_string(),
            format!("{:.0}", bytes as f64 / 1e6),
        ]);
    }
    t.print();
    println!("  (§4: 64 MB of RoCE buffers per Process and per peer; 24 B per");
    println!("   revocation-tree object — 'the SmartNIC we use has 16 GB')");
}

fn main() {
    ablate_composition();
    ablate_hw_offload();
    ablate_double_buffering();
    ablate_congestion_window();
    ablate_poll_vs_interrupt();
    report_resource_footprint();
}
