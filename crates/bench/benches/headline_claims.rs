//! §1 / §6 headline claims: "FractOS accelerates real-world heterogeneous
//! applications by 47%, while reducing their network traffic by 3×", and
//! §9's "reducing network traffic by up to 2×" for the storage stack.
//!
//! This harness measures the end-to-end face-verification application in
//! both latency and throughput regimes and prints the measured factors
//! next to the paper's.

use fractos_bench::apps::{baseline_faceverify, fractos_faceverify, FvDeploy};
use fractos_bench::report::Table;

const IMG: u64 = 4096;

fn main() {
    // Latency regime: sequential requests, moderate batch.
    let fos_lat = fractos_faceverify(FvDeploy::Cpu, IMG, 16, 16, 1);
    let base_lat = baseline_faceverify(IMG, 16, 16, 1);
    // Throughput regime: pipelined requests.
    let fos_tp = fractos_faceverify(FvDeploy::Cpu, IMG, 16, 32, 4);
    let base_tp = baseline_faceverify(IMG, 16, 32, 4);
    assert!(fos_lat.ok && base_lat.ok && fos_tp.ok && base_tp.ok);

    let speedup_lat = base_lat.lat_mean / fos_lat.lat_mean;
    let speedup_tp = fos_tp.throughput() / base_tp.throughput();
    let traffic = base_lat.net_bytes as f64 / fos_lat.net_bytes as f64;

    let mut t = Table::new(
        "Headline claims (batch 16, 4 KiB images)",
        &["metric", "FractOS", "baseline", "factor", "paper"],
    );
    t.row(&[
        "latency (usec)".into(),
        format!("{:.1}", fos_lat.lat_mean),
        format!("{:.1}", base_lat.lat_mean),
        format!("{:.2}x faster", speedup_lat),
        "1.47x".into(),
    ]);
    t.row(&[
        "throughput (req/s)".into(),
        format!("{:.0}", fos_tp.throughput()),
        format!("{:.0}", base_tp.throughput()),
        format!("{:.2}x higher", speedup_tp),
        "-".into(),
    ]);
    t.row(&[
        "network traffic (B/req)".into(),
        format!("{:.0}", fos_lat.net_bytes as f64 / 16.0),
        format!("{:.0}", base_lat.net_bytes as f64 / 16.0),
        format!("{:.2}x less", traffic),
        "3x".into(),
    ]);
    t.print();
    println!("  Shapes hold (FractOS wins on every axis); factors land lower than");
    println!("  the paper's because the simulated NFS/rCUDA baseline is idealized");
    println!("  relative to the real deployments measured there (see EXPERIMENTS.md).");
    assert!(
        speedup_lat > 1.0 && traffic > 1.5,
        "headline shape violated"
    );
}
