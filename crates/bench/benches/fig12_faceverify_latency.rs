//! Fig 12: end-to-end latency of a face-verification request vs image
//! batch size.
//!
//! FractOS (CPU and sNIC Controller deployments) against the
//! NFS + NVMe-oF + rCUDA baseline. The paper's baseline moves the data
//! over the network three times; FractOS once (NVMe → GPU) plus the query
//! upload, which shows as lower latency at every batch size.

use fractos_bench::apps::{baseline_faceverify, fractos_faceverify, FvDeploy};
use fractos_bench::report::{ratio, us, Table};

const IMG: u64 = 4096;
const REQS: u64 = 12;

fn main() {
    let mut t = Table::new(
        "Fig 12: end-to-end face-verification latency (usec)",
        &[
            "batch",
            "FractOS@CPU",
            "p50",
            "p95",
            "p99",
            "FractOS@sNIC",
            "baseline",
            "base/CPU",
        ],
    );
    for &batch in &[1u64, 4, 8, 16, 32, 64] {
        let cpu = fractos_faceverify(FvDeploy::Cpu, IMG, batch, REQS, 1);
        let snic = fractos_faceverify(FvDeploy::Snic, IMG, batch, REQS, 1);
        let base = baseline_faceverify(IMG, batch, REQS, 1);
        assert!(cpu.ok && snic.ok && base.ok, "verification must succeed");
        t.row(&[
            batch.to_string(),
            us(cpu.lat_mean),
            us(cpu.lat_p50),
            us(cpu.lat_p95),
            us(cpu.lat_p99),
            us(snic.lat_mean),
            us(base.lat_mean),
            ratio(base.lat_mean, cpu.lat_mean),
        ]);
    }
    t.print();
    println!("  (paper: FractOS below the baseline for both deployments at all");
    println!("   batch sizes — one data transfer instead of three)");
}
