//! Runners for the §6.1 micro-benchmarks (Table 3, Figs 5–7).

use fractos_cap::Perms;
use fractos_core::prelude::*;
use fractos_core::types::Syscall;
use fractos_core::CtrlPlacement;
use fractos_net::{Endpoint, Fabric, NetParams, Topology};
use fractos_sim::{Shared, SimRng, SimTime};

use crate::scripts::{mean_gap_us, Script};

/// Iterations per measured point.
pub const ITERS: u64 = 32;

/// Raw `ibv_rc_pingpong` loopback RTT (Table 3 rows 1–2), in µs.
pub fn raw_loopback_rtt(server_on_snic: bool) -> f64 {
    use fractos_baselines::raw::{Peer, PingPongClient, PingPongServer, Start};

    let mut sim = crate::apps::paper_runtime(1);
    let fabric = Shared::new(Fabric::new(Topology::paper_testbed(), NetParams::paper()));
    let server_ep = if server_on_snic {
        Endpoint::snic(NodeId(0))
    } else {
        Endpoint::cpu(NodeId(0))
    };
    let server = sim.add_actor_on(
        0,
        "pp-server",
        Box::new(PingPongServer::new(server_ep, fabric.clone())),
    );
    let client = sim.add_actor_on(
        0,
        "pp-client",
        Box::new(PingPongClient::new(
            Endpoint::cpu(NodeId(0)),
            Peer {
                actor: server,
                endpoint: server_ep,
            },
            ITERS,
            fabric.clone(),
        )),
    );
    sim.post(fractos_sim::SimDuration::ZERO, client, Start);
    sim.run();
    sim.with_actor::<PingPongClient, _>(client, |c| {
        c.latencies.iter().map(|d| d.as_micros_f64()).sum::<f64>() / c.latencies.len() as f64
    })
}

/// FractOS null-syscall RTT (Table 3 rows 3–4), in µs.
pub fn null_op_rtt(ctrl_on_snic: bool) -> f64 {
    let mut tb = Testbed::paper(2);
    let ctrl = tb.add_controller(if ctrl_on_snic {
        CtrlPlacement::SmartNic(NodeId(0))
    } else {
        CtrlPlacement::HostCpu(NodeId(0))
    });
    let p = tb.add_process(
        "client",
        cpu(0),
        ctrl,
        Script::new(|_s, fos| {
            fn next(s: &mut Script, fos: &Fos<Script>) {
                if s.stamps.len() as u64 > ITERS {
                    return;
                }
                fos.call(Syscall::Null, |s: &mut Script, _res, fos| {
                    s.stamps.push(fos.now());
                    next(s, fos);
                });
            }
            next(_s, fos);
        }),
    );
    tb.start_process(p);
    tb.run();
    tb.with_service::<Script, _>(p, |s| mean_gap_us(&s.stamps))
}

/// Raw one-sided RDMA write latency between two nodes, in µs (Fig 5
/// baseline).
pub fn raw_rdma_write(size: u64) -> f64 {
    let mut fabric = Fabric::new(Topology::paper_testbed(), NetParams::paper());
    let mut rng = SimRng::new(3);
    let mut total = 0.0;
    for i in 0..ITERS {
        // Space iterations far apart so they do not queue on the links.
        let t = SimTime::from_nanos(i * 1_000_000_000);
        let d = fabric.rdma_write(
            t,
            &mut rng,
            Endpoint::cpu(NodeId(0)),
            Endpoint::cpu(NodeId(2)),
            size,
        );
        total += d.as_micros_f64();
    }
    total / ITERS as f64
}

/// `memory_copy` latency between buffers on two different nodes, in µs
/// (Fig 5). `third_party` enables the "HW copies" NIC offload model.
pub fn memcopy_latency(size: u64, ctrl_on_snic: bool, third_party: bool) -> f64 {
    let mut tb = Testbed::paper(4);
    if third_party {
        tb.fabric.borrow_mut().params_mut().third_party_rdma = true;
    }
    let ctrls = tb.controllers_per_node(ctrl_on_snic);

    // Destination buffer on node 2.
    let dst = tb.add_process(
        "dst",
        cpu(2),
        ctrls[2],
        Script::new(move |_s, fos| {
            fos.memory_create_new(size, Perms::RW, |_s, _a, cid, fos| {
                fos.kv_put("dst", cid.unwrap(), |_, res, _| assert!(res.is_ok()));
            });
        }),
    );
    tb.start_process(dst);
    tb.run();

    // Source + driver on node 0.
    let src = tb.add_process(
        "src",
        cpu(0),
        ctrls[0],
        Script::new(move |_s, fos| {
            fos.memory_create_new(size, Perms::RW, move |_s, _a, cid, fos| {
                let src = cid.unwrap();
                fos.kv_get("dst", move |s: &mut Script, res, fos| {
                    let dst = res.cid();
                    s.stamps.push(fos.now());
                    fn next(
                        s: &mut Script,
                        src: fractos_cap::Cid,
                        dst: fractos_cap::Cid,
                        fos: &Fos<Script>,
                    ) {
                        if s.stamps.len() as u64 > ITERS {
                            return;
                        }
                        fos.memory_copy(src, dst, move |s: &mut Script, res, fos| {
                            assert_eq!(res, SyscallResult::Ok);
                            s.stamps.push(fos.now());
                            next(s, src, dst, fos);
                        });
                    }
                    next(s, src, dst, fos);
                });
            });
        }),
    );
    tb.start_process(src);
    tb.run();
    tb.with_service::<Script, _>(src, |s| mean_gap_us(&s.stamps))
}

/// Request-invocation RPC latency (Fig 6), in µs.
///
/// The client pre-creates its reply Request and pre-delegates it into a
/// service-side base Request (the paper "exchanges Requests ahead of time
/// to avoid delegations"); each measured call then derives with the
/// immediate payload and invokes, and the server answers by invoking the
/// preset reply verbatim.
pub fn rpc_latency(two_nodes: bool, ctrl_on_snic: bool, arg_bytes: usize) -> f64 {
    let mut tb = Testbed::paper(5);
    let ctrls = tb.controllers_per_node(ctrl_on_snic);
    let server_node = 0u32;
    let client_node = if two_nodes { 1 } else { 0 };

    const TAG_SVC: u64 = 1;
    const TAG_REPLY: u64 = 2;

    // Server: publish; on request, invoke the preset reply (caps[0]).
    let server = tb.add_process(
        "server",
        cpu(server_node),
        ctrls[server_node as usize],
        Script::new(|_s, fos| {
            fos.request_create_new(TAG_SVC, vec![], vec![], |_s, res, fos| {
                fos.kv_put("svc", res.cid(), |_, res, _| assert!(res.is_ok()));
            });
        })
        .with_handler(|_s, req, fos| {
            fos.request_invoke(req.caps[0], |_, res, _| debug_assert!(res.is_ok()));
        }),
    );
    tb.start_process(server);
    tb.run();

    fn issue(base: fractos_cap::Cid, arg_bytes: usize, fos: &Fos<Script>) {
        fos.request_derive(
            base,
            vec![vec![0xA5; arg_bytes].into()],
            vec![],
            |_s, res, fos| {
                fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
            },
        );
    }

    // Client: one-time setup (reply creation + delegation into the base),
    // then the measured derive+invoke loop driven from the reply handler.
    let client = tb.add_process(
        "client",
        cpu(client_node),
        ctrls[client_node as usize],
        Script::new(move |_s, fos| {
            fos.request_create_new(TAG_REPLY, vec![], vec![], move |_s, res, fos| {
                let reply = res.cid();
                fos.kv_get("svc", move |_s, res, fos| {
                    let svc = res.cid();
                    fos.request_derive(
                        svc,
                        vec![],
                        vec![reply],
                        move |s: &mut Script, res, fos| {
                            let base = res.cid();
                            s.cids.push(base);
                            s.stamps.push(fos.now());
                            issue(base, arg_bytes, fos);
                        },
                    );
                });
            });
        })
        .with_handler(move |s, _req, fos| {
            s.stamps.push(fos.now());
            if (s.stamps.len() as u64) <= ITERS {
                issue(s.cids[0], arg_bytes, fos);
            }
        }),
    );
    tb.start_process(client);
    tb.run();
    let _ = server;
    tb.with_service::<Script, _>(client, |s| mean_gap_us(&s.stamps))
}

/// RPC round trip with `ncaps` delegated Memory capabilities as arguments
/// (Fig 7 left), in µs.
pub fn delegation_rtt(ncaps: usize, ctrl_on_snic: bool) -> f64 {
    let mut tb = Testbed::paper(6);
    let ctrls = tb.controllers_per_node(ctrl_on_snic);

    const TAG_SVC: u64 = 1;
    const TAG_REPLY: u64 = 2;

    let server = tb.add_process(
        "server",
        cpu(0),
        ctrls[0],
        Script::new(|_s, fos| {
            fos.request_create_new(TAG_SVC, vec![], vec![], |_s, res, fos| {
                fos.kv_put("svc", res.cid(), |_, res, _| assert!(res.is_ok()));
            });
        })
        .with_handler(|_s, req, fos| {
            // The reply continuation is the last capability argument.
            fos.request_invoke(*req.caps.last().expect("reply"), |_, res, _| {
                debug_assert!(res.is_ok())
            });
        }),
    );
    tb.start_process(server);
    tb.run();

    fn issue(s: &Script, fos: &Fos<Script>) {
        // caps[0] = svc base, caps[1..=n] = memories, last = reply.
        let svc = s.cids[0];
        let mut caps: Vec<fractos_cap::Cid> = s.cids[1..].to_vec();
        let reply = caps.pop().expect("reply present");
        caps.push(reply);
        fos.request_derive(svc, vec![], caps, |_s, res, fos| {
            fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
        });
    }

    let client = tb.add_process(
        "client",
        cpu(1),
        ctrls[1],
        Script::new(move |_s, fos| {
            // Create the argument memories, the reply, then loop.
            fn setup(_s: &mut Script, remaining: usize, fos: &Fos<Script>) {
                if remaining == 0 {
                    fos.request_create_new(
                        TAG_REPLY,
                        vec![],
                        vec![],
                        |s: &mut Script, res, fos| {
                            s.cids.push(res.cid());
                            s.stamps.push(fos.now());
                            issue(s, fos);
                        },
                    );
                    return;
                }
                fos.memory_create_new(4096, Perms::RW, move |s: &mut Script, _a, cid, fos| {
                    s.cids.push(cid.unwrap());
                    setup(s, remaining - 1, fos);
                });
            }
            fos.kv_get("svc", move |s: &mut Script, res, fos| {
                s.cids.push(res.cid());
                setup(s, ncaps, fos);
            });
        })
        .with_handler(move |s, _req, fos| {
            s.stamps.push(fos.now());
            if (s.stamps.len() as u64) <= ITERS {
                issue(s, fos);
            }
        }),
    );
    tb.start_process(client);
    tb.run();
    let _ = server;
    tb.with_service::<Script, _>(client, |s| mean_gap_us(&s.stamps))
}

/// Total time to revoke `n` capabilities (Fig 7 right), in µs.
///
/// `shared_tree = false` is the traditional layout (one revocation tree per
/// capability → `n` revocations); `shared_tree = true` is the
/// FractOS-optimized layout (all delegations reference one indirection
/// object → a single revocation).
pub fn revoke_latency(n: usize, shared_tree: bool, ctrl_on_snic: bool) -> f64 {
    let mut tb = Testbed::paper(8);
    let ctrls = tb.controllers_per_node(ctrl_on_snic);

    // Owner creates the base memory object on node 0.
    let owner = tb.add_process(
        "owner",
        cpu(0),
        ctrls[0],
        Script::new(move |_s, fos| {
            fos.memory_create_new(4096, Perms::RW, move |s: &mut Script, _a, cid, fos| {
                let base = cid.unwrap();
                s.cids.push(base);
                if shared_tree {
                    // One indirection object; everything points at it.
                    fos.call(
                        Syscall::CapCreateRevtree { cid: base },
                        |s: &mut Script, res, fos| {
                            s.cids.push(res.cid());
                            fos.kv_put("obj", res.cid(), |_, res, _| assert!(res.is_ok()));
                        },
                    );
                } else {
                    // One separately revocable node per capability.
                    fn mint(
                        _s: &mut Script,
                        base: fractos_cap::Cid,
                        left: usize,
                        fos: &Fos<Script>,
                    ) {
                        if left == 0 {
                            fos.kv_put("ready", base, |_, res, _| assert!(res.is_ok()));
                            return;
                        }
                        fos.call(
                            Syscall::CapCreateRevtree { cid: base },
                            move |s: &mut Script, res, fos| {
                                s.cids.push(res.cid());
                                mint(s, base, left - 1, fos);
                            },
                        );
                    }
                    mint(s, base, n, fos);
                }
            });
        }),
    );
    tb.start_process(owner);
    tb.run();

    // Revoke from the owner and time it.
    let fos = tb.fos_of::<Script>(owner);
    let victims: Vec<fractos_cap::Cid> = tb.with_service::<Script, _>(owner, |s| {
        if shared_tree {
            vec![s.cids[1]]
        } else {
            s.cids[1..=n].to_vec()
        }
    });
    let t0 = tb.now();
    // Sequential revocations, like an application freeing blocks one by
    // one. Each completion stamps; the measured window ends at the last
    // revocation *reply* (the out-of-band cleanup broadcast runs after and
    // is not latency-critical, §3.5).
    fn revoke_seq(fos: &Fos<Script>, mut rest: Vec<fractos_cap::Cid>) {
        let Some(cid) = rest.pop() else { return };
        fos.call(
            Syscall::CapRevoke { cid },
            move |s: &mut Script, res, fos| {
                assert!(res.is_ok(), "revoke failed: {res:?}");
                s.stamps.push(fos.now());
                revoke_seq(fos, rest);
            },
        );
    }
    revoke_seq(&fos, victims);
    tb.poke(owner);
    tb.run();
    let last = tb.with_service::<Script, _>(owner, |s| *s.stamps.last().expect("revoked"));
    last.duration_since(t0).as_micros_f64()
}
