//! Scriptable client services used by the micro-benchmarks.

use fractos_cap::Cid;
use fractos_core::prelude::*;
use fractos_sim::SimTime;

/// A service driven by a one-shot closure at start; collects results.
pub struct Script {
    /// Syscall results collected by the script's continuations.
    pub results: Vec<SyscallResult>,
    /// Capability indices collected by the script's continuations.
    pub cids: Vec<Cid>,
    /// Timestamps collected by the script's continuations.
    pub stamps: Vec<SimTime>,
    /// Requests delivered to this Process.
    pub received: Vec<IncomingRequest>,
    #[allow(clippy::type_complexity)]
    start: Option<Box<dyn FnOnce(&mut Script, &Fos<Script>) + Send>>,
    #[allow(clippy::type_complexity)]
    on_req: Option<Box<dyn FnMut(&mut Script, IncomingRequest, &Fos<Script>) + Send>>,
}

impl Script {
    /// A script that runs `f` once at start.
    pub fn new(f: impl FnOnce(&mut Script, &Fos<Script>) + Send + 'static) -> Self {
        Script {
            results: Vec::new(),
            cids: Vec::new(),
            stamps: Vec::new(),
            received: Vec::new(),
            start: Some(Box::new(f)),
            on_req: None,
        }
    }

    /// Adds a request handler (otherwise requests are just recorded).
    pub fn with_handler(
        mut self,
        h: impl FnMut(&mut Script, IncomingRequest, &Fos<Script>) + Send + 'static,
    ) -> Self {
        self.on_req = Some(Box::new(h));
        self
    }
}

impl Service for Script {
    fn on_start(&mut self, fos: &Fos<Self>) {
        if let Some(f) = self.start.take() {
            f(self, fos);
        }
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        // Detach the handler while it runs so it can borrow `self` freely.
        if let Some(mut h) = self.on_req.take() {
            h(self, req, fos);
            if self.on_req.is_none() {
                self.on_req = Some(h);
            }
        } else {
            self.received.push(req);
        }
    }
}

/// Mean of the microsecond gaps between consecutive stamps.
pub fn mean_gap_us(stamps: &[SimTime]) -> f64 {
    if stamps.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for w in stamps.windows(2) {
        total += w[1].duration_since(w[0]).as_micros_f64();
    }
    total / (stamps.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractos_core::types::Syscall;

    #[test]
    fn script_runs_and_collects() {
        let mut tb = Testbed::paper(1);
        let ctrl = tb.add_controller(fractos_core::CtrlPlacement::HostCpu(NodeId(0)));
        let p = tb.add_process(
            "s",
            cpu(0),
            ctrl,
            Script::new(|_s, fos| {
                fos.call(Syscall::Null, |s: &mut Script, res, fos| {
                    s.results.push(res);
                    s.stamps.push(fos.now());
                });
            }),
        );
        tb.start_process(p);
        tb.run();
        tb.with_service::<Script, _>(p, |s| {
            assert_eq!(s.results, vec![SyscallResult::Ok]);
            assert_eq!(s.stamps.len(), 1);
        });
    }

    #[test]
    fn mean_gap() {
        let stamps = vec![
            SimTime::from_nanos(0),
            SimTime::from_nanos(1_000),
            SimTime::from_nanos(3_000),
        ];
        assert!((mean_gap_us(&stamps) - 1.5).abs() < 1e-9);
        assert_eq!(mean_gap_us(&stamps[..1]), 0.0);
    }
}
