//! Table rendering for the reproduction harness.
//!
//! Each bench target prints the rows/series of one table or figure from the
//! paper. The format is deliberately plain (fixed-width columns) so outputs
//! diff cleanly across runs and paste into EXPERIMENTS.md.

/// A fixed-width text table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (already formatted cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("  ");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
        out.push_str(&"-".repeat(total.min(100)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a microsecond value.
pub fn us(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a throughput in MB/s from bytes and seconds.
pub fn mbps(bytes: u64, secs: f64) -> String {
    format!("{:.1}", bytes as f64 / secs / 1e6)
}

/// Formats a ratio.
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.2}x", a / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["size", "latency"]);
        t.row(&["4".into(), "1.25".into()]);
        t.row(&["4096".into(), "170.12".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("4096"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows end aligned.
        assert!(lines.len() >= 5);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(us(1.234), "1.23");
        assert_eq!(ratio(3.0, 1.5), "2.00x");
        assert_eq!(mbps(1_000_000, 1.0), "1.0");
    }
}
