//! Runners for the application-level experiments (Figs 8–13, Fig 2, and
//! the headline claims).

use fractos_baselines::faceverify::{deploy_baseline, BaselineClient, Start};
use fractos_baselines::pipeline::{FastStarDriver, StarDriver};
use fractos_baselines::raw::{raw_send, Peer};
use fractos_baselines::storage::{NfsOp, NfsReply, NfsServer, NvmeOfTarget};
use fractos_cap::{Cid, Perms};
use fractos_core::prelude::*;
use fractos_devices::proto::{imm, imm_at};
use fractos_devices::{BlockAdaptor, GpuAdaptor, GpuParams, NvmeParams};
use fractos_net::{Fabric, NetParams, Topology, TrafficClass};
use fractos_obs::MetricsSnapshot;
use fractos_services::deploy::deploy_faceverify;
use fractos_services::faceverify::FvClient;
use fractos_services::fs::{FsMode, FsService};
use fractos_services::pipeline::{ChainDriver, PipelineStage};
use fractos_services::{FvConfig, FACE_VERIFY_KERNEL};
use fractos_sim::{
    runtime_from_env, Actor, ActorId, Ctx, Histogram, Msg, Runtime, RuntimeConfig, Shared,
    SimDuration, SimTime, SpanRecord, TelemetryEvent,
};

/// Result of one application run.
#[derive(Debug, Clone, Copy)]
pub struct AppResult {
    /// Mean per-request latency in µs.
    pub lat_mean: f64,
    /// Median per-request latency in µs (nearest rank).
    pub lat_p50: f64,
    /// 95th-percentile per-request latency in µs (nearest rank).
    pub lat_p95: f64,
    /// 99th-percentile per-request latency in µs (nearest rank).
    pub lat_p99: f64,
    /// Wall-clock (virtual) time of the measured phase in µs.
    pub wall_us: f64,
    /// Requests completed.
    pub completed: u64,
    /// Network bytes during the measured phase.
    pub net_bytes: u64,
    /// Network messages during the measured phase.
    pub net_msgs: u64,
    /// Network data-plane messages.
    pub data_msgs: u64,
    /// All results verified correct.
    pub ok: bool,
}

impl AppResult {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / (self.wall_us / 1e6)
    }
}

/// Runtime for a paper-testbed-shaped run, on the backend selected by
/// `FRACTOS_RUNTIME` (single-threaded when unset).
pub(crate) fn paper_runtime(seed: u64) -> Box<dyn Runtime> {
    let topology = Topology::paper_testbed();
    let params = NetParams::paper();
    let config = RuntimeConfig::new(seed, topology.len(), params.conservative_lookahead());
    runtime_from_env(&config)
}

/// Deployment flavour for the FractOS face-verification app.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FvDeploy {
    /// One Controller per node on host CPUs.
    Cpu,
    /// One Controller per node on the SmartNICs.
    Snic,
    /// A single shared Controller on the frontend node ("Shared HAL").
    SharedHal,
}

/// Runs the FractOS face-verification app (Figs 12–13).
pub fn fractos_faceverify(
    deploy: FvDeploy,
    img: u64,
    batch: u64,
    requests: u64,
    in_flight: u64,
) -> AppResult {
    fractos_faceverify_opts(deploy, img, batch, requests, in_flight, false)
}

/// As [`fractos_faceverify`], optionally running the full Fig 2 ring
/// (results stored on the output SSD through the composed FS).
pub fn fractos_faceverify_opts(
    deploy: FvDeploy,
    img: u64,
    batch: u64,
    requests: u64,
    in_flight: u64,
    store_results: bool,
) -> AppResult {
    fractos_faceverify_with(
        deploy,
        img,
        batch,
        requests,
        in_flight,
        store_results,
        |_| {},
    )
}

/// As [`fractos_faceverify_opts`] with a fabric-parameter tweak applied
/// before the run (ablation studies).
pub fn fractos_faceverify_with(
    deploy: FvDeploy,
    img: u64,
    batch: u64,
    requests: u64,
    in_flight: u64,
    store_results: bool,
    tweak: impl FnOnce(&mut NetParams),
) -> AppResult {
    faceverify_run(
        deploy,
        img,
        batch,
        requests,
        in_flight,
        store_results,
        tweak,
        false,
    )
    .result
}

/// Observability capture from a traced FractOS face-verification run.
pub struct TracedRun {
    /// The application-level result.
    pub result: AppResult,
    /// Span records in the canonical `(start, end, actor, ord)` order.
    pub spans: Vec<SpanRecord>,
    /// Registered actor names, indexed by actor index (for trace export).
    pub actor_names: Vec<String>,
    /// Deterministic snapshot of the run's metrics registry.
    pub snapshot: MetricsSnapshot,
    /// Telemetry events in canonical order (empty unless the telemetry
    /// plane was enabled via `FRACTOS_TELEMETRY`).
    pub telemetry: Vec<TelemetryEvent>,
    /// The telemetry sampling period, when the plane was on.
    pub telemetry_period: Option<SimDuration>,
}

/// As [`fractos_faceverify_opts`] with causal span recording enabled for
/// the measured phase. Spans are switched on after deployment and boot, so
/// the capture covers exactly the top-level verification requests.
pub fn fractos_faceverify_traced(
    deploy: FvDeploy,
    img: u64,
    batch: u64,
    requests: u64,
    in_flight: u64,
    store_results: bool,
) -> TracedRun {
    faceverify_run(
        deploy,
        img,
        batch,
        requests,
        in_flight,
        store_results,
        |_| {},
        true,
    )
}

#[allow(clippy::too_many_arguments)]
fn faceverify_run(
    deploy: FvDeploy,
    img: u64,
    batch: u64,
    requests: u64,
    in_flight: u64,
    store_results: bool,
    tweak: impl FnOnce(&mut NetParams),
    trace: bool,
) -> TracedRun {
    let mut tb = Testbed::paper(61);
    tweak(tb.fabric.borrow_mut().params_mut());
    let ctrls = match deploy {
        FvDeploy::Cpu => tb.controllers_per_node(false),
        FvDeploy::Snic => tb.controllers_per_node(true),
        FvDeploy::SharedHal => tb.shared_controller(NodeId(2)),
    };
    let cfg = FvConfig {
        img_bytes: img,
        max_batch: batch.max(64),
        store_results,
        ..FvConfig::default()
    };
    deploy_faceverify(&mut tb, &ctrls, cfg, 256);
    tb.reset_traffic();
    // The continuous telemetry plane is armed after deployment, like span
    // recording, so the time series cover exactly the measured phase. Off
    // unless `FRACTOS_TELEMETRY` asks for it — disabled runs take no
    // telemetry branches at all and stay byte-identical.
    let telemetry_period = tb.enable_telemetry_from_env().map(|cfg| cfg.period);
    if trace {
        tb.sim.enable_spans();
    }
    let mut client_svc = FvClient::new(img, batch, requests, in_flight);
    client_svc.expect_stored = store_results;
    let client = tb.add_process("client", cpu(2), ctrls[2], client_svc);
    tb.start_process(client);
    let t0 = tb.now();
    tb.run();
    let wall_us = tb.now().duration_since(t0).as_micros_f64();
    let (mut lat, completed, ok) = tb.with_service::<FvClient, _>(client, |c| {
        let mut h = Histogram::new();
        for s in &c.samples {
            h.record(s.latency().as_micros_f64());
        }
        (
            h,
            c.samples.len() as u64,
            !c.samples.is_empty() && c.samples.iter().all(|s| s.all_matched),
        )
    });
    // Mirror the per-request samples into the run's registry so traced runs
    // export the latency distribution in their metrics snapshot.
    for &s in lat.samples() {
        tb.sim.metrics_mut().sample("app.request_latency_us", s);
    }
    let t = tb.traffic();
    let result = AppResult {
        lat_mean: lat.mean(),
        lat_p50: lat.p50(),
        lat_p95: lat.p95(),
        lat_p99: lat.p99(),
        wall_us,
        completed,
        net_bytes: t.network_bytes(),
        net_msgs: t.network_msgs(),
        data_msgs: t.network_data_msgs(),
        ok,
    };
    let telemetry = if telemetry_period.is_some() {
        tb.take_telemetry()
    } else {
        Vec::new()
    };
    if !trace {
        return TracedRun {
            result,
            spans: Vec::new(),
            actor_names: Vec::new(),
            snapshot: MetricsSnapshot::default(),
            telemetry,
            telemetry_period,
        };
    }
    let spans = tb.sim.take_spans();
    let actor_names = (0..tb.sim.actor_count())
        .map(|i| tb.sim.actor_name(ActorId::from_raw(i as u32)).to_string())
        .collect();
    let snapshot = MetricsSnapshot::capture(tb.sim.metrics());
    TracedRun {
        result,
        spans,
        actor_names,
        snapshot,
        telemetry,
        telemetry_period,
    }
}

/// Runs the §6.5 baseline face-verification stack.
pub fn baseline_faceverify(img: u64, batch: u64, requests: u64, in_flight: u64) -> AppResult {
    baseline_faceverify_opts(img, batch, requests, in_flight, false)
}

/// As [`baseline_faceverify`], optionally writing results back through NFS
/// (the full Fig 2 star).
pub fn baseline_faceverify_opts(
    img: u64,
    batch: u64,
    requests: u64,
    in_flight: u64,
    store_results: bool,
) -> AppResult {
    let mut sim = paper_runtime(61);
    let fabric = Shared::new(Fabric::new(Topology::paper_testbed(), NetParams::paper()));
    let dep = deploy_baseline(sim.as_mut(), &fabric, img, 256);
    if store_results {
        sim.with_actor::<fractos_baselines::faceverify::BaselineFrontend, _>(dep.frontend, |f| {
            f.store_results = true
        });
    }
    let client = sim.add_actor_on(
        2,
        "client",
        Box::new(BaselineClient::new(
            fractos_net::Endpoint::cpu(NodeId(2)),
            dep.frontend_peer,
            fabric.clone(),
            img,
            batch,
            requests,
            in_flight,
        )),
    );
    sim.post(SimDuration::ZERO, client, Start);
    let t0 = sim.now();
    sim.run();
    let wall_us = sim.now().duration_since(t0).as_micros_f64();
    let (mut lat, completed, ok) = sim.with_actor::<BaselineClient, _>(client, |c| {
        let mut h = Histogram::new();
        for s in &c.samples {
            h.record(s.latency().as_micros_f64());
        }
        (
            h,
            c.samples.len() as u64,
            !c.samples.is_empty() && c.samples.iter().all(|s| s.all_matched),
        )
    });
    let t = fabric.borrow().stats().clone();
    AppResult {
        lat_mean: lat.mean(),
        lat_p50: lat.p50(),
        lat_p95: lat.p95(),
        lat_p99: lat.p99(),
        wall_us,
        completed,
        net_bytes: t.network_bytes(),
        net_msgs: t.network_msgs(),
        data_msgs: t.network_data_msgs(),
        ok,
    }
}

/// Pipeline driver kind (Fig 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineKind {
    /// Centralized app & data.
    Star,
    /// Centralized control, direct data.
    FastStar,
    /// Fully distributed.
    Chain,
}

/// Mean per-iteration latency of an N-stage pipeline streaming `size`
/// bytes (Fig 8), in µs.
pub fn pipeline_latency(kind: PipelineKind, stages: usize, size: u64) -> f64 {
    let iterations = 8u64;
    let mut tb = Testbed::paper(71);
    let ctrls = tb.controllers_per_node(false);
    for i in 0..stages {
        // Consecutive stages on different nodes (§6.2).
        let node = (i % 3) as u32;
        let p = tb.add_process(
            &format!("stage{i}"),
            cpu(node),
            ctrls[node as usize],
            PipelineStage::new(i, size),
        );
        tb.start_process(p);
        tb.run();
    }
    let mean = |lat: &[SimDuration]| {
        lat.iter().map(|l| l.as_micros_f64()).sum::<f64>() / lat.len().max(1) as f64
    };
    match kind {
        PipelineKind::Star => {
            let d = tb.add_process(
                "star",
                cpu(0),
                ctrls[0],
                StarDriver::new(stages, size, iterations),
            );
            tb.start_process(d);
            tb.run();
            tb.with_service::<StarDriver, _>(d, |s| mean(&s.latencies))
        }
        PipelineKind::FastStar => {
            let d = tb.add_process(
                "faststar",
                cpu(0),
                ctrls[0],
                FastStarDriver::new(stages, size, iterations),
            );
            tb.start_process(d);
            tb.run();
            tb.with_service::<FastStarDriver, _>(d, |s| mean(&s.latencies))
        }
        PipelineKind::Chain => {
            let d = tb.add_process(
                "chain",
                cpu(0),
                ctrls[0],
                ChainDriver::new(stages, size, iterations),
            );
            tb.start_process(d);
            tb.run();
            tb.with_service::<ChainDriver, _>(d, |s| mean(&s.latencies))
        }
    }
}

// ---------------------------------------------------------------------
// Fig 9: the GPU service in isolation
// ---------------------------------------------------------------------

/// A client of the bare GPU service: upload batch images, run the kernel,
/// download results. Mirrors §6.3 (face-verification kernel on a remote
/// GPU).
pub struct GpuBenchClient {
    img: u64,
    batch: u64,
    requests: u64,
    in_flight: u64,
    // Bootstrap handles.
    alloc_req: Option<Cid>,
    load_req: Option<Cid>,
    // Per-slot artifacts.
    slots: Vec<GpuSlot>,
    building: usize,
    issued: u64,
    /// Completion stamps.
    pub done_at: Vec<SimTime>,
    issue_at: Vec<(usize, SimTime)>,
    /// Per-request latencies (µs).
    pub latencies: Vec<f64>,
}

struct GpuSlot {
    in_mem: Cid,
    out_mem: Cid,
    kernel_req: Cid,
    local_addr: u64,
    local_mem: Cid,
    busy: bool,
}

const TAG_GB: u64 = 0x7100;

impl GpuBenchClient {
    /// Creates the client.
    pub fn new(img: u64, batch: u64, requests: u64, in_flight: u64) -> Self {
        GpuBenchClient {
            img,
            batch,
            requests,
            in_flight: in_flight.max(1),
            alloc_req: None,
            load_req: None,
            slots: Vec::new(),
            building: 0,
            issued: 0,
            done_at: Vec::new(),
            issue_at: Vec::new(),
            latencies: Vec::new(),
        }
    }

    fn issue(&mut self, fos: &Fos<Self>) {
        if self.issued >= self.requests {
            return;
        }
        let Some(slot) = self.slots.iter().position(|s| !s.busy) else {
            return;
        };
        self.issued += 1;
        self.slots[slot].busy = true;
        self.issue_at.push((slot, fos.now()));
        let (local_mem, in_mem, kernel_req) = {
            let s = &self.slots[slot];
            (s.local_mem, s.in_mem, s.kernel_req)
        };
        let _ = local_mem;
        // Upload (third-party copy local → GPU), then invoke the kernel.
        fos.memory_copy(local_mem, in_mem, move |_s: &mut Self, res, fos| {
            debug_assert_eq!(res, SyscallResult::Ok);
            fos.request_invoke(kernel_req, |_, res, _| debug_assert!(res.is_ok()));
        });
    }
}

impl Service for GpuBenchClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        // gpu.init → per-context alloc/load → per-slot buffers + kernel.
        fos.kv_get("gpu.init", |_s, res, fos| {
            let init = res.cid();
            fos.request_create_new(
                TAG_GB,
                vec![imm(0)],
                vec![],
                move |_s: &mut Self, res, fos| {
                    let cont = res.cid();
                    fos.request_derive(init, vec![], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
                    });
                },
            );
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let phase = imm_at(&req.imms, 0).unwrap_or(u64::MAX);
        match phase {
            // init reply: [alloc, load]; start building slot 0.
            0 => {
                self.alloc_req = Some(req.caps[0]);
                self.load_req = Some(req.caps[1]);
                self.build_slot(fos);
            }
            // alloc input reply.
            1 => {
                let in_mem = req.caps[0];
                self.slots.push(GpuSlot {
                    in_mem,
                    out_mem: Cid(u32::MAX),
                    kernel_req: Cid(u32::MAX),
                    local_addr: 0,
                    local_mem: Cid(u32::MAX),
                    busy: false,
                });
                let alloc = self.alloc_req.unwrap();
                let batch = self.batch;
                fos.request_create_new(
                    TAG_GB,
                    vec![imm(2)],
                    vec![],
                    move |_s: &mut Self, res, fos| {
                        let cont = res.cid();
                        fos.request_derive(alloc, vec![imm(batch)], vec![cont], |_s, res, fos| {
                            fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
                        });
                    },
                );
            }
            // alloc output reply.
            2 => {
                let slot = self.slots.len() - 1;
                self.slots[slot].out_mem = req.caps[0];
                let load = self.load_req.unwrap();
                fos.request_create_new(
                    TAG_GB,
                    vec![imm(3)],
                    vec![],
                    move |_s: &mut Self, res, fos| {
                        let cont = res.cid();
                        fos.request_derive(
                            load,
                            vec![imm(FACE_VERIFY_KERNEL)],
                            vec![cont],
                            |_s, res, fos| {
                                fos.request_invoke(res.cid(), |_, res, _| {
                                    debug_assert!(res.is_ok())
                                });
                            },
                        );
                    },
                );
            }
            // kernel-load reply: derive the per-slot invoke Request.
            3 => {
                let slot = self.slots.len() - 1;
                let invoke_base = req.caps[0];
                let (batch, img) = (self.batch, self.img);
                let in_mem = self.slots[slot].in_mem;
                let out_mem = self.slots[slot].out_mem;
                // Local source buffer with the batch images (query+ref
                // halves both from the client here — the storage side is
                // measured separately in Figs 10–12).
                let local_addr = fos.mem_alloc(2 * batch * img);
                let mut data = Vec::new();
                for i in 0..batch {
                    data.extend(fractos_services::synth_face(i, img as usize, 1));
                }
                for i in 0..batch {
                    data.extend(fractos_services::synth_face(i, img as usize, 0));
                }
                fos.mem_write(local_addr, 0, &data).unwrap();
                self.slots[slot].local_addr = local_addr;
                fos.memory_create(
                    local_addr,
                    2 * batch * img,
                    Perms::RW,
                    move |s: &mut Self, res, fos| {
                        let SyscallResult::NewCid(local_mem) = res else {
                            return;
                        };
                        s.slots[slot].local_mem = local_mem;
                        // Success/error continuations + kernel Request.
                        fos.request_create_new(
                            TAG_GB,
                            vec![imm(10 + slot as u64)],
                            vec![],
                            move |_s: &mut Self, res, fos| {
                                let done = res.cid();
                                fos.request_create_new(
                                    TAG_GB,
                                    vec![imm(99)],
                                    vec![],
                                    move |_s: &mut Self, res, fos| {
                                        let err = res.cid();
                                        fos.request_derive(
                                            invoke_base,
                                            vec![imm(batch), imm(img)],
                                            vec![in_mem, out_mem, done, err],
                                            move |s: &mut Self, res, fos| {
                                                let SyscallResult::NewCid(kreq) = res else {
                                                    return;
                                                };
                                                s.slots[slot].kernel_req = kreq;
                                                s.building += 1;
                                                if (s.building as u64) < s.in_flight {
                                                    s.build_slot(fos);
                                                } else {
                                                    // All slots ready; go.
                                                    for _ in 0..s.in_flight {
                                                        s.issue(fos);
                                                    }
                                                }
                                            },
                                        );
                                    },
                                );
                            },
                        );
                    },
                );
            }
            99 => panic!("GPU kernel error"),
            // Kernel completion for slot (phase - 10).
            p if p >= 10 => {
                let slot = (p - 10) as usize;
                self.done_at.push(fos.now());
                if let Some(i) = self.issue_at.iter().position(|(sl, _)| *sl == slot) {
                    let (_, t0) = self.issue_at.swap_remove(i);
                    self.latencies
                        .push(fos.now().duration_since(t0).as_micros_f64());
                }
                self.slots[slot].busy = false;
                self.issue(fos);
            }
            _ => {}
        }
    }
}

impl GpuBenchClient {
    fn build_slot(&mut self, fos: &Fos<Self>) {
        let alloc = self.alloc_req.unwrap();
        let (batch, img) = (self.batch, self.img);
        fos.request_create_new(
            TAG_GB,
            vec![imm(1)],
            vec![],
            move |_s: &mut Self, res, fos| {
                let cont = res.cid();
                fos.request_derive(
                    alloc,
                    vec![imm(2 * batch * img)],
                    vec![cont],
                    |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
                    },
                );
            },
        );
    }
}

/// FractOS GPU-service result for Fig 9.
pub fn gpu_service_fractos(
    img: u64,
    batch: u64,
    requests: u64,
    in_flight: u64,
    snic: bool,
) -> (f64, f64) {
    let mut tb = Testbed::paper(31);
    let ctrls = tb.controllers_per_node(snic);
    let gpu_proc = tb.add_process(
        "gpu-adaptor",
        cpu(1),
        ctrls[1],
        GpuAdaptor::new(GpuParams::default(), gpu(1), "gpu")
            .with_kernel(FACE_VERIFY_KERNEL, fractos_services::FaceVerifyKernel),
    );
    tb.start_process(gpu_proc);
    tb.run();

    let client = tb.add_process(
        "client",
        cpu(2),
        ctrls[2],
        GpuBenchClient::new(img, batch, requests, in_flight),
    );
    tb.start_process(client);
    tb.run();
    tb.with_service::<GpuBenchClient, _>(client, |c| {
        assert_eq!(c.latencies.len() as u64, requests, "all kernels completed");
        let mean = c.latencies.iter().sum::<f64>() / c.latencies.len() as f64;
        let span = c
            .done_at
            .last()
            .unwrap()
            .duration_since(*c.done_at.first().unwrap())
            .as_micros_f64()
            .max(1.0);
        let tput = (c.done_at.len() as f64 - 1.0) / (span / 1e6);
        (mean, tput)
    })
}

/// rCUDA GPU-service result for Fig 9: `(mean latency µs, req/s)`.
pub fn gpu_service_rcuda(img: u64, batch: u64, requests: u64, in_flight: u64) -> (f64, f64) {
    use fractos_baselines::rcuda::{DriverCall, DriverReply, RcudaClient, RcudaServer};

    /// Minimal rCUDA driver running the interposed H2D → (runtime chatter)
    /// → launch → sync → D2H sequence, like the §6.5 baseline frontend.
    struct Driver {
        client: RcudaClient,
        img: u64,
        batch: u64,
        requests: u64,
        in_flight: u64,
        issued: u64,
        /// token → (request, phase, t0); phases 0 = H2D, 1..=C = chatter,
        /// C+1 = launch, C+2 = sync, C+3 = D2H.
        phase_of: std::collections::HashMap<u64, (u64, u8, SimTime)>,
        pub done_at: Vec<SimTime>,
        pub latencies: Vec<f64>,
    }
    const CHATTER: u8 = fractos_baselines::faceverify::INTERPOSITION_CALLS as u8;
    struct Go;
    impl Driver {
        fn issue(&mut self, ctx: &mut Ctx<'_>) {
            if self.issued >= self.requests {
                return;
            }
            let req = self.issued;
            self.issued += 1;
            let t0 = ctx.now();
            let data = vec![0x55u8; (2 * self.batch * self.img) as usize];
            let token = self.client.call(ctx, |reply| DriverCall::MemcpyH2D {
                offset: 0,
                data,
                reply,
            });
            self.phase_of.insert(token, (req, 0, t0));
        }
    }
    impl Actor for Driver {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            if msg.downcast_ref::<Go>().is_some() {
                for _ in 0..self.in_flight.min(self.requests) {
                    self.issue(ctx);
                }
                return;
            }
            let Ok(reply) = msg.downcast::<DriverReply>() else {
                return;
            };
            let Some((req, phase, t0)) = self.phase_of.remove(&reply.token) else {
                return;
            };
            let (batch, img) = (self.batch, self.img);
            match phase {
                // Interposition chatter after the H2D, then launch.
                p if p < CHATTER => {
                    let token = self
                        .client
                        .call(ctx, |reply| DriverCall::Synchronize { reply });
                    self.phase_of.insert(token, (req, p + 1, t0));
                }
                p if p == CHATTER => {
                    let token = self.client.call(ctx, |reply| DriverCall::Launch {
                        kernel: FACE_VERIFY_KERNEL,
                        params: vec![batch, img],
                        input: (0, 2 * batch * img),
                        out_offset: 2 * batch * img,
                        reply,
                    });
                    self.phase_of.insert(token, (req, CHATTER + 1, t0));
                }
                p if p == CHATTER + 1 => {
                    let token = self
                        .client
                        .call(ctx, |reply| DriverCall::Synchronize { reply });
                    self.phase_of.insert(token, (req, CHATTER + 2, t0));
                }
                p if p == CHATTER + 2 => {
                    let token = self.client.call(ctx, |reply| DriverCall::MemcpyD2H {
                        offset: 2 * batch * img,
                        len: batch,
                        reply,
                    });
                    self.phase_of.insert(token, (req, CHATTER + 3, t0));
                }
                _ => {
                    self.latencies
                        .push(ctx.now().duration_since(t0).as_micros_f64());
                    self.done_at.push(ctx.now());
                    self.issue(ctx);
                }
            }
        }
    }

    let mut sim = paper_runtime(32);
    let fabric = Shared::new(Fabric::new(Topology::paper_testbed(), NetParams::paper()));
    let server_ep = fractos_net::Endpoint::cpu(NodeId(1));
    let server = sim.add_actor_on(
        1,
        "rcuda",
        Box::new(
            RcudaServer::new(server_ep, fabric.clone(), GpuParams::default(), 64 << 20)
                .with_kernel(FACE_VERIFY_KERNEL, fractos_services::FaceVerifyKernel),
        ),
    );
    let driver = sim.add_actor_on(
        2,
        "driver",
        Box::new(Driver {
            client: RcudaClient::new(
                fractos_net::Endpoint::cpu(NodeId(2)),
                Peer {
                    actor: server,
                    endpoint: server_ep,
                },
                fabric.clone(),
            ),
            img,
            batch,
            requests,
            in_flight: in_flight.max(1),
            issued: 0,
            phase_of: std::collections::HashMap::new(),
            done_at: Vec::new(),
            latencies: Vec::new(),
        }),
    );
    sim.post(SimDuration::ZERO, driver, Go);
    sim.run();
    sim.with_actor::<Driver, _>(driver, |d| {
        assert_eq!(d.latencies.len() as u64, requests);
        let mean = d.latencies.iter().sum::<f64>() / d.latencies.len() as f64;
        let span = d
            .done_at
            .last()
            .unwrap()
            .duration_since(*d.done_at.first().unwrap())
            .as_micros_f64()
            .max(1.0);
        let tput = (d.done_at.len() as f64 - 1.0) / (span / 1e6);
        (mean, tput)
    })
}

// ---------------------------------------------------------------------
// Figs 10–11: the storage stack
// ---------------------------------------------------------------------

/// FractOS storage client: create a file, then issue timed I/Os.
///
/// Works against both the mediated/composed FS handles (two Requests for
/// the whole file) and DAX handles (one read + one write Request per
/// extent): with DAX it selects the extent's Requests and uses
/// extent-local offsets, exactly like a DAX-aware application.
struct StorageClient {
    io: u64,
    count: u64,
    in_flight: u64,
    write: bool,
    seq: bool,
    /// Mediated: `[read, write]`. DAX: `[r0, w0, r1, w1, ...]`.
    handles: Vec<Cid>,
    extent_size: u64,
    bufs: Vec<(u64, Cid)>,
    issued: u64,
    issue_at: Vec<(u64, SimTime)>,
    pub latencies: Vec<f64>,
    pub done_at: Vec<SimTime>,
    rng_state: u64,
}

const TAG_SB: u64 = 0x7200;
/// File size used by the storage benchmarks (many extents, so that random
/// access defeats caches like the paper's 500 GB device does).
pub const STORAGE_FILE: u64 = 128 << 20;

impl StorageClient {
    fn new(io: u64, count: u64, in_flight: u64, write: bool, seq: bool) -> Self {
        StorageClient {
            io,
            count,
            in_flight: in_flight.max(1),
            write,
            seq,
            handles: Vec::new(),
            extent_size: 0,
            bufs: Vec::new(),
            issued: 0,
            issue_at: Vec::new(),
            latencies: Vec::new(),
            done_at: Vec::new(),
            rng_state: 0xDEAD_BEEF,
        }
    }

    fn next_offset(&mut self) -> u64 {
        let slots = STORAGE_FILE / self.io;
        if self.seq {
            (self.issued % slots) * self.io
        } else {
            self.rng_state = self
                .rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.rng_state >> 16) % slots * self.io
        }
    }

    fn issue(&mut self, fos: &Fos<Self>) {
        if self.issued >= self.count {
            return;
        }
        let Some((addr, buf)) = self.bufs.pop() else {
            return;
        };
        let seq_no = self.issued;
        let offset = self.next_offset();
        self.issued += 1;
        if self.write {
            fos.mem_write(addr, 0, &vec![(seq_no % 256) as u8; self.io as usize])
                .unwrap();
        }
        self.issue_at.push((seq_no, fos.now()));
        // Mediated handles take file offsets; DAX handles are per extent.
        let dax = self.handles.len() > 2;
        let (req, op_offset) = if dax {
            let ext = (offset / self.extent_size) as usize;
            let idx = 2 * ext + usize::from(self.write);
            (self.handles[idx], offset % self.extent_size)
        } else {
            (self.handles[usize::from(self.write)], offset)
        };
        let io = self.io;
        fos.request_create_new(
            TAG_SB,
            vec![imm(1), imm(seq_no), imm(addr), imm(buf.0 as u64)],
            vec![],
            move |_s: &mut Self, res, fos| {
                let ok = res.cid();
                fos.request_create_new(
                    TAG_SB,
                    vec![imm(9)],
                    vec![],
                    move |_s: &mut Self, res, fos| {
                        let err = res.cid();
                        fos.request_derive(
                            req,
                            vec![imm(op_offset), imm(io)],
                            vec![buf, ok, err],
                            |_s, res, fos| {
                                fos.request_invoke(res.cid(), |_, res, _| {
                                    debug_assert!(res.is_ok())
                                });
                            },
                        );
                    },
                );
            },
        );
    }
}

impl Service for StorageClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("fs.create", |s: &mut Self, res, fos| {
            let create = res.cid();
            let _ = s;
            fos.request_create_new(
                TAG_SB,
                vec![imm(0)],
                vec![],
                move |_s: &mut Self, res, fos| {
                    let cont = res.cid();
                    fos.request_derive(
                        create,
                        vec![imm(STORAGE_FILE)],
                        vec![cont],
                        |_s, res, fos| {
                            fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
                        },
                    );
                },
            );
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        match imm_at(&req.imms, 0).unwrap_or(u64::MAX) {
            0 => {
                self.handles = req.caps.clone();
                self.extent_size = imm_at(&req.imms, 2).unwrap_or(u64::MAX);
                // Register one buffer per in-flight slot, then go.
                let n = self.in_flight;
                let io = self.io;
                fn mk(s: &mut StorageClient, left: u64, io: u64, fos: &Fos<StorageClient>) {
                    if left == 0 {
                        for _ in 0..s.in_flight {
                            s.issue(fos);
                        }
                        return;
                    }
                    let addr = fos.mem_alloc(io);
                    fos.memory_create(
                        addr,
                        io,
                        Perms::RW,
                        move |s: &mut StorageClient, res, fos| {
                            let SyscallResult::NewCid(cid) = res else {
                                return;
                            };
                            s.bufs.push((addr, cid));
                            mk(s, left - 1, io, fos);
                        },
                    );
                }
                mk(self, n, io, fos);
            }
            1 => {
                // I/O complete.
                let seq_no = imm_at(&req.imms, 1).unwrap();
                let addr = imm_at(&req.imms, 2).unwrap();
                let buf_cid = imm_at(&req.imms, 3).unwrap();
                if let Some(i) = self.issue_at.iter().position(|(s, _)| *s == seq_no) {
                    let (_, t0) = self.issue_at.swap_remove(i);
                    self.latencies
                        .push(fos.now().duration_since(t0).as_micros_f64());
                }
                self.done_at.push(fos.now());
                self.bufs.push((addr, Cid(buf_cid as u32)));
                self.issue(fos);
            }
            9 => panic!("storage benchmark I/O error"),
            _ => {}
        }
    }
}

/// FractOS storage run (Figs 10–11): returns `(mean µs, MB/s)`.
pub fn storage_fractos(
    mode: FsMode,
    io: u64,
    count: u64,
    in_flight: u64,
    write: bool,
    seq: bool,
    snic: bool,
) -> (f64, f64) {
    storage_run(mode, io, count, in_flight, write, seq, snic, false)
}

/// §6.4 "Disaggregated Baseline": the same FractOS FS service over an
/// in-kernel NVMe-oF block tier whose page cache absorbs writes and
/// read-ahead accelerates sequential reads. Returns `(mean µs, MB/s)`.
pub fn storage_disagg_baseline(
    io: u64,
    count: u64,
    in_flight: u64,
    write: bool,
    seq: bool,
) -> (f64, f64) {
    storage_run(
        FsMode::Mediated,
        io,
        count,
        in_flight,
        write,
        seq,
        false,
        true,
    )
}

#[allow(clippy::too_many_arguments)]
fn storage_run(
    mode: FsMode,
    io: u64,
    count: u64,
    in_flight: u64,
    write: bool,
    seq: bool,
    snic: bool,
    kernel_cache: bool,
) -> (f64, f64) {
    let mut tb = Testbed::paper(41);
    if std::env::var("FRACTOS_PROBE_NOPROC").is_ok() {
        tb.fabric.borrow_mut().params_mut().memcopy_proc_cpu = fractos_sim::SimDuration::ZERO;
    }
    let ctrls = tb.controllers_per_node(snic);
    // SSD + adaptor on node 0, FS service on node 1, client on node 2
    // (two-tiered remote storage, §6.4–§6.5).
    let blk_adaptor = if kernel_cache {
        BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk").with_kernel_cache()
    } else {
        BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk")
    };
    let blk = tb.add_process("blk", cpu(0), ctrls[0], blk_adaptor);
    tb.start_process(blk);
    tb.run();
    let fs = tb.add_process("fs", cpu(1), ctrls[1], FsService::new(mode, "fs", "blk"));
    tb.start_process(fs);
    tb.run();
    let client = tb.add_process(
        "client",
        cpu(2),
        ctrls[2],
        StorageClient::new(io, count, in_flight, write, seq),
    );
    tb.start_process(client);
    tb.run();
    tb.with_service::<StorageClient, _>(client, |c| {
        assert_eq!(c.latencies.len() as u64, count, "all I/Os completed");
        let mean = c.latencies.iter().sum::<f64>() / c.latencies.len() as f64;
        // Steady-state throughput: skip the ramp-up burst of the first
        // `in_flight` completions.
        let skip = (in_flight as usize).min(c.done_at.len() - 1);
        let span = c
            .done_at
            .last()
            .unwrap()
            .duration_since(c.done_at[skip])
            .as_micros_f64()
            .max(1.0);
        let tput = ((c.done_at.len() - 1 - skip) as f64 * io as f64) / (span / 1e6) / 1e6;
        (mean, tput)
    })
}

/// Disaggregated-baseline storage run (kernel FS + NVMe-oF): returns
/// `(mean µs, MB/s)`.
pub fn storage_baseline(io: u64, count: u64, in_flight: u64, write: bool, seq: bool) -> (f64, f64) {
    struct RawClient {
        endpoint: fractos_net::Endpoint,
        server: Peer,
        fabric: Shared<Fabric>,
        io: u64,
        count: u64,
        in_flight: u64,
        write: bool,
        seq: bool,
        issued: u64,
        next_token: u64,
        issue_at: std::collections::HashMap<u64, SimTime>,
        pub latencies: Vec<f64>,
        pub done_at: Vec<SimTime>,
        rng_state: u64,
    }
    struct Go;
    impl RawClient {
        fn next_offset(&mut self) -> u64 {
            let slots = STORAGE_FILE / self.io;
            if self.seq {
                (self.issued % slots) * self.io
            } else {
                self.rng_state = self
                    .rng_state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (self.rng_state >> 16) % slots * self.io
            }
        }
        fn issue(&mut self, ctx: &mut Ctx<'_>) {
            if self.issued >= self.count {
                return;
            }
            let offset = self.next_offset();
            self.issued += 1;
            let token = self.next_token;
            self.next_token += 1;
            self.issue_at.insert(token, ctx.now());
            let me = Peer {
                actor: ctx.self_id(),
                endpoint: self.endpoint,
            };
            let fabric = self.fabric.clone();
            let op = if self.write {
                NfsOp::Write {
                    offset,
                    data: vec![0xEE; self.io as usize],
                    reply: (me, token),
                }
            } else {
                NfsOp::Read {
                    offset,
                    len: self.io,
                    reply: (me, token),
                }
            };
            let size = if self.write { self.io } else { 64 };
            raw_send(
                ctx,
                &fabric,
                self.endpoint,
                self.server,
                size,
                if self.write {
                    TrafficClass::Data
                } else {
                    TrafficClass::Control
                },
                fractos_baselines::storage::NFS_CLIENT_OVERHEAD,
                op,
            );
        }
    }
    impl Actor for RawClient {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            if msg.downcast_ref::<Go>().is_some() {
                for _ in 0..self.in_flight.min(self.count) {
                    self.issue(ctx);
                }
                return;
            }
            if let Ok(reply) = msg.downcast::<NfsReply>() {
                if let Some(t0) = self.issue_at.remove(&reply.token) {
                    self.latencies
                        .push(ctx.now().duration_since(t0).as_micros_f64());
                }
                self.done_at.push(ctx.now());
                self.issue(ctx);
            }
        }
    }

    let mut sim = paper_runtime(42);
    let fabric = Shared::new(Fabric::new(Topology::paper_testbed(), NetParams::paper()));
    // Target on node 0, kernel-FS server on node 1, client on node 2.
    let target_ep = fractos_net::Endpoint::cpu(NodeId(0));
    let target = sim.add_actor_on(
        0,
        "nvmeof",
        Box::new(NvmeOfTarget::new(
            target_ep,
            fabric.clone(),
            NvmeParams::default(),
            STORAGE_FILE,
        )),
    );
    let nfs_ep = fractos_net::Endpoint::cpu(NodeId(1));
    let nfs = sim.add_actor_on(
        1,
        "nfs",
        Box::new(NfsServer::new(
            nfs_ep,
            fabric.clone(),
            Peer {
                actor: target,
                endpoint: target_ep,
            },
        )),
    );
    let client = sim.add_actor_on(
        2,
        "client",
        Box::new(RawClient {
            endpoint: fractos_net::Endpoint::cpu(NodeId(2)),
            server: Peer {
                actor: nfs,
                endpoint: nfs_ep,
            },
            fabric: fabric.clone(),
            io,
            count,
            in_flight: in_flight.max(1),
            write,
            seq,
            issued: 0,
            next_token: 0,
            issue_at: std::collections::HashMap::new(),
            latencies: Vec::new(),
            done_at: Vec::new(),
            rng_state: 0xDEAD_BEEF,
        }),
    );
    sim.post(SimDuration::ZERO, client, Go);
    sim.run();
    sim.with_actor::<RawClient, _>(client, |c| {
        assert_eq!(c.latencies.len() as u64, count);
        let mean = c.latencies.iter().sum::<f64>() / c.latencies.len() as f64;
        let skip = (in_flight as usize).min(c.done_at.len() - 1);
        let span = c
            .done_at
            .last()
            .unwrap()
            .duration_since(c.done_at[skip])
            .as_micros_f64()
            .max(1.0);
        let tput = ((c.done_at.len() - 1 - skip) as f64 * io as f64) / (span / 1e6) / 1e6;
        (mean, tput)
    })
}

/// Debug helper: traced 2-in-flight mediated run (temporary).
#[doc(hidden)]
pub fn storage_fractos_traced() {
    let io = 1u64 << 20;
    let mut tb = Testbed::paper(41);
    let ctrls = tb.controllers_per_node(false);
    let blk = tb.add_process(
        "blk",
        cpu(0),
        ctrls[0],
        BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk"),
    );
    tb.start_process(blk);
    tb.run();
    let fs = tb.add_process(
        "fs",
        cpu(1),
        ctrls[1],
        FsService::new(FsMode::Mediated, "fs", "blk"),
    );
    tb.start_process(fs);
    tb.run();
    tb.sim.enable_trace();
    let client = tb.add_process(
        "client",
        cpu(2),
        ctrls[2],
        StorageClient::new(io, 4, 2, false, false),
    );
    tb.start_process(client);
    tb.run();
    for e in tb.sim.take_trace() {
        println!("{:>12} {}", e.time.to_string(), e.label);
    }
}
