#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Reproduction harness for every table and figure of the paper's §6.
//!
//! Each bench target under `benches/` regenerates one artifact:
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `table3_null_op` | Table 3: null-op latency, CPU vs sNIC |
//! | `fig5_memory_copy` | Fig 5: `memory_copy` throughput vs size |
//! | `fig6_request_invoke` | Fig 6: Request-invocation RPC latency |
//! | `fig7_capability` | Fig 7: delegation and revocation costs |
//! | `fig8_pipeline` | Fig 8: star / fast-star / chain pipelines |
//! | `fig9_gpu_service` | Fig 9: remote-GPU latency and throughput |
//! | `fig10_storage_latency` | Fig 10: storage read/write latency |
//! | `fig11_storage_throughput` | Fig 11: storage throughput |
//! | `fig12_faceverify_latency` | Fig 12: end-to-end latency |
//! | `fig13_faceverify_throughput` | Fig 13: end-to-end throughput |
//! | `fig2_message_complexity` | Fig 2 / §2.1: message complexity |
//! | `headline_claims` | §1/§6: 47% faster, 3× less traffic |
//! | `micro_datastructures` | Criterion: real data-structure wall time |
//!
//! Run all with `cargo bench --workspace`, or one with
//! `cargo bench -p fractos-bench --bench <target>`.

pub mod apps;
pub mod micro;
pub mod report;
pub mod scripts;
