//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! this minimal replacement implementing the subset the FractOS benches
//! use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. It measures wall-clock
//! time over a fixed number of timed samples (after warm-up) and prints
//! mean/median/min per iteration. There is no statistical regression
//! analysis — the numbers are indicative, not criterion-grade.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Hint for how much setup output to batch; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input: batch many iterations per sample.
    SmallInput,
    /// Large per-iteration input: one iteration per sample.
    LargeInput,
    /// Per-iteration input of unknown size.
    PerIteration,
}

/// Number of timed samples per benchmark.
const SAMPLES: usize = 30;
/// Warm-up iterations before timing starts.
const WARMUP_ITERS: usize = 3;

/// Handed to the closure of [`Criterion::bench_function`]; runs the
/// measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over repeated calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..SAMPLES {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Runs one named benchmark and prints its timing summary.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(SAMPLES),
        };
        f(&mut b);
        let mut ns: Vec<u128> = b.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        if ns.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        let mean = ns.iter().sum::<u128>() / ns.len() as u128;
        let median = ns[ns.len() / 2];
        let min = ns[0];
        println!(
            "{name:<40} mean {:>12} median {:>12} min {:>12}",
            fmt_ns(mean),
            fmt_ns(median),
            fmt_ns(min)
        );
        self
    }

    /// Criterion's CLI entry point; a no-op here.
    pub fn final_summary(&mut self) {}
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group: a function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        c.bench_function("vec_build", |b| {
            b.iter_batched(
                || 128usize,
                |n| (0..n).collect::<Vec<_>>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn group_runs() {
        benches();
    }
}
