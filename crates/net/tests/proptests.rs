//! Property tests for the fabric model.

use proptest::prelude::*;

use fractos_net::{Endpoint, Fabric, NetParams, NodeId, Topology, TrafficClass};
use fractos_sim::{SimRng, SimTime};

fn fabric() -> Fabric {
    Fabric::new(Topology::paper_testbed(), NetParams::paper())
}

fn endpoint(idx: u8) -> Endpoint {
    // The paper testbed's valid endpoints.
    match idx % 6 {
        0 => Endpoint::cpu(NodeId(0)),
        1 => Endpoint::cpu(NodeId(1)),
        2 => Endpoint::cpu(NodeId(2)),
        3 => Endpoint::snic(NodeId(0)),
        4 => Endpoint::gpu(NodeId(1)),
        _ => Endpoint::nvme(NodeId(0)),
    }
}

proptest! {
    /// Delivery delay is never below the base propagation latency of the
    /// route.
    #[test]
    fn delay_at_least_base_latency(
        sends in prop::collection::vec((any::<u8>(), any::<u8>(), 0u64..1_000_000, 0u64..10_000_000), 1..60),
    ) {
        let mut f = fabric();
        let mut rng = SimRng::new(7);
        for (s, d, size, t_ns) in sends {
            let (src, dst) = (endpoint(s), endpoint(d));
            let base = f.base_latency(src, dst);
            let delay = f.send(
                SimTime::from_nanos(t_ns),
                &mut rng,
                src,
                dst,
                size,
                TrafficClass::Data,
            );
            prop_assert!(delay >= base, "delay {delay} < base {base}");
        }
    }

    /// Widely spaced identical sends observe identical delays (links fully
    /// drain between them).
    #[test]
    fn spaced_sends_are_reproducible(size in 0u64..4_000_000, s in any::<u8>(), d in any::<u8>()) {
        let mut f = fabric();
        let mut rng = SimRng::new(9);
        let (src, dst) = (endpoint(s), endpoint(d));
        let d1 = f.send(SimTime::from_nanos(0), &mut rng, src, dst, size, TrafficClass::Data);
        let d2 = f.send(
            SimTime::from_nanos(10_000_000_000),
            &mut rng,
            src,
            dst,
            size,
            TrafficClass::Data,
        );
        prop_assert_eq!(d1, d2);
    }

    /// Bulk transfers on the same route never finish out of order when
    /// issued in time order at the same instant spacing.
    #[test]
    fn same_route_bulk_is_fifo(sizes in prop::collection::vec(8_193u64..1_000_000, 2..12)) {
        let mut f = fabric();
        let mut rng = SimRng::new(11);
        let src = Endpoint::cpu(NodeId(0));
        let dst = Endpoint::cpu(NodeId(1));
        let mut last_arrival = SimTime::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            let t = SimTime::from_nanos(i as u64); // virtually simultaneous
            let delay = f.send(t, &mut rng, src, dst, size, TrafficClass::Data);
            let arrival = t + delay;
            prop_assert!(
                arrival >= last_arrival,
                "bulk reordering: {arrival} before {last_arrival}"
            );
            last_arrival = arrival;
        }
    }

    /// Aggregate goodput through one link never exceeds its line rate
    /// (checked over a burst of large transfers; MTU-sized messages are
    /// exempt by design — packet interleaving).
    #[test]
    fn bulk_respects_line_rate(sizes in prop::collection::vec(65_536u64..2_000_000, 2..10)) {
        let mut f = fabric();
        let mut rng = SimRng::new(13);
        let src = Endpoint::cpu(NodeId(0));
        let dst = Endpoint::cpu(NodeId(1));
        let total: u64 = sizes.iter().sum();
        let mut finish = SimTime::ZERO;
        for &size in &sizes {
            let d = f.send(SimTime::ZERO, &mut rng, src, dst, size, TrafficClass::Data);
            finish = finish.max(SimTime::ZERO + d);
        }
        let goodput = total as f64 / finish.as_secs_f64();
        // 5% tolerance for cut-through pipelining of header bytes.
        prop_assert!(
            goodput <= 1.25e9 * 1.05,
            "goodput {goodput:.3e} exceeds the 10 Gbps line rate"
        );
    }

    /// Traffic statistics account every message exactly once.
    #[test]
    fn stats_count_every_send(
        sends in prop::collection::vec((any::<u8>(), any::<u8>(), 0u64..100_000), 1..50),
    ) {
        let mut f = fabric();
        let mut rng = SimRng::new(17);
        let mut expect_network = 0u64;
        let mut expect_bytes = 0u64;
        for (s, d, size) in sends {
            let (src, dst) = (endpoint(s), endpoint(d));
            f.send(SimTime::ZERO, &mut rng, src, dst, size, TrafficClass::Data);
            if src.node != dst.node {
                expect_network += 1;
                expect_bytes += size;
            }
        }
        prop_assert_eq!(f.stats().network_msgs(), expect_network);
        prop_assert_eq!(f.stats().network_bytes(), expect_bytes);
    }
}

/// Scale guard for the link scheduler: thousands of bulk reservations on
/// one link must not blow up (the interval list prunes and stays flat).
#[test]
fn link_schedule_scales() {
    let mut f = fabric();
    let mut rng = SimRng::new(23);
    let src = Endpoint::cpu(NodeId(0));
    let dst = Endpoint::cpu(NodeId(1));
    let t0 = std::time::Instant::now();
    for i in 0..5_000u64 {
        f.send(
            SimTime::from_nanos(i * 1_000),
            &mut rng,
            src,
            dst,
            64 * 1024,
            TrafficClass::Data,
        );
    }
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "link scheduler too slow: {:?}",
        t0.elapsed()
    );
}
