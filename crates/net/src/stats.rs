//! Traffic accounting.
//!
//! The headline FractOS claims are about *traffic*: 3× fewer bytes on the
//! network, 1.6× fewer messages, 8 vs 5 control messages for the inference
//! pipeline (Fig 2, §6.5). The fabric therefore counts every message it
//! carries, per `(source node, destination node, class)`, and separately for
//! the shared network vs intra-node buses. Benches snapshot and diff these
//! counters around measurement phases.

use std::collections::BTreeMap;

use crate::topology::{Endpoint, NodeId};

/// Broad classification of a message for accounting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficClass {
    /// Small control-plane messages: syscalls, RPC invocations, completions,
    /// capability operations.
    Control,
    /// Bulk data-plane transfers: memory copies, RDMA payloads, file
    /// contents.
    Data,
}

/// Which transport carried a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Medium {
    /// The shared, switched data-center network (cross-node).
    Network,
    /// NIC loopback within one node.
    Loopback,
    /// A PCIe crossing within one node.
    Pcie,
}

/// Message/byte counters for one `(src, dst, class)` flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowCounter {
    /// Number of messages.
    pub msgs: u64,
    /// Total payload bytes.
    pub bytes: u64,
}

/// Injected-fault counters for one directed `(src, dst)` link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounter {
    /// Messages dropped by the fault plan.
    pub dropped: u64,
    /// Deliveries slowed by an active degradation window.
    pub degraded: u64,
    /// Data-class payloads bit-flipped in flight.
    pub corrupted: u64,
}

/// Injected-fault counters for one device endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceFaultCounter {
    /// Operations failed outright (media error / launch failure).
    pub failed: u64,
    /// Writes torn (only a prefix committed).
    pub torn: u64,
    /// Outputs corrupted (bit flip).
    pub corrupted: u64,
    /// Operations stretched by a latency spike.
    pub spiked: u64,
}

/// Static-verification counters (PR 5): how many Request plans the
/// Controllers verified at submission and at admission (defense in depth),
/// and how many were rejected before dispatch. Verification is free in
/// simulated time, so these never influence latency — they only prove the
/// checks ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyCounter {
    /// Plans verified at the submitting Process's Controller.
    pub submission_checks: u64,
    /// Plans verified again at the owner Controller on admission.
    pub admission_checks: u64,
    /// Plans (or syscalls) rejected with a typed `VerifyError`.
    pub rejects: u64,
}

/// All traffic counters for a fabric.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    flows: BTreeMap<(NodeId, NodeId, TrafficClass), FlowCounter>,
    by_medium: BTreeMap<(Medium, TrafficClass), FlowCounter>,
    faults: BTreeMap<(NodeId, NodeId), FaultCounter>,
    device_faults: BTreeMap<Endpoint, DeviceFaultCounter>,
    verify: VerifyCounter,
}

impl TrafficStats {
    /// An empty set of counters.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Records one message.
    pub fn record(
        &mut self,
        src: NodeId,
        dst: NodeId,
        class: TrafficClass,
        medium: Medium,
        bytes: u64,
    ) {
        let flow = self.flows.entry((src, dst, class)).or_default();
        flow.msgs += 1;
        flow.bytes += bytes;
        let med = self.by_medium.entry((medium, class)).or_default();
        med.msgs += 1;
        med.bytes += bytes;
    }

    /// Records one message dropped by the fault plan on `src → dst`.
    pub fn record_drop(&mut self, src: NodeId, dst: NodeId) {
        self.faults.entry((src, dst)).or_default().dropped += 1;
    }

    /// Records one delivery slowed by a degradation window on `src → dst`.
    pub fn record_degraded(&mut self, src: NodeId, dst: NodeId) {
        self.faults.entry((src, dst)).or_default().degraded += 1;
    }

    /// Records one data-class payload bit-flipped in flight on `src → dst`.
    pub fn record_corrupted(&mut self, src: NodeId, dst: NodeId) {
        self.faults.entry((src, dst)).or_default().corrupted += 1;
    }

    /// Records one plan verification at the submitting Process's Controller.
    pub fn record_verify_submission(&mut self) {
        self.verify.submission_checks += 1;
    }

    /// Records one plan verification at the owner Controller on admission.
    pub fn record_verify_admission(&mut self) {
        self.verify.admission_checks += 1;
    }

    /// Records one plan or syscall rejected by static verification.
    pub fn record_verify_reject(&mut self) {
        self.verify.rejects += 1;
    }

    /// Static-verification counters.
    pub fn verify_counter(&self) -> VerifyCounter {
        self.verify
    }

    /// Records one injected device fault on `device`.
    pub fn record_device_fault(
        &mut self,
        device: Endpoint,
        f: impl FnOnce(&mut DeviceFaultCounter),
    ) {
        f(self.device_faults.entry(device).or_default());
    }

    /// Injected-fault counters for one device endpoint.
    pub fn device_faults_at(&self, device: Endpoint) -> DeviceFaultCounter {
        self.device_faults.get(&device).copied().unwrap_or_default()
    }

    /// Iterates over all per-device injected-fault counters.
    pub fn device_fault_devices(&self) -> impl Iterator<Item = (&Endpoint, &DeviceFaultCounter)> {
        self.device_faults.iter()
    }

    /// Total injected device faults (all classes, all devices).
    pub fn total_device_faults(&self) -> u64 {
        self.device_faults
            .values()
            .map(|c| c.failed + c.torn + c.corrupted + c.spiked)
            .sum()
    }

    /// Total data-class payloads corrupted in flight.
    pub fn total_corrupted(&self) -> u64 {
        self.faults.values().map(|c| c.corrupted).sum()
    }

    /// Injected-fault counters for one directed link.
    pub fn link_faults(&self, src: NodeId, dst: NodeId) -> FaultCounter {
        self.faults.get(&(src, dst)).copied().unwrap_or_default()
    }

    /// Iterates over all per-link fault counters.
    pub fn fault_links(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &FaultCounter)> {
        self.faults.iter()
    }

    /// Total messages dropped by the fault plan.
    pub fn total_dropped(&self) -> u64 {
        self.faults.values().map(|c| c.dropped).sum()
    }

    /// Total deliveries slowed by degradation windows.
    pub fn total_degraded(&self) -> u64 {
        self.faults.values().map(|c| c.degraded).sum()
    }

    /// Counter for one `(src, dst, class)` flow.
    pub fn flow(&self, src: NodeId, dst: NodeId, class: TrafficClass) -> FlowCounter {
        self.flows
            .get(&(src, dst, class))
            .copied()
            .unwrap_or_default()
    }

    /// Total messages carried by the shared network (both classes).
    pub fn network_msgs(&self) -> u64 {
        self.medium_total(Medium::Network).msgs
    }

    /// Total bytes carried by the shared network (both classes).
    pub fn network_bytes(&self) -> u64 {
        self.medium_total(Medium::Network).bytes
    }

    /// Network control-plane messages.
    pub fn network_control_msgs(&self) -> u64 {
        self.by_medium
            .get(&(Medium::Network, TrafficClass::Control))
            .map_or(0, |c| c.msgs)
    }

    /// Network data-plane messages ("data transfers" in Fig 2).
    pub fn network_data_msgs(&self) -> u64 {
        self.by_medium
            .get(&(Medium::Network, TrafficClass::Data))
            .map_or(0, |c| c.msgs)
    }

    /// Network data-plane bytes.
    pub fn network_data_bytes(&self) -> u64 {
        self.by_medium
            .get(&(Medium::Network, TrafficClass::Data))
            .map_or(0, |c| c.bytes)
    }

    /// Aggregate counter for one medium over both classes.
    pub fn medium_total(&self, medium: Medium) -> FlowCounter {
        let mut total = FlowCounter::default();
        for class in [TrafficClass::Control, TrafficClass::Data] {
            if let Some(c) = self.by_medium.get(&(medium, class)) {
                total.msgs += c.msgs;
                total.bytes += c.bytes;
            }
        }
        total
    }

    /// Iterates over all per-flow counters.
    pub fn flows(&self) -> impl Iterator<Item = (&(NodeId, NodeId, TrafficClass), &FlowCounter)> {
        self.flows.iter()
    }

    /// Returns the counters accumulated since `baseline` was captured.
    ///
    /// `baseline` must be an earlier snapshot of the same stats object.
    pub fn since(&self, baseline: &TrafficStats) -> TrafficStats {
        let mut diff = TrafficStats::new();
        for (key, cur) in &self.flows {
            let base = baseline.flows.get(key).copied().unwrap_or_default();
            let d = FlowCounter {
                msgs: cur.msgs - base.msgs,
                bytes: cur.bytes - base.bytes,
            };
            if d != FlowCounter::default() {
                diff.flows.insert(*key, d);
            }
        }
        for (key, cur) in &self.by_medium {
            let base = baseline.by_medium.get(key).copied().unwrap_or_default();
            let d = FlowCounter {
                msgs: cur.msgs - base.msgs,
                bytes: cur.bytes - base.bytes,
            };
            if d != FlowCounter::default() {
                diff.by_medium.insert(*key, d);
            }
        }
        for (key, cur) in &self.faults {
            let base = baseline.faults.get(key).copied().unwrap_or_default();
            let d = FaultCounter {
                dropped: cur.dropped - base.dropped,
                degraded: cur.degraded - base.degraded,
                corrupted: cur.corrupted - base.corrupted,
            };
            if d != FaultCounter::default() {
                diff.faults.insert(*key, d);
            }
        }
        for (key, cur) in &self.device_faults {
            let base = baseline.device_faults.get(key).copied().unwrap_or_default();
            let d = DeviceFaultCounter {
                failed: cur.failed - base.failed,
                torn: cur.torn - base.torn,
                corrupted: cur.corrupted - base.corrupted,
                spiked: cur.spiked - base.spiked,
            };
            if d != DeviceFaultCounter::default() {
                diff.device_faults.insert(*key, d);
            }
        }
        diff.verify = VerifyCounter {
            submission_checks: self.verify.submission_checks - baseline.verify.submission_checks,
            admission_checks: self.verify.admission_checks - baseline.verify.admission_checks,
            rejects: self.verify.rejects - baseline.verify.rejects,
        };
        diff
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.flows.clear();
        self.by_medium.clear();
        self.faults.clear();
        self.device_faults.clear();
        self.verify = VerifyCounter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    #[test]
    fn records_per_flow_and_medium() {
        let mut s = TrafficStats::new();
        s.record(N0, N1, TrafficClass::Control, Medium::Network, 64);
        s.record(N0, N1, TrafficClass::Data, Medium::Network, 4096);
        s.record(N0, N0, TrafficClass::Control, Medium::Loopback, 64);

        assert_eq!(s.flow(N0, N1, TrafficClass::Control).msgs, 1);
        assert_eq!(s.flow(N0, N1, TrafficClass::Data).bytes, 4096);
        assert_eq!(s.network_msgs(), 2);
        assert_eq!(s.network_bytes(), 4160);
        assert_eq!(s.network_control_msgs(), 1);
        assert_eq!(s.network_data_msgs(), 1);
        assert_eq!(s.medium_total(Medium::Loopback).msgs, 1);
    }

    #[test]
    fn since_diffs_counters() {
        let mut s = TrafficStats::new();
        s.record(N0, N1, TrafficClass::Data, Medium::Network, 100);
        let snapshot = s.clone();
        s.record(N0, N1, TrafficClass::Data, Medium::Network, 50);
        s.record(N1, N0, TrafficClass::Control, Medium::Network, 8);

        let d = s.since(&snapshot);
        assert_eq!(d.flow(N0, N1, TrafficClass::Data).msgs, 1);
        assert_eq!(d.flow(N0, N1, TrafficClass::Data).bytes, 50);
        assert_eq!(d.network_msgs(), 2);
    }

    #[test]
    fn reset_clears() {
        let mut s = TrafficStats::new();
        s.record(N0, N1, TrafficClass::Data, Medium::Network, 100);
        s.reset();
        assert_eq!(s.network_msgs(), 0);
    }

    #[test]
    fn unknown_flow_is_zero() {
        let s = TrafficStats::new();
        assert_eq!(s.flow(N0, N1, TrafficClass::Data), FlowCounter::default());
    }

    #[test]
    fn fault_counters_diff_and_reset() {
        let mut s = TrafficStats::new();
        s.record_drop(N0, N1);
        let snapshot = s.clone();
        s.record_drop(N0, N1);
        s.record_degraded(N1, N0);

        assert_eq!(s.link_faults(N0, N1).dropped, 2);
        assert_eq!(s.total_dropped(), 2);
        assert_eq!(s.total_degraded(), 1);

        let d = s.since(&snapshot);
        assert_eq!(d.link_faults(N0, N1).dropped, 1);
        assert_eq!(d.link_faults(N1, N0).degraded, 1);
        assert_eq!(d.fault_links().count(), 2);

        s.reset();
        assert_eq!(s.total_dropped() + s.total_degraded(), 0);
        assert_eq!(s.link_faults(N0, N1), FaultCounter::default());
    }

    #[test]
    fn verify_counters_diff_and_reset() {
        let mut s = TrafficStats::new();
        s.record_verify_submission();
        s.record_verify_admission();
        let snapshot = s.clone();
        s.record_verify_submission();
        s.record_verify_reject();

        assert_eq!(s.verify_counter().submission_checks, 2);
        assert_eq!(s.verify_counter().admission_checks, 1);
        assert_eq!(s.verify_counter().rejects, 1);

        let d = s.since(&snapshot);
        assert_eq!(d.verify_counter().submission_checks, 1);
        assert_eq!(d.verify_counter().admission_checks, 0);
        assert_eq!(d.verify_counter().rejects, 1);

        s.reset();
        assert_eq!(s.verify_counter(), VerifyCounter::default());
    }

    #[test]
    fn device_fault_counters_diff_and_reset() {
        let dev = Endpoint::nvme(N0);
        let gpu = Endpoint::gpu(N1);
        let mut s = TrafficStats::new();
        s.record_device_fault(dev, |c| c.failed += 1);
        s.record_corrupted(N0, N1);
        let snapshot = s.clone();
        s.record_device_fault(dev, |c| c.torn += 1);
        s.record_device_fault(gpu, |c| c.corrupted += 1);
        s.record_device_fault(gpu, |c| c.spiked += 1);

        assert_eq!(s.device_faults_at(dev).failed, 1);
        assert_eq!(s.device_faults_at(gpu).corrupted, 1);
        assert_eq!(s.total_device_faults(), 4);
        assert_eq!(s.total_corrupted(), 1);
        assert_eq!(s.link_faults(N0, N1).corrupted, 1);

        let d = s.since(&snapshot);
        assert_eq!(d.device_faults_at(dev).failed, 0);
        assert_eq!(d.device_faults_at(dev).torn, 1);
        assert_eq!(d.device_fault_devices().count(), 2);
        assert_eq!(d.total_corrupted(), 0);

        s.reset();
        assert_eq!(s.total_device_faults(), 0);
    }
}
