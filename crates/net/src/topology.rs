//! Cluster topology: nodes, their components, and endpoint addressing.
//!
//! A node is a chassis on the switched fabric. Each node has a host CPU and
//! may carry a SmartNIC, GPUs and NVMe drives behind its PCIe complex. An
//! [`Endpoint`] addresses one communicating entity: `(node, location)`.

use core::fmt;

/// Identifies a node (chassis) in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Where on a node an endpoint lives.
///
/// The location determines which buses a message must traverse: the host CPU
/// talks to the NIC directly, while the SmartNIC ARM complex, GPUs and NVMe
/// drives sit behind an extra PCIe crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// The host CPU package (applications, CPU Controllers, adaptors).
    HostCpu,
    /// The SmartNIC ARM cores (offloaded Controllers).
    SmartNic,
    /// GPU number `n` on the node's PCIe complex.
    Gpu(u8),
    /// NVMe drive number `n` on the node's PCIe complex.
    Nvme(u8),
}

impl Location {
    /// Whether this location sits behind an extra PCIe crossing relative to
    /// the node's NIC.
    pub fn behind_pcie(self) -> bool {
        !matches!(self, Location::HostCpu)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::HostCpu => write!(f, "cpu"),
            Location::SmartNic => write!(f, "snic"),
            Location::Gpu(n) => write!(f, "gpu{n}"),
            Location::Nvme(n) => write!(f, "nvme{n}"),
        }
    }
}

/// A communicating entity: `(node, location)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    /// The node this endpoint lives on.
    pub node: NodeId,
    /// Where on the node.
    pub loc: Location,
}

impl Endpoint {
    /// Convenience constructor.
    pub fn new(node: NodeId, loc: Location) -> Self {
        Endpoint { node, loc }
    }

    /// Host-CPU endpoint of `node`.
    pub fn cpu(node: NodeId) -> Self {
        Endpoint::new(node, Location::HostCpu)
    }

    /// SmartNIC endpoint of `node`.
    pub fn snic(node: NodeId) -> Self {
        Endpoint::new(node, Location::SmartNic)
    }

    /// First GPU of `node`.
    pub fn gpu(node: NodeId) -> Self {
        Endpoint::new(node, Location::Gpu(0))
    }

    /// First NVMe drive of `node`.
    pub fn nvme(node: NodeId) -> Self {
        Endpoint::new(node, Location::Nvme(0))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.node, self.loc)
    }
}

/// Hardware configuration of one node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Human-readable name (e.g. "storage-node").
    pub name: String,
    /// Whether a SmartNIC is installed.
    pub snic: bool,
    /// Number of GPUs.
    pub gpus: u8,
    /// Number of NVMe drives.
    pub nvmes: u8,
    /// Rack the node is mounted in. Nodes in different racks pay the
    /// fabric's cross-rack latency extra on every message between them;
    /// the same extra widens the sharded engine's per-link lookahead for
    /// those node pairs. All nodes default to rack 0 (single-switch
    /// cluster, the paper's testbed).
    pub rack: u32,
}

impl NodeConfig {
    /// A bare CPU node.
    pub fn cpu_only(name: &str) -> Self {
        NodeConfig {
            name: name.to_string(),
            snic: false,
            gpus: 0,
            nvmes: 0,
            rack: 0,
        }
    }

    /// Adds a SmartNIC.
    pub fn with_snic(mut self) -> Self {
        self.snic = true;
        self
    }

    /// Adds `n` GPUs.
    pub fn with_gpus(mut self, n: u8) -> Self {
        self.gpus = n;
        self
    }

    /// Adds `n` NVMe drives.
    pub fn with_nvmes(mut self, n: u8) -> Self {
        self.nvmes = n;
        self
    }

    /// Mounts the node in `rack`.
    pub fn in_rack(mut self, rack: u32) -> Self {
        self.rack = rack;
        self
    }
}

/// The cluster: an ordered set of nodes on one switched fabric.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<NodeConfig>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// The paper's 3-node testbed (Table 2): every node has a BlueField
    /// SmartNIC and a 970-EVO-class NVMe drive; node 1 additionally carries
    /// the Tesla K80.
    pub fn paper_testbed() -> Self {
        let mut t = Topology::new();
        t.add_node(NodeConfig::cpu_only("storage").with_snic().with_nvmes(1));
        t.add_node(
            NodeConfig::cpu_only("gpu")
                .with_snic()
                .with_gpus(1)
                .with_nvmes(1),
        );
        t.add_node(NodeConfig::cpu_only("frontend").with_snic().with_nvmes(1));
        t
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, config: NodeConfig) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(config);
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Configuration of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the topology.
    pub fn node(&self, node: NodeId) -> &NodeConfig {
        &self.nodes[node.0 as usize]
    }

    /// Rack of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the topology.
    pub fn rack(&self, node: NodeId) -> u32 {
        self.nodes[node.0 as usize].rack
    }

    /// Whether two nodes sit in different racks (and so pay the fabric's
    /// cross-rack latency extra between them).
    pub fn cross_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack(a) != self.rack(b)
    }

    /// Iterates over `(id, config)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeConfig)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, c)| (NodeId(i as u32), c))
    }

    /// Validates that an endpoint refers to hardware that exists.
    pub fn validate(&self, ep: Endpoint) -> Result<(), TopologyError> {
        let Some(cfg) = self.nodes.get(ep.node.0 as usize) else {
            return Err(TopologyError::UnknownNode(ep.node));
        };
        let ok = match ep.loc {
            Location::HostCpu => true,
            Location::SmartNic => cfg.snic,
            Location::Gpu(n) => n < cfg.gpus,
            Location::Nvme(n) => n < cfg.nvmes,
        };
        if ok {
            Ok(())
        } else {
            Err(TopologyError::MissingComponent(ep))
        }
    }
}

/// Errors raised by topology validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// The node id is out of range.
    UnknownNode(NodeId),
    /// The node exists but lacks the addressed component.
    MissingComponent(Endpoint),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::MissingComponent(ep) => {
                write!(f, "node has no such component: {ep}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = Topology::paper_testbed();
        assert_eq!(t.len(), 3);
        assert!(t.node(NodeId(0)).snic);
        assert_eq!(t.node(NodeId(1)).gpus, 1);
        assert_eq!(t.node(NodeId(0)).nvmes, 1);
        assert_eq!(t.node(NodeId(2)).nvmes, 1);
    }

    #[test]
    fn validate_known_endpoints() {
        let t = Topology::paper_testbed();
        assert!(t.validate(Endpoint::cpu(NodeId(0))).is_ok());
        assert!(t.validate(Endpoint::snic(NodeId(1))).is_ok());
        assert!(t.validate(Endpoint::gpu(NodeId(1))).is_ok());
        assert!(t.validate(Endpoint::nvme(NodeId(0))).is_ok());
    }

    #[test]
    fn validate_rejects_missing_hardware() {
        let t = Topology::paper_testbed();
        assert_eq!(
            t.validate(Endpoint::gpu(NodeId(0))),
            Err(TopologyError::MissingComponent(Endpoint::gpu(NodeId(0))))
        );
        assert_eq!(
            t.validate(Endpoint::cpu(NodeId(9))),
            Err(TopologyError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn locations_behind_pcie() {
        assert!(!Location::HostCpu.behind_pcie());
        assert!(Location::SmartNic.behind_pcie());
        assert!(Location::Gpu(0).behind_pcie());
        assert!(Location::Nvme(0).behind_pcie());
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(Endpoint::gpu(NodeId(1)).to_string(), "node1/gpu0");
    }

    #[test]
    fn builder_composes() {
        let cfg = NodeConfig::cpu_only("x")
            .with_snic()
            .with_gpus(2)
            .with_nvmes(3);
        assert!(cfg.snic);
        assert_eq!((cfg.gpus, cfg.nvmes), (2, 3));
        assert_eq!(cfg.rack, 0);
    }

    #[test]
    fn racks_default_to_zero_and_split_the_cluster() {
        let mut t = Topology::new();
        let a = t.add_node(NodeConfig::cpu_only("a"));
        let b = t.add_node(NodeConfig::cpu_only("b").in_rack(1));
        let c = t.add_node(NodeConfig::cpu_only("c").in_rack(1));
        assert_eq!(t.rack(a), 0);
        assert_eq!(t.rack(b), 1);
        assert!(t.cross_rack(a, b));
        assert!(!t.cross_rack(b, c));
        // The paper testbed hangs off one switch: no cross-rack pairs.
        let p = Topology::paper_testbed();
        assert!(!p.cross_rack(NodeId(0), NodeId(2)));
    }
}
