//! The fabric: latency/bandwidth model plus traffic accounting.
//!
//! [`Fabric::send`] is the single choke point every simulated message goes
//! through. It computes the one-way delivery latency of a message between two
//! [`Endpoint`]s, models bandwidth contention on the traversed links
//! (store-and-forward occupancy with per-link `busy_until` times), applies
//! optional jitter, and records traffic statistics. RDMA verbs
//! ([`Fabric::rdma_read`], [`Fabric::rdma_write`]) are composed from sends.

use std::collections::HashMap;

use fractos_sim::{SimDuration, SimRng, SimTime};

use crate::fault::{DeviceFaultOutcome, DeviceOp, FaultPlan, FaultState, LinkKey, SendOutcome};
use crate::params::NetParams;
use crate::stats::{Medium, TrafficClass, TrafficStats};
use crate::topology::{Endpoint, Location, NodeId, Topology};

/// A directed, bandwidth-limited link in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Edge {
    /// NIC loopback path of a node (intra-node traffic).
    Loopback(NodeId),
    /// Node egress to the switch.
    NetUp(NodeId),
    /// Switch egress towards a node.
    NetDown(NodeId),
    /// PCIe crossing towards a component (writes into it).
    PcieIn(NodeId, Location),
    /// PCIe crossing out of a component (reads from it).
    PcieOut(NodeId, Location),
}

/// Fixed-capacity edge list for a single route. A route traverses at most
/// four edges (PCIe out, loopback or net up + net down, PCIe in), so the
/// per-send path stays free of heap allocation.
#[derive(Debug, Clone, Copy)]
struct EdgePath {
    buf: [Edge; 4],
    len: usize,
}

impl EdgePath {
    fn new() -> Self {
        EdgePath {
            buf: [Edge::Loopback(NodeId(0)); 4],
            len: 0,
        }
    }

    fn push(&mut self, e: Edge) {
        self.buf[self.len] = e;
        self.len += 1;
    }

    fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.buf[..self.len].iter().copied()
    }
}

/// Fixed per-message overhead added to every payload on the wire
/// (headers: Ethernet + IP + UDP + RoCE BTH, roughly).
pub const WIRE_HEADER_BYTES: u64 = 64;

/// Messages at most this large (one RoCE MTU) interleave with bulk
/// transfers at packet granularity instead of queueing behind whole
/// reservations: the NIC schedules fairly per packet, so a small control
/// message never waits for a megabyte of bulk data ahead of it. Their
/// (negligible) capacity is not charged against the links.
pub const MTU_BYPASS: u64 = 4096 + WIRE_HEADER_BYTES;

/// Reservation horizon: intervals ending this far before the newest request
/// are pruned.
const PRUNE_HORIZON_NS: u64 = 50_000_000; // 50 ms

/// Busy intervals of one link, sorted by start time.
///
/// A link may be reserved at *future* instants (a controller computes a
/// reply's departure after a long local operation); earlier traffic must
/// still pass through the idle time before such a reservation, so a single
/// high-water mark is not enough — first-fit gap search over intervals is.
#[derive(Debug, Default)]
struct LinkSchedule {
    /// Sorted, non-overlapping `(start, end)` nanosecond intervals.
    intervals: Vec<(u64, u64)>,
}

impl LinkSchedule {
    /// Reserves `occ` ns at the earliest instant ≥ `t`; returns the start.
    fn reserve(&mut self, t: u64, occ: u64) -> u64 {
        // Prune long-past intervals to bound memory.
        let cutoff = t.saturating_sub(PRUNE_HORIZON_NS);
        self.intervals.retain(|&(_, end)| end >= cutoff);

        let end_of = |start: u64| {
            start
                .checked_add(occ)
                .expect("link reservation overflows the ns timeline")
        };
        let mut start = t;
        let mut insert_at = self.intervals.len();
        for (i, &(s, e)) in self.intervals.iter().enumerate() {
            if e <= start {
                continue;
            }
            if s >= end_of(start) {
                // The gap before interval `i` fits.
                insert_at = i;
                break;
            }
            // Overlap: push past this interval.
            start = e;
            insert_at = i + 1;
        }
        self.intervals.insert(insert_at, (start, end_of(start)));
        // Merge adjacent intervals opportunistically to keep the list flat.
        let mut i = insert_at;
        while i + 1 < self.intervals.len() && self.intervals[i].1 >= self.intervals[i + 1].0 {
            let next = self.intervals.remove(i + 1);
            self.intervals[i].1 = self.intervals[i].1.max(next.1);
        }
        if i > 0 && self.intervals[i - 1].1 >= self.intervals[i].0 {
            let cur = self.intervals.remove(i);
            i -= 1;
            self.intervals[i].1 = self.intervals[i].1.max(cur.1);
        }
        start
    }
}

/// What a [`FabricTelemetryEvent`] counts on its link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricTelemetryKind {
    /// One message delivered (control or data).
    Msgs,
    /// Payload bytes delivered (the delta is the byte count).
    Bytes,
    /// One message dropped by the armed fault plan.
    Drops,
    /// One delivery slowed by an active degradation window.
    Degraded,
}

impl FabricTelemetryKind {
    /// The series-name suffix for this kind (`link.<src>-<dst>.<suffix>`).
    pub fn suffix(self) -> &'static str {
        match self {
            FabricTelemetryKind::Msgs => "msgs",
            FabricTelemetryKind::Bytes => "bytes",
            FabricTelemetryKind::Drops => "drops",
            FabricTelemetryKind::Degraded => "degraded",
        }
    }
}

/// One timestamped counter delta recorded by the fabric when telemetry is
/// enabled. Deltas are pure counts: any window bucketing over them is
/// order-independent, so it does not matter in which order concurrent
/// senders (e.g. shards of the sharded backend) reach the shared fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricTelemetryEvent {
    /// Virtual departure time of the message that caused the delta.
    pub time: SimTime,
    /// Source node of the link.
    pub src: NodeId,
    /// Destination node of the link.
    pub dst: NodeId,
    /// Which per-link counter the delta belongs to.
    pub kind: FabricTelemetryKind,
    /// The counter increment (1 for msgs/drops/degraded, bytes for bytes).
    pub delta: u64,
}

impl FabricTelemetryEvent {
    /// The canonical telemetry series name, e.g. `link.0-1.bytes`.
    pub fn series(&self) -> String {
        format!("link.{}-{}.{}", self.src.0, self.dst.0, self.kind.suffix())
    }
}

/// The simulated data-center fabric.
#[derive(Debug)]
pub struct Fabric {
    params: NetParams,
    topology: Topology,
    schedules: HashMap<Edge, LinkSchedule>,
    stats: TrafficStats,
    faults: Option<FaultState>,
    /// `Some` only when telemetry is enabled; `None` costs nothing on the
    /// send path (zero-perturbation invariant — see `fractos_sim::telemetry`).
    telemetry: Option<Vec<FabricTelemetryEvent>>,
}

impl Fabric {
    /// Creates a fabric over `topology` with the given parameters.
    pub fn new(topology: Topology, params: NetParams) -> Self {
        Fabric {
            params,
            topology,
            schedules: HashMap::new(),
            stats: TrafficStats::new(),
            faults: None,
            telemetry: None,
        }
    }

    /// Starts buffering per-link telemetry deltas (msgs, bytes, drops,
    /// degraded deliveries) with virtual timestamps. Off by default; the
    /// send path is byte-identical with telemetry disabled.
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(Vec::new());
        }
    }

    /// True when [`enable_telemetry`](Fabric::enable_telemetry) was called.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Drains the buffered telemetry deltas (telemetry stays enabled).
    /// Returns an empty vector when telemetry was never enabled.
    pub fn take_telemetry(&mut self) -> Vec<FabricTelemetryEvent> {
        match &mut self.telemetry {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    fn telemetry_record(
        &mut self,
        time: SimTime,
        src: NodeId,
        dst: NodeId,
        kind: FabricTelemetryKind,
        delta: u64,
    ) {
        if let Some(buf) = &mut self.telemetry {
            buf.push(FabricTelemetryEvent {
                time,
                src,
                dst,
                kind,
                delta,
            });
        }
    }

    /// Arms `plan` with the given decision seed. An empty plan is
    /// equivalent to [`clear_fault_plan`](Fabric::clear_fault_plan):
    /// behavior stays bit-identical to a fabric with no plan installed.
    pub fn install_fault_plan(&mut self, plan: FaultPlan, seed: u64) {
        self.faults = if plan.is_empty() {
            None
        } else {
            Some(FaultState::new(plan, seed))
        };
    }

    /// Disarms any installed fault plan.
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// True when a non-empty fault plan is armed. Senders use this to
    /// decide whether retransmit/timeout machinery is worth arming.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// The fabric's parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Mutable parameters (e.g. to flip `third_party_rdma` between runs).
    pub fn params_mut(&mut self) -> &mut NetParams {
        &mut self.params
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Clears traffic statistics (links stay warm).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Records a static-verification event in the traffic counters.
    /// Verification is free in simulated time: this touches counters only
    /// and never charges latency or emits messages.
    pub fn note_verify(&mut self, f: impl FnOnce(&mut TrafficStats)) {
        f(&mut self.stats);
    }

    /// Decides the fault outcome of the next operation of class `op` on
    /// `device`, recording the injection in the per-device fault counters.
    /// Deterministic: hashed from `(plan seed, device, per-device op
    /// index)`, never from the caller's RNG. Without a plan (or without an
    /// entry for `device`) this returns `None` and touches no state.
    pub fn device_fault(&mut self, device: Endpoint, op: DeviceOp) -> DeviceFaultOutcome {
        let Some(state) = &mut self.faults else {
            return DeviceFaultOutcome::None;
        };
        let outcome = state.decide_device(device, op);
        match outcome {
            DeviceFaultOutcome::None => {}
            DeviceFaultOutcome::Fail => self.stats.record_device_fault(device, |c| c.failed += 1),
            DeviceFaultOutcome::Torn { .. } => {
                self.stats.record_device_fault(device, |c| c.torn += 1)
            }
            DeviceFaultOutcome::Corrupt { .. } => {
                self.stats.record_device_fault(device, |c| c.corrupted += 1)
            }
            DeviceFaultOutcome::Spike { .. } => {
                self.stats.record_device_fault(device, |c| c.spiked += 1)
            }
        }
        outcome
    }

    /// Decides whether the next data-class payload moving `src → dst` is
    /// bit-flipped in flight; returns the bit-position hash when it is and
    /// records the injection. Control-plane traffic is never corrupted.
    pub fn corrupt_payload(&mut self, src: NodeId, dst: NodeId) -> Option<u64> {
        let state = self.faults.as_mut()?;
        let bit = state.decide_corrupt(LinkKey::new(src, dst))?;
        self.stats.record_corrupted(src, dst);
        Some(bit)
    }

    /// True when the armed plan names data corruption on `src → dst`
    /// (consumers use this to decide whether verification can ever fire).
    pub fn corrupts_data(&self, src: NodeId, dst: NodeId) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.corrupts_link(LinkKey::new(src, dst)))
    }

    /// Sends one message of `payload` bytes from `src` to `dst`, departing at
    /// `now`. Returns the one-way delivery delay. Updates link occupancy and
    /// traffic statistics.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint refers to hardware the topology lacks —
    /// that is a wiring bug in the harness, not a runtime condition.
    pub fn send(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        src: Endpoint,
        dst: Endpoint,
        payload: u64,
        class: TrafficClass,
    ) -> SimDuration {
        self.send_parts(now, rng, src, dst, payload, class).0
    }

    /// Like [`send`](Fabric::send), but additionally splits the delay into
    /// its propagation and serialization components for latency attribution:
    /// returns `(total, propagation)` where `propagation` is the base
    /// route latency clamped to `total` and `total - propagation` is the
    /// serialization/queueing share (plus jitter and degradation).
    // analyze: hot-path
    pub fn send_parts(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        src: Endpoint,
        dst: Endpoint,
        payload: u64,
        class: TrafficClass,
    ) -> (SimDuration, SimDuration) {
        self.topology
            .validate(src)
            .unwrap_or_else(|e| panic!("fabric send from invalid endpoint: {e}"));
        self.topology
            .validate(dst)
            .unwrap_or_else(|e| panic!("fabric send to invalid endpoint: {e}"));

        let bytes = payload
            .checked_add(WIRE_HEADER_BYTES)
            .expect("message size overflows with the wire header");
        let (base, edges, medium) = self.route(src, dst);
        debug_assert!(
            src.node == dst.node || base >= self.params.conservative_lookahead(),
            "inter-node base latency {base} under the conservative lookahead bound"
        );

        // Cut-through through each traversed edge: the head of the message
        // proceeds as soon as an edge accepts it, but each edge stays
        // occupied for the full serialization time, so back-to-back traffic
        // queues while a single transfer pays the bottleneck only once.
        // MTU-sized messages interleave at packet granularity (see
        // [`MTU_BYPASS`]) and skip the queueing entirely.
        let mut head = now + base;
        let mut finish = head;
        for edge in edges.iter() {
            let bw = self.edge_bandwidth(edge);
            let occupancy = SimDuration::from_secs_f64(bytes as f64 / bw);
            if bytes <= MTU_BYPASS {
                finish = finish.max(head + occupancy);
                continue;
            }
            let start_ns = self
                .schedules
                .entry(edge)
                .or_default()
                .reserve(head.as_nanos(), occupancy.as_nanos().max(1));
            let start = SimTime::from_nanos(start_ns);
            let done = start + occupancy;
            head = start;
            finish = finish.max(done);
        }

        let mut delay = finish.duration_since(now);
        if self.params.jitter_frac > 0.0 {
            let f = 1.0 + self.params.jitter_frac * (2.0 * rng.gen_f64() - 1.0);
            delay = delay * f;
        }

        // Transient degradation applies to everything physically on the
        // link, including "reliable" traffic (drops and partitions do not:
        // those only gate `try_send`).
        if let Some(state) = &self.faults {
            let f = state.degrade_factor(now, LinkKey::new(src.node, dst.node));
            if f > 1.0 {
                delay = delay * f;
                self.stats.record_degraded(src.node, dst.node);
                self.telemetry_record(now, src.node, dst.node, FabricTelemetryKind::Degraded, 1);
            }
        }

        self.stats
            .record(src.node, dst.node, class, medium, payload);
        if self.telemetry.is_some() {
            self.telemetry_record(now, src.node, dst.node, FabricTelemetryKind::Msgs, 1);
            self.telemetry_record(now, src.node, dst.node, FabricTelemetryKind::Bytes, payload);
        }
        (delay, base.min(delay))
    }

    /// Like [`send`](Fabric::send), but subject to the armed fault plan:
    /// the message may be dropped (partition, scheduled one-shot, or
    /// probabilistic loss) instead of delivered. Dropped messages consume
    /// no link capacity, record no traffic, and show up only in the
    /// per-link fault counters. With no plan armed this is exactly `send`.
    ///
    /// Fault decisions consume no randomness from `rng`; see
    /// [`crate::fault`] for the determinism contract.
    ///
    /// # Panics
    ///
    /// Panics on invalid endpoints, exactly like `send` — a drop never
    /// masks a harness wiring bug.
    pub fn try_send(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        src: Endpoint,
        dst: Endpoint,
        payload: u64,
        class: TrafficClass,
    ) -> SendOutcome {
        match self.try_send_parts(now, rng, src, dst, payload, class) {
            Some((total, _prop)) => SendOutcome::Delivered(total),
            None => SendOutcome::Dropped,
        }
    }

    /// Like [`try_send`](Fabric::try_send), but on delivery also splits the
    /// delay as in [`send_parts`](Fabric::send_parts): returns
    /// `Some((total, propagation))`, or `None` when the fault plan dropped
    /// the message.
    // analyze: hot-path
    pub fn try_send_parts(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        src: Endpoint,
        dst: Endpoint,
        payload: u64,
        class: TrafficClass,
    ) -> Option<(SimDuration, SimDuration)> {
        let dropped = match &mut self.faults {
            Some(state) => state.decide_drop(now, LinkKey::new(src.node, dst.node)),
            None => false,
        };
        if dropped {
            self.topology
                .validate(src)
                .unwrap_or_else(|e| panic!("fabric send from invalid endpoint: {e}"));
            self.topology
                .validate(dst)
                .unwrap_or_else(|e| panic!("fabric send to invalid endpoint: {e}"));
            self.stats.record_drop(src.node, dst.node);
            self.telemetry_record(now, src.node, dst.node, FabricTelemetryKind::Drops, 1);
            return None;
        }
        Some(self.send_parts(now, rng, src, dst, payload, class))
    }

    /// Latency of a one-sided RDMA read: `reader` pulls `size` bytes from
    /// `target` memory. One small request on the control plane, one bulk
    /// response on the data plane.
    pub fn rdma_read(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        reader: Endpoint,
        target: Endpoint,
        size: u64,
    ) -> SimDuration {
        let req = self.send(now, rng, reader, target, 32, TrafficClass::Control);
        let resp = self.send(now + req, rng, target, reader, size, TrafficClass::Data);
        req + resp
    }

    /// Latency of a one-sided RDMA write of `size` bytes from `writer` into
    /// `target` memory, measured to the completion (ack) at the writer.
    pub fn rdma_write(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        writer: Endpoint,
        target: Endpoint,
        size: u64,
    ) -> SimDuration {
        let data = self.send(now, rng, writer, target, size, TrafficClass::Data);
        let ack = self.send(now + data, rng, target, writer, 0, TrafficClass::Control);
        data + ack
    }

    /// Base propagation latency between two endpoints, ignoring bandwidth
    /// and queueing. Useful for analytical checks in tests and benches.
    pub fn base_latency(&self, src: Endpoint, dst: Endpoint) -> SimDuration {
        self.route(src, dst).0
    }

    // analyze: hot-path
    fn route(&self, src: Endpoint, dst: Endpoint) -> (SimDuration, EdgePath, Medium) {
        let p = &self.params;
        let mut base = SimDuration::ZERO;
        let mut edges = EdgePath::new();

        // Source side: components behind PCIe first cross into the NIC
        // domain.
        if src.loc.behind_pcie() {
            base += p.pcie_hop;
            edges.push(Edge::PcieOut(src.node, src.loc));
        }

        let medium = if src.node == dst.node {
            base += p.local_oneway;
            edges.push(Edge::Loopback(src.node));
            if src.loc.behind_pcie() || dst.loc.behind_pcie() {
                Medium::Pcie
            } else {
                Medium::Loopback
            }
        } else {
            base += p.remote_oneway;
            if self.topology.cross_rack(src.node, dst.node) {
                // Aggregation-switch traversal between racks; joins the
                // base so `NetParams::link_lookahead_matrix` (which floors
                // the same sum by the jitter band) stays a lower bound.
                base += p.cross_rack_extra;
            }
            edges.push(Edge::NetUp(src.node));
            edges.push(Edge::NetDown(dst.node));
            Medium::Network
        };

        // Destination side.
        if dst.loc.behind_pcie() {
            base += p.pcie_hop;
            edges.push(Edge::PcieIn(dst.node, dst.loc));
        }

        (base, edges, medium)
    }

    fn edge_bandwidth(&self, edge: Edge) -> f64 {
        match edge {
            Edge::Loopback(_) => self.params.local_bandwidth,
            Edge::NetUp(_) | Edge::NetDown(_) => self.params.net_bandwidth,
            Edge::PcieIn(..) | Edge::PcieOut(..) => self.params.pcie_bandwidth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeConfig;

    fn fabric() -> Fabric {
        Fabric::new(Topology::paper_testbed(), NetParams::paper())
    }

    fn rng() -> SimRng {
        SimRng::new(1)
    }

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    #[test]
    fn telemetry_buffers_link_deltas_only_when_enabled() {
        let mut f = fabric();
        let mut r = rng();
        let src = Endpoint::cpu(N0);
        let dst = Endpoint::cpu(N1);

        // Disabled: send path records nothing and take returns empty.
        f.send(SimTime::ZERO, &mut r, src, dst, 100, TrafficClass::Data);
        assert!(!f.telemetry_enabled());
        assert!(f.take_telemetry().is_empty());

        f.enable_telemetry();
        let t = SimTime::from_nanos(5_000);
        f.send(t, &mut r, src, dst, 100, TrafficClass::Data);
        let events = f.take_telemetry();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, FabricTelemetryKind::Msgs);
        assert_eq!(events[0].delta, 1);
        assert_eq!(events[0].time, t);
        assert_eq!(events[0].series(), "link.0-1.msgs");
        assert_eq!(events[1].kind, FabricTelemetryKind::Bytes);
        assert_eq!(events[1].delta, 100);
        assert_eq!(events[1].series(), "link.0-1.bytes");

        // Draining leaves telemetry enabled.
        assert!(f.telemetry_enabled());
        f.send(t, &mut r, src, dst, 8, TrafficClass::Control);
        assert_eq!(f.take_telemetry().len(), 2);
    }

    #[test]
    fn telemetry_records_fault_plan_drops() {
        use crate::fault::FaultPlan;

        let plan = FaultPlan::new().drop_prob(N0, N1, 1.0);
        let mut f = fabric();
        f.install_fault_plan(plan, 9);
        f.enable_telemetry();
        let mut r = rng();
        let src = Endpoint::cpu(N0);
        let dst = Endpoint::cpu(N1);

        let out = f.try_send(SimTime::ZERO, &mut r, src, dst, 64, TrafficClass::Control);
        assert!(matches!(out, SendOutcome::Dropped));
        let events = f.take_telemetry();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FabricTelemetryKind::Drops);
        assert_eq!(events[0].series(), "link.0-1.drops");
    }

    #[test]
    fn loopback_rtt_matches_table3() {
        let mut f = fabric();
        let mut r = rng();
        let a = Endpoint::cpu(N0);
        // Null message both ways; payload 0 still pays header serialization,
        // which at loopback bandwidth is ~21 ns per direction — inside the
        // paper's measurement noise.
        let d1 = f.send(SimTime::ZERO, &mut r, a, a, 0, TrafficClass::Control);
        let d2 = f.send(SimTime::ZERO + d1, &mut r, a, a, 0, TrafficClass::Control);
        let rtt = (d1 + d2).as_micros_f64();
        assert!((rtt - 2.42).abs() < 0.1, "loopback RTT {rtt:.3} µs");
    }

    #[test]
    fn snic_loopback_rtt_matches_table3() {
        let mut f = fabric();
        let mut r = rng();
        let cpu = Endpoint::cpu(N0);
        let snic = Endpoint::snic(N0);
        let d1 = f.send(SimTime::ZERO, &mut r, cpu, snic, 0, TrafficClass::Control);
        let d2 = f.send(
            SimTime::ZERO + d1,
            &mut r,
            snic,
            cpu,
            0,
            TrafficClass::Control,
        );
        let rtt = (d1 + d2).as_micros_f64();
        assert!((rtt - 3.68).abs() < 0.1, "sNIC loopback RTT {rtt:.3} µs");
    }

    #[test]
    fn one_byte_rdma_read_is_about_3_3us() {
        let mut f = fabric();
        let mut r = rng();
        let d = f.rdma_read(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::cpu(N1),
            1,
        );
        let us = d.as_micros_f64();
        assert!((us - 3.3).abs() < 0.2, "1B RDMA read {us:.3} µs");
    }

    #[test]
    fn large_transfers_approach_line_rate() {
        let mut f = fabric();
        let mut r = rng();
        let size = 4u64 << 20; // 4 MiB
        let d = f.send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::cpu(N1),
            size,
            TrafficClass::Data,
        );
        let goodput = size as f64 / d.as_secs_f64();
        // Within 5% of 1.25 GB/s line rate.
        assert!(
            (goodput - 1.25e9).abs() / 1.25e9 < 0.05,
            "goodput {goodput:.3e} B/s"
        );
    }

    #[test]
    fn back_to_back_transfers_queue_on_the_link() {
        let mut f = fabric();
        let mut r = rng();
        let size = 1u64 << 20;
        let d1 = f.send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::cpu(N1),
            size,
            TrafficClass::Data,
        );
        // Same-instant second transfer must wait behind the first.
        let d2 = f.send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::cpu(N1),
            size,
            TrafficClass::Data,
        );
        assert!(d2 > d1, "second transfer should queue: {d1} then {d2}");
        assert!(d2.as_secs_f64() > 1.9 * d1.as_secs_f64());
    }

    #[test]
    fn different_links_do_not_contend() {
        let mut f = fabric();
        let mut r = rng();
        let size = 1u64 << 20;
        let d1 = f.send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::cpu(N1),
            size,
            TrafficClass::Data,
        );
        // Reverse direction uses different up/down links.
        let d2 = f.send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N1),
            Endpoint::cpu(N0),
            size,
            TrafficClass::Data,
        );
        let diff = d2.as_secs_f64() - d1.as_secs_f64();
        assert!(diff.abs() < 1e-6, "opposite directions contended: {diff}");
    }

    #[test]
    fn stats_classify_media() {
        let mut f = fabric();
        let mut r = rng();
        f.send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::cpu(N1),
            128,
            TrafficClass::Data,
        );
        f.send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::cpu(N0),
            128,
            TrafficClass::Control,
        );
        f.send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::nvme(N0),
            128,
            TrafficClass::Data,
        );
        assert_eq!(f.stats().network_msgs(), 1);
        assert_eq!(f.stats().medium_total(Medium::Loopback).msgs, 1);
        assert_eq!(f.stats().medium_total(Medium::Pcie).msgs, 1);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let topo = Topology::paper_testbed();
        let mut f = Fabric::new(topo, NetParams::paper_with_jitter(0.03));
        let mut r = rng();
        let nominal = f.base_latency(Endpoint::cpu(N0), Endpoint::cpu(N1));
        for i in 0..100u64 {
            // Space the probes out so they do not queue behind each other.
            let t = SimTime::from_nanos(i * 100_000);
            let d = f.send(
                t,
                &mut r,
                Endpoint::cpu(N0),
                Endpoint::cpu(N1),
                0,
                TrafficClass::Control,
            );
            // Nominal base excludes header serialization (~51 ns here), so
            // allow the jitter band plus that constant.
            let ratio = d.as_secs_f64() / nominal.as_secs_f64();
            assert!(
                (0.95..=1.10).contains(&ratio),
                "jittered delay ratio {ratio}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid endpoint")]
    fn send_to_missing_hardware_panics() {
        let mut topo = Topology::new();
        topo.add_node(NodeConfig::cpu_only("a"));
        let mut f = Fabric::new(topo, NetParams::paper());
        let mut r = rng();
        f.send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::gpu(N0),
            0,
            TrafficClass::Control,
        );
    }

    #[test]
    #[should_panic(expected = "overflows with the wire header")]
    fn absurd_payload_overflows_loudly() {
        let mut f = fabric();
        let mut r = rng();
        f.send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::cpu(N1),
            u64::MAX,
            TrafficClass::Data,
        );
    }

    #[test]
    #[should_panic(expected = "link reservation overflows")]
    fn reservation_past_the_end_of_time_panics() {
        let mut sched = LinkSchedule::default();
        sched.reserve(u64::MAX - 10, 100);
    }

    #[test]
    fn inter_node_latency_clears_the_lookahead_bound() {
        let f = fabric();
        let lookahead = f.params().conservative_lookahead();
        for (a, b) in [
            (Endpoint::cpu(N0), Endpoint::cpu(N1)),
            (Endpoint::nvme(N0), Endpoint::gpu(N1)),
            (Endpoint::snic(N1), Endpoint::cpu(N0)),
        ] {
            assert!(f.base_latency(a, b) >= lookahead);
        }
    }

    #[test]
    fn base_latency_is_symmetric() {
        let f = fabric();
        for (a, b) in [
            (Endpoint::cpu(N0), Endpoint::cpu(N1)),
            (Endpoint::cpu(N0), Endpoint::snic(N1)),
            (Endpoint::nvme(N0), Endpoint::gpu(N1)),
        ] {
            assert_eq!(f.base_latency(a, b), f.base_latency(b, a));
        }
    }

    #[test]
    fn try_send_without_plan_is_exactly_send() {
        let mut f = fabric();
        let mut g = fabric();
        let mut r1 = rng();
        let mut r2 = rng();
        let a = Endpoint::cpu(N0);
        let b = Endpoint::cpu(N1);
        let d1 = f.send(SimTime::ZERO, &mut r1, a, b, 256, TrafficClass::Control);
        let d2 = g.try_send(SimTime::ZERO, &mut r2, a, b, 256, TrafficClass::Control);
        assert_eq!(d2, SendOutcome::Delivered(d1));
        assert_eq!(g.stats().total_dropped(), 0);
        assert_eq!(
            f.stats().flow(N0, N1, TrafficClass::Control),
            g.stats().flow(N0, N1, TrafficClass::Control)
        );
    }

    #[test]
    fn empty_plan_is_equivalent_to_no_plan() {
        let mut f = fabric();
        f.install_fault_plan(FaultPlan::default(), 99);
        assert!(!f.has_faults());
        let mut r = rng();
        let out = f.try_send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::cpu(N1),
            0,
            TrafficClass::Control,
        );
        assert!(!out.is_dropped());
    }

    #[test]
    fn dropped_messages_record_faults_not_traffic() {
        let mut f = fabric();
        f.install_fault_plan(FaultPlan::new().partition(N0, N1, SimTime::ZERO, None), 7);
        assert!(f.has_faults());
        let mut r = rng();
        let out = f.try_send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::cpu(N1),
            128,
            TrafficClass::Control,
        );
        assert!(out.is_dropped());
        assert_eq!(out.delivered(), None);
        assert_eq!(f.stats().network_msgs(), 0);
        assert_eq!(f.stats().link_faults(N0, N1).dropped, 1);
        // Intra-node traffic is unaffected by the partition.
        let out = f.try_send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::cpu(N0),
            128,
            TrafficClass::Control,
        );
        assert!(!out.is_dropped());
    }

    #[test]
    fn degradation_slows_reliable_sends_too() {
        let from = SimTime::ZERO;
        let until = SimTime::ZERO + SimDuration::from_millis(1);
        let mut f = fabric();
        f.install_fault_plan(FaultPlan::new().degrade(N0, N1, from, until, 3.0), 7);
        let mut clean = fabric();
        let mut r = rng();
        let a = Endpoint::cpu(N0);
        let b = Endpoint::cpu(N1);
        let base = clean.send(SimTime::ZERO, &mut r, a, b, 0, TrafficClass::Control);
        let slow = f.send(SimTime::ZERO, &mut r, a, b, 0, TrafficClass::Control);
        assert_eq!(slow, base * 3.0);
        assert_eq!(f.stats().link_faults(N0, N1).degraded, 1);
        // After the window the link is back to nominal.
        let after = SimTime::ZERO + SimDuration::from_millis(2);
        let normal = f.send(after, &mut r, a, b, 0, TrafficClass::Control);
        assert_eq!(normal, base);
    }

    #[test]
    fn faulty_run_replays_from_seed_and_plan() {
        let run = |seed: u64| -> Vec<bool> {
            let mut f = fabric();
            f.install_fault_plan(FaultPlan::new().drop_prob_between(N0, N1, 0.4), seed);
            let mut r = rng();
            (0..100)
                .map(|i| {
                    let t = SimTime::from_nanos(i * 10_000);
                    f.try_send(
                        t,
                        &mut r,
                        Endpoint::cpu(N0),
                        Endpoint::cpu(N1),
                        64,
                        TrafficClass::Control,
                    )
                    .is_dropped()
                })
                .collect()
        };
        assert_eq!(run(61), run(61));
        assert_ne!(run(61), run(62));
    }

    #[test]
    #[should_panic(expected = "invalid endpoint")]
    fn dropped_send_still_validates_endpoints() {
        let mut topo = Topology::new();
        topo.add_node(NodeConfig::cpu_only("a"));
        topo.add_node(NodeConfig::cpu_only("b"));
        let mut f = Fabric::new(topo, NetParams::paper());
        f.install_fault_plan(FaultPlan::new().partition(N0, N1, SimTime::ZERO, None), 7);
        let mut r = rng();
        f.try_send(
            SimTime::ZERO,
            &mut r,
            Endpoint::cpu(N0),
            Endpoint::gpu(N1),
            0,
            TrafficClass::Control,
        );
    }

    #[test]
    fn device_to_device_cross_node_pays_two_pcie_hops() {
        let f = fabric();
        let p = f.params();
        let lat = f.base_latency(Endpoint::nvme(N0), Endpoint::gpu(N1));
        assert_eq!(lat, p.remote_oneway + p.pcie_hop * 2);
    }
}
