#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Simulated disaggregated data-center fabric for FractOS-rs.
//!
//! This crate substitutes the paper's physical testbed (Table 2: 3 nodes,
//! RoCEv2 over a 10 Gbps switched fabric, Mellanox BlueField SmartNICs,
//! PCIe-attached Tesla K80 and NVMe drives) with a calibrated model:
//!
//! * [`topology`] — nodes, components, endpoint addressing;
//! * [`params`] — latency/bandwidth/software-cost constants, each anchored
//!   to a number published in the paper (§6.1);
//! * [`fabric`] — the message-level latency and link-contention model plus
//!   RDMA verbs;
//! * [`stats`] — per-flow traffic accounting used to measure the paper's
//!   message-complexity and traffic-reduction claims;
//! * [`fault`] — deterministic fault injection (drops, partitions, link
//!   degradation) replayable from a `(seed, plan)` pair.
//!
//! # Examples
//!
//! ```
//! use fractos_net::{Endpoint, Fabric, NetParams, NodeId, Topology, TrafficClass};
//! use fractos_sim::{SimRng, SimTime};
//!
//! let mut fabric = Fabric::new(Topology::paper_testbed(), NetParams::paper());
//! let mut rng = SimRng::new(7);
//! let delay = fabric.send(
//!     SimTime::ZERO,
//!     &mut rng,
//!     Endpoint::cpu(NodeId(0)),
//!     Endpoint::gpu(NodeId(1)),
//!     4096,
//!     TrafficClass::Data,
//! );
//! assert!(delay.as_micros_f64() > 1.0);
//! assert_eq!(fabric.stats().network_msgs(), 1);
//! ```

pub mod fabric;
pub mod fault;
pub mod params;
pub mod stats;
pub mod topology;

pub use fabric::{Fabric, FabricTelemetryEvent, FabricTelemetryKind, WIRE_HEADER_BYTES};
pub use fault::{
    DeviceFaultOutcome, DeviceFaults, DeviceOp, FaultPlan, LinkKey, NodeCrash, SendOutcome,
};
pub use fractos_sim::Payload;
pub use params::{ComputeDomain, NetParams, RetryPolicy};
pub use stats::{
    DeviceFaultCounter, FaultCounter, FlowCounter, Medium, TrafficClass, TrafficStats,
    VerifyCounter,
};
pub use topology::{Endpoint, Location, NodeConfig, NodeId, Topology, TopologyError};
