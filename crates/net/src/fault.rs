//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] describes everything the fabric may do to droppable
//! traffic: per-link message-drop probabilities, one-shot drops scheduled at
//! virtual times, transient link degradation (latency multipliers over a
//! window), and bidirectional node partitions with optional heal times.
//!
//! Determinism contract: fault decisions never consume the caller's RNG.
//! Probabilistic drops hash `(plan seed, directed link, per-link message
//! index)` through a splitmix64 mixer, and windows are pure predicates over
//! virtual time. Because every decision depends only on the per-link order
//! of droppable sends — which both the single-threaded and sharded engines
//! preserve — a chaos run is replayable from `(seed, plan)` on either
//! backend, and an empty plan is bit-identical to no plan at all.

use std::collections::BTreeMap;

use fractos_sim::{SimDuration, SimTime};

use crate::topology::{Endpoint, Location, NodeId};

/// A directed node-pair link, the granularity at which faults apply.
///
/// The fabric models several physical edges per node pair (NIC loopback,
/// switch up/down, PCIe crossings); faults act on the coarser directed
/// `src → dst` pair because that is what a retransmitting sender observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkKey {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
}

impl LinkKey {
    /// The directed link from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        LinkKey { src, dst }
    }
}

/// A single message drop scheduled at a virtual time: the first droppable
/// message on `link` departing at or after `at` is lost.
#[derive(Debug, Clone, Copy)]
pub struct OneShotDrop {
    /// The directed link the drop arms on.
    pub link: LinkKey,
    /// Earliest departure time the drop applies to.
    pub at: SimTime,
}

/// A transient degradation window: deliveries on `link` departing inside
/// `[from, until)` take `factor` times their modeled latency.
#[derive(Debug, Clone, Copy)]
pub struct Degradation {
    /// The directed link that degrades.
    pub link: LinkKey,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Latency multiplier (> 1.0 slows the link down).
    pub factor: f64,
}

/// A bidirectional partition between two nodes: every droppable message
/// between `a` and `b` (either direction) departing inside the window is
/// lost.
#[derive(Debug, Clone, Copy)]
pub struct Partition {
    /// One side of the cut.
    pub a: NodeId,
    /// The other side of the cut.
    pub b: NodeId,
    /// When the partition starts (inclusive).
    pub from: SimTime,
    /// When the partition heals (exclusive); `None` means it never does.
    pub heal: Option<SimTime>,
}

impl Partition {
    fn cuts(&self, link: LinkKey, now: SimTime) -> bool {
        let pair = (link.src == self.a && link.dst == self.b)
            || (link.src == self.b && link.dst == self.a);
        pair && now >= self.from && self.heal.is_none_or(|h| now < h)
    }
}

/// A crash-stop (or crash-restart) node fault: the node fail-stops at `at`
/// — its actors stop receiving, its in-flight messages are lost — and, when
/// `restart` is set, comes back at that time with a fresh capability epoch
/// (crash-restart). `restart = None` is a permanent crash-stop.
#[derive(Debug, Clone, Copy)]
pub struct NodeCrash {
    /// The node that crashes.
    pub node: NodeId,
    /// Crash instant (inclusive: the node is down from `at`).
    pub at: SimTime,
    /// Optional restart instant (exclusive: the node is up again at
    /// `restart`); `None` means the node never comes back.
    pub restart: Option<SimTime>,
}

impl NodeCrash {
    /// True when the node is down at `now` (`at <= now < restart`).
    pub fn down_at(&self, now: SimTime) -> bool {
        now >= self.at && self.restart.is_none_or(|r| now < r)
    }

    fn cuts(&self, link: LinkKey, now: SimTime) -> bool {
        (link.src == self.node || link.dst == self.node) && self.down_at(now)
    }
}

/// The class of device operation a fault decision applies to.
///
/// Device faults are keyed per [`Endpoint`] and decided per operation in
/// that device's own deterministic order (device adaptors are single
/// actors, so the per-device op sequence is identical on both runtime
/// backends — the same contract that makes link faults replayable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceOp {
    /// An NVMe media read.
    NvmeRead,
    /// An NVMe media write.
    NvmeWrite,
    /// A GPU kernel launch.
    GpuLaunch,
}

/// Per-device fault probabilities. All default to zero (inject nothing);
/// `spike_factor` is the service-time multiplier applied when a latency
/// spike fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceFaults {
    /// Probability that a media read fails with a media error.
    pub read_error: f64,
    /// Probability that a media write fails with a media error.
    pub write_error: f64,
    /// Probability that a media write is torn: only a prefix of the
    /// payload reaches the medium (the rest keeps its prior contents).
    pub torn_write: f64,
    /// Probability that an operation takes `spike_factor`× its modeled
    /// service time (firmware retry / thermal throttle analogue).
    pub latency_spike: f64,
    /// Service-time multiplier of a latency spike (≥ 1).
    pub spike_factor: f64,
    /// Probability that a GPU kernel launch fails outright.
    pub launch_error: f64,
    /// Probability that a completed GPU kernel's output suffers an
    /// ECC-escape single-bit corruption.
    pub corrupt_output: f64,
}

impl Default for DeviceFaults {
    fn default() -> Self {
        DeviceFaults {
            read_error: 0.0,
            write_error: 0.0,
            torn_write: 0.0,
            latency_spike: 0.0,
            spike_factor: 8.0,
            launch_error: 0.0,
            corrupt_output: 0.0,
        }
    }
}

impl DeviceFaults {
    /// True when every probability is zero.
    pub fn is_empty(&self) -> bool {
        self.read_error == 0.0
            && self.write_error == 0.0
            && self.torn_write == 0.0
            && self.latency_spike == 0.0
            && self.launch_error == 0.0
            && self.corrupt_output == 0.0
    }
}

/// What the fault plan decided for one device operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceFaultOutcome {
    /// The operation proceeds untouched.
    None,
    /// The operation fails (media error / launch failure). The device
    /// still charges its service time — the failure is detected at
    /// completion, as on real hardware.
    Fail,
    /// A torn write: only the first `keep_frac` of the payload commits.
    Torn {
        /// Fraction of the payload that reached the medium, in `[0, 1)`.
        keep_frac: f64,
    },
    /// The operation completes but its output has one flipped bit.
    Corrupt {
        /// Hash the consumer reduces modulo the payload bit-length to
        /// pick the flipped bit.
        bit: u64,
    },
    /// The operation completes but takes `factor`× its service time.
    Spike {
        /// Service-time multiplier (≥ 1).
        factor: f64,
    },
}

/// Everything the fabric may inject into a run. An empty (default) plan
/// injects nothing and leaves the fabric's behavior bit-identical to a
/// fabric with no plan installed.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Per-link probability that a droppable message is lost.
    pub drop_probs: BTreeMap<LinkKey, f64>,
    /// Scheduled single-message drops.
    pub one_shots: Vec<OneShotDrop>,
    /// Transient latency-degradation windows.
    pub degradations: Vec<Degradation>,
    /// Bidirectional partitions.
    pub partitions: Vec<Partition>,
    /// Per-device fault probabilities.
    pub device_faults: BTreeMap<Endpoint, DeviceFaults>,
    /// Per-link probability that a data-class payload suffers a bit flip
    /// in flight (the control plane keeps the drop model).
    pub corrupt_probs: BTreeMap<LinkKey, f64>,
    /// Crash-stop / crash-restart node faults.
    pub node_crashes: Vec<NodeCrash>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.drop_probs.is_empty()
            && self.one_shots.is_empty()
            && self.degradations.is_empty()
            && self.partitions.is_empty()
            && self.device_faults.values().all(DeviceFaults::is_empty)
            && self.corrupt_probs.is_empty()
            && self.node_crashes.is_empty()
    }

    /// Drops each droppable `src → dst` message with probability `p`.
    pub fn drop_prob(mut self, src: NodeId, dst: NodeId, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability {p} not in [0, 1]"
        );
        self.drop_probs.insert(LinkKey::new(src, dst), p);
        self
    }

    /// Drops each droppable message between `a` and `b` (both directions)
    /// with probability `p`.
    pub fn drop_prob_between(self, a: NodeId, b: NodeId, p: f64) -> Self {
        self.drop_prob(a, b, p).drop_prob(b, a, p)
    }

    /// Drops the first droppable `src → dst` message departing at or after
    /// `at`.
    pub fn one_shot(mut self, src: NodeId, dst: NodeId, at: SimTime) -> Self {
        self.one_shots.push(OneShotDrop {
            link: LinkKey::new(src, dst),
            at,
        });
        self
    }

    /// Multiplies `src → dst` latency by `factor` for departures in
    /// `[from, until)`.
    pub fn degrade(
        mut self,
        src: NodeId,
        dst: NodeId,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> Self {
        assert!(factor >= 1.0, "degradation factor {factor} below 1.0");
        self.degradations.push(Degradation {
            link: LinkKey::new(src, dst),
            from,
            until,
            factor,
        });
        self
    }

    /// Cuts all droppable traffic between `a` and `b` from `from` until
    /// `heal` (or forever when `heal` is `None`).
    pub fn partition(mut self, a: NodeId, b: NodeId, from: SimTime, heal: Option<SimTime>) -> Self {
        self.partitions.push(Partition { a, b, from, heal });
        self
    }

    /// Crash-stops `node` at `at`: its actors stop receiving, its in-flight
    /// messages are lost, and every droppable message to or from it drops.
    pub fn crash_node(mut self, node: NodeId, at: SimTime) -> Self {
        self.node_crashes.push(NodeCrash {
            node,
            at,
            restart: None,
        });
        self
    }

    /// Crash-restarts `node`: down over `[at, restart)`, back afterwards
    /// with a fresh capability epoch (its Controllers reboot).
    pub fn crash_restart_node(mut self, node: NodeId, at: SimTime, restart: SimTime) -> Self {
        assert!(restart > at, "restart must come after the crash");
        self.node_crashes.push(NodeCrash {
            node,
            at,
            restart: Some(restart),
        });
        self
    }

    fn assert_prob(p: f64, what: &str) {
        assert!(
            (0.0..=1.0).contains(&p),
            "{what} probability {p} not in [0, 1]"
        );
    }

    /// Fails each media read on the NVMe at `device` with probability `p`.
    pub fn nvme_read_errors(mut self, device: Endpoint, p: f64) -> Self {
        Self::assert_prob(p, "read-error");
        self.device_faults.entry(device).or_default().read_error = p;
        self
    }

    /// Fails each media write on the NVMe at `device` with probability `p`.
    pub fn nvme_write_errors(mut self, device: Endpoint, p: f64) -> Self {
        Self::assert_prob(p, "write-error");
        self.device_faults.entry(device).or_default().write_error = p;
        self
    }

    /// Tears each media write on the NVMe at `device` with probability
    /// `p`: only a prefix of the payload reaches the medium.
    pub fn nvme_torn_writes(mut self, device: Endpoint, p: f64) -> Self {
        Self::assert_prob(p, "torn-write");
        self.device_faults.entry(device).or_default().torn_write = p;
        self
    }

    /// Stretches each operation on `device` to `factor`× its service time
    /// with probability `p`.
    pub fn device_latency_spikes(mut self, device: Endpoint, p: f64, factor: f64) -> Self {
        Self::assert_prob(p, "latency-spike");
        assert!(factor >= 1.0, "spike factor {factor} below 1.0");
        let f = self.device_faults.entry(device).or_default();
        f.latency_spike = p;
        f.spike_factor = factor;
        self
    }

    /// Fails each kernel launch on the GPU at `device` with probability
    /// `p`.
    pub fn gpu_launch_errors(mut self, device: Endpoint, p: f64) -> Self {
        Self::assert_prob(p, "launch-error");
        self.device_faults.entry(device).or_default().launch_error = p;
        self
    }

    /// Flips one bit of each completed kernel's output on the GPU at
    /// `device` with probability `p` (an ECC escape).
    pub fn gpu_output_corruption(mut self, device: Endpoint, p: f64) -> Self {
        Self::assert_prob(p, "output-corruption");
        self.device_faults.entry(device).or_default().corrupt_output = p;
        self
    }

    /// Flips one bit of each data-class `src → dst` payload with
    /// probability `p`.
    pub fn corrupt_data(mut self, src: NodeId, dst: NodeId, p: f64) -> Self {
        Self::assert_prob(p, "payload-corruption");
        self.corrupt_probs.insert(LinkKey::new(src, dst), p);
        self
    }

    /// Flips one bit of each data-class payload between `a` and `b`
    /// (both directions) with probability `p`.
    pub fn corrupt_data_between(self, a: NodeId, b: NodeId, p: f64) -> Self {
        self.corrupt_data(a, b, p).corrupt_data(b, a, p)
    }
}

/// What [`Fabric::try_send`](crate::Fabric::try_send) did with a message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SendOutcome {
    /// The message will arrive after the returned one-way delay.
    Delivered(SimDuration),
    /// The fault plan dropped the message; nothing arrives.
    Dropped,
}

impl SendOutcome {
    /// The delivery delay, or `None` if the message was dropped.
    pub fn delivered(self) -> Option<SimDuration> {
        match self {
            SendOutcome::Delivered(d) => Some(d),
            SendOutcome::Dropped => None,
        }
    }

    /// True if the message was dropped.
    pub fn is_dropped(&self) -> bool {
        matches!(self, SendOutcome::Dropped)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to the unit interval with 53 bits of precision.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Stable numeric encoding of a [`Location`] for hashing (part of the
/// replay contract — never reorder).
fn loc_code(loc: Location) -> u64 {
    match loc {
        Location::HostCpu => 0,
        Location::SmartNic => 1,
        Location::Gpu(n) => 0x100 + u64::from(n),
        Location::Nvme(n) => 0x200 + u64::from(n),
    }
}

/// Armed fault state inside a fabric: the plan plus the mutable bits
/// (one-shot arming, per-link message indices) that make replay exact.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    seed: u64,
    /// Whether each one-shot drop has fired.
    fired: Vec<bool>,
    /// Droppable-message index per directed link; the probabilistic-drop
    /// hash input, so decision `k` on a link is the same in every replay.
    msg_idx: BTreeMap<LinkKey, u64>,
    /// Operation index per device endpoint (only devices the plan names
    /// get a counter, so an empty plan stays bit-identical to no plan).
    dev_idx: BTreeMap<Endpoint, u64>,
    /// Data-class payload index per directed link (only links the plan
    /// names corruption for).
    data_idx: BTreeMap<LinkKey, u64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, seed: u64) -> Self {
        let fired = vec![false; plan.one_shots.len()];
        FaultState {
            plan,
            seed,
            fired,
            msg_idx: BTreeMap::new(),
            dev_idx: BTreeMap::new(),
            data_idx: BTreeMap::new(),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides whether the droppable message departing `now` on `link` is
    /// lost. Consumes no external randomness.
    pub(crate) fn decide_drop(&mut self, now: SimTime, link: LinkKey) -> bool {
        let idx = {
            let c = self.msg_idx.entry(link).or_insert(0);
            let i = *c;
            *c += 1;
            i
        };
        if self.plan.partitions.iter().any(|p| p.cuts(link, now)) {
            return true;
        }
        if self.plan.node_crashes.iter().any(|c| c.cuts(link, now)) {
            return true;
        }
        for (i, shot) in self.plan.one_shots.iter().enumerate() {
            if !self.fired[i] && shot.link == link && now >= shot.at {
                self.fired[i] = true;
                return true;
            }
        }
        if let Some(&p) = self.plan.drop_probs.get(&link) {
            if p > 0.0 {
                let mut h = self.seed;
                h = splitmix64(h ^ u64::from(link.src.0));
                h = splitmix64(h ^ u64::from(link.dst.0).rotate_left(32));
                h = splitmix64(h ^ idx);
                return unit(h) < p;
            }
        }
        false
    }

    /// Combined latency multiplier of the degradation windows active for a
    /// departure at `now` on `link` (1.0 when none are).
    pub(crate) fn degrade_factor(&self, now: SimTime, link: LinkKey) -> f64 {
        self.plan
            .degradations
            .iter()
            .filter(|d| d.link == link && now >= d.from && now < d.until)
            .map(|d| d.factor)
            .product()
    }

    /// One salted hash draw for device op `idx` on `device`.
    fn device_hash(&self, device: Endpoint, idx: u64, salt: u64) -> u64 {
        let mut h = self.seed;
        h = splitmix64(h ^ u64::from(device.node.0));
        h = splitmix64(h ^ loc_code(device.loc).rotate_left(32));
        h = splitmix64(h ^ idx);
        splitmix64(h ^ salt)
    }

    /// Decides the fault outcome of the next operation of class `op` on
    /// `device`. Consumes no external randomness; the decision is a pure
    /// function of `(plan seed, device, per-device op index)`. Priority
    /// when several classes draw true: fail > torn > corrupt > spike.
    pub(crate) fn decide_device(&mut self, device: Endpoint, op: DeviceOp) -> DeviceFaultOutcome {
        let Some(&f) = self.plan.device_faults.get(&device) else {
            return DeviceFaultOutcome::None;
        };
        if f.is_empty() {
            return DeviceFaultOutcome::None;
        }
        let idx = {
            let c = self.dev_idx.entry(device).or_insert(0);
            let i = *c;
            *c += 1;
            i
        };
        let fail_p = match op {
            DeviceOp::NvmeRead => f.read_error,
            DeviceOp::NvmeWrite => f.write_error,
            DeviceOp::GpuLaunch => f.launch_error,
        };
        if fail_p > 0.0 && unit(self.device_hash(device, idx, 1)) < fail_p {
            return DeviceFaultOutcome::Fail;
        }
        if op == DeviceOp::NvmeWrite
            && f.torn_write > 0.0
            && unit(self.device_hash(device, idx, 2)) < f.torn_write
        {
            return DeviceFaultOutcome::Torn {
                keep_frac: unit(self.device_hash(device, idx, 5)),
            };
        }
        if op == DeviceOp::GpuLaunch
            && f.corrupt_output > 0.0
            && unit(self.device_hash(device, idx, 3)) < f.corrupt_output
        {
            return DeviceFaultOutcome::Corrupt {
                bit: self.device_hash(device, idx, 6),
            };
        }
        if f.latency_spike > 0.0 && unit(self.device_hash(device, idx, 4)) < f.latency_spike {
            return DeviceFaultOutcome::Spike {
                factor: f.spike_factor,
            };
        }
        DeviceFaultOutcome::None
    }

    /// Decides whether the next data-class payload on `link` is corrupted
    /// in flight; returns the bit-position hash when it is. Links without
    /// a corruption entry get no counter, so an empty plan stays
    /// bit-identical to no plan.
    pub(crate) fn decide_corrupt(&mut self, link: LinkKey) -> Option<u64> {
        let &p = self.plan.corrupt_probs.get(&link)?;
        if p <= 0.0 {
            return None;
        }
        let idx = {
            let c = self.data_idx.entry(link).or_insert(0);
            let i = *c;
            *c += 1;
            i
        };
        let mut h = self.seed;
        h = splitmix64(h ^ u64::from(link.src.0));
        h = splitmix64(h ^ u64::from(link.dst.0).rotate_left(32));
        h = splitmix64(h ^ idx);
        let decide = splitmix64(h ^ 0x0DA7_A0C0_44BE);
        if unit(decide) < p {
            Some(splitmix64(h ^ 0xB17F_11B5))
        } else {
            None
        }
    }

    /// True when the plan names data corruption on `link`.
    pub(crate) fn corrupts_link(&self, link: LinkKey) -> bool {
        self.plan.corrupt_probs.get(&link).copied().unwrap_or(0.0) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        let mut state = FaultState::new(plan, 7);
        let link = LinkKey::new(N0, N1);
        for i in 0..100 {
            assert!(!state.decide_drop(t(i), link));
        }
        assert_eq!(state.degrade_factor(t(0), link), 1.0);
    }

    #[test]
    fn drop_decisions_replay_from_seed_and_index() {
        let plan = FaultPlan::new().drop_prob(N0, N1, 0.3);
        let mut a = FaultState::new(plan.clone(), 42);
        let mut b = FaultState::new(plan, 42);
        let link = LinkKey::new(N0, N1);
        let da: Vec<bool> = (0..200).map(|i| a.decide_drop(t(i), link)).collect();
        let db: Vec<bool> = (0..200).map(|i| b.decide_drop(t(i), link)).collect();
        assert_eq!(da, db);
        let drops = da.iter().filter(|&&d| d).count();
        assert!((30..=90).contains(&drops), "{drops} drops at p=0.3");
    }

    #[test]
    fn drop_rate_tracks_probability_and_seed() {
        let plan = FaultPlan::new().drop_prob(N0, N1, 0.5);
        let mut a = FaultState::new(plan.clone(), 1);
        let mut b = FaultState::new(plan, 2);
        let link = LinkKey::new(N0, N1);
        let da: Vec<bool> = (0..200).map(|i| a.decide_drop(t(i), link)).collect();
        let db: Vec<bool> = (0..200).map(|i| b.decide_drop(t(i), link)).collect();
        assert_ne!(da, db, "different seeds should disagree somewhere");
    }

    #[test]
    fn reverse_direction_is_unaffected() {
        let plan = FaultPlan::new().drop_prob(N0, N1, 1.0);
        let mut state = FaultState::new(plan, 3);
        assert!(state.decide_drop(t(0), LinkKey::new(N0, N1)));
        assert!(!state.decide_drop(t(0), LinkKey::new(N1, N0)));
    }

    #[test]
    fn one_shot_fires_once_at_or_after_its_time() {
        let plan = FaultPlan::new().one_shot(N0, N1, t(10));
        let mut state = FaultState::new(plan, 0);
        let link = LinkKey::new(N0, N1);
        assert!(!state.decide_drop(t(9), link));
        assert!(state.decide_drop(t(11), link));
        assert!(!state.decide_drop(t(12), link));
    }

    #[test]
    fn partition_cuts_both_directions_and_heals() {
        let plan = FaultPlan::new().partition(N0, N1, t(10), Some(t(20)));
        let mut state = FaultState::new(plan, 0);
        let fwd = LinkKey::new(N0, N1);
        let rev = LinkKey::new(N1, N0);
        assert!(!state.decide_drop(t(9), fwd));
        assert!(state.decide_drop(t(10), fwd));
        assert!(state.decide_drop(t(15), rev));
        assert!(!state.decide_drop(t(20), fwd));
        assert!(!state.decide_drop(t(25), rev));
    }

    #[test]
    fn unhealed_partition_never_heals() {
        let plan = FaultPlan::new().partition(N0, N1, t(0), None);
        let mut state = FaultState::new(plan, 0);
        assert!(state.decide_drop(t(1_000_000), LinkKey::new(N1, N0)));
    }

    #[test]
    fn degradation_window_is_half_open() {
        let plan = FaultPlan::new().degrade(N0, N1, t(10), t(20), 4.0);
        let state = FaultState::new(plan, 0);
        let link = LinkKey::new(N0, N1);
        assert_eq!(state.degrade_factor(t(9), link), 1.0);
        assert_eq!(state.degrade_factor(t(10), link), 4.0);
        assert_eq!(state.degrade_factor(t(19), link), 4.0);
        assert_eq!(state.degrade_factor(t(20), link), 1.0);
        assert_eq!(state.degrade_factor(t(15), LinkKey::new(N1, N0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn out_of_range_probability_panics() {
        let _ = FaultPlan::new().drop_prob(N0, N1, 1.5);
    }

    #[test]
    fn device_decisions_replay_from_seed_and_index() {
        let dev = Endpoint::nvme(N0);
        let plan = FaultPlan::new()
            .nvme_read_errors(dev, 0.2)
            .nvme_torn_writes(dev, 0.2)
            .device_latency_spikes(dev, 0.2, 6.0);
        let mut a = FaultState::new(plan.clone(), 99);
        let mut b = FaultState::new(plan, 99);
        let ops = [DeviceOp::NvmeRead, DeviceOp::NvmeWrite];
        let da: Vec<_> = (0..200).map(|i| a.decide_device(dev, ops[i % 2])).collect();
        let db: Vec<_> = (0..200).map(|i| b.decide_device(dev, ops[i % 2])).collect();
        assert_eq!(da, db);
        let fails = da
            .iter()
            .filter(|o| matches!(o, DeviceFaultOutcome::Fail))
            .count();
        let torn = da
            .iter()
            .filter(|o| matches!(o, DeviceFaultOutcome::Torn { .. }))
            .count();
        let spikes = da
            .iter()
            .filter(|o| matches!(o, DeviceFaultOutcome::Spike { .. }))
            .count();
        assert!(fails > 0, "no injected failures at p=0.2 over 200 ops");
        assert!(torn > 0, "no torn writes at p=0.2 over 100 writes");
        assert!(spikes > 0, "no latency spikes at p=0.2 over 200 ops");
    }

    #[test]
    fn device_faults_are_scoped_to_the_named_endpoint() {
        let dev = Endpoint::nvme(N0);
        let other = Endpoint::nvme(N1);
        let plan = FaultPlan::new().nvme_read_errors(dev, 1.0);
        let mut state = FaultState::new(plan, 5);
        assert_eq!(
            state.decide_device(dev, DeviceOp::NvmeRead),
            DeviceFaultOutcome::Fail
        );
        assert_eq!(
            state.decide_device(other, DeviceOp::NvmeRead),
            DeviceFaultOutcome::None
        );
        // Write ops on the faulty device draw from `write_error`, which
        // is zero here.
        assert_eq!(
            state.decide_device(dev, DeviceOp::NvmeWrite),
            DeviceFaultOutcome::None
        );
    }

    #[test]
    fn gpu_corruption_carries_a_bit_hash() {
        let dev = Endpoint::gpu(N1);
        let plan = FaultPlan::new().gpu_output_corruption(dev, 1.0);
        let mut state = FaultState::new(plan, 17);
        let DeviceFaultOutcome::Corrupt { bit: a } = state.decide_device(dev, DeviceOp::GpuLaunch)
        else {
            panic!("p=1 corruption did not fire");
        };
        let DeviceFaultOutcome::Corrupt { bit: b } = state.decide_device(dev, DeviceOp::GpuLaunch)
        else {
            panic!("p=1 corruption did not fire");
        };
        assert_ne!(a, b, "per-op indices must vary the bit hash");
    }

    #[test]
    fn payload_corruption_replays_and_scopes_to_link() {
        let plan = FaultPlan::new().corrupt_data(N0, N1, 0.5);
        let mut a = FaultState::new(plan.clone(), 31);
        let mut b = FaultState::new(plan, 31);
        let link = LinkKey::new(N0, N1);
        let da: Vec<_> = (0..100).map(|_| a.decide_corrupt(link)).collect();
        let db: Vec<_> = (0..100).map(|_| b.decide_corrupt(link)).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(Option::is_some), "p=0.5 never corrupted");
        assert!(da.iter().any(Option::is_none), "p=0.5 always corrupted");
        assert_eq!(a.decide_corrupt(LinkKey::new(N1, N0)), None);
        assert!(a.corrupts_link(link));
        assert!(!a.corrupts_link(LinkKey::new(N1, N0)));
    }

    #[test]
    fn node_crash_cuts_links_both_ways_until_restart() {
        let plan = FaultPlan::new().crash_restart_node(N1, t(10), t(20));
        let mut state = FaultState::new(plan, 0);
        let fwd = LinkKey::new(N0, N1);
        let rev = LinkKey::new(N1, N0);
        assert!(!state.decide_drop(t(9), fwd));
        assert!(state.decide_drop(t(10), fwd));
        assert!(state.decide_drop(t(15), rev));
        assert!(!state.decide_drop(t(20), fwd));
        assert!(!state.decide_drop(t(25), rev));
    }

    #[test]
    fn crash_stop_never_comes_back() {
        let plan = FaultPlan::new().crash_node(N0, t(5));
        let mut state = FaultState::new(plan.clone(), 0);
        assert!(state.decide_drop(t(1_000_000), LinkKey::new(N0, N1)));
        assert!(plan.node_crashes[0].down_at(t(1_000_000)));
        assert!(!plan.node_crashes[0].down_at(t(4)));
        assert!(!plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "restart must come after the crash")]
    fn restart_before_crash_panics() {
        let _ = FaultPlan::new().crash_restart_node(N0, t(10), t(10));
    }

    #[test]
    fn device_plan_emptiness() {
        assert!(FaultPlan::new()
            .device_latency_spikes(Endpoint::nvme(N0), 0.0, 2.0)
            .is_empty());
        assert!(!FaultPlan::new()
            .nvme_read_errors(Endpoint::nvme(N0), 0.1)
            .is_empty());
        assert!(!FaultPlan::new().corrupt_data(N0, N1, 0.1).is_empty());
    }
}
