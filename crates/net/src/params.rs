//! Calibration constants for the fabric and software-overhead model.
//!
//! Every constant is calibrated against a number the paper itself reports
//! (§6.1, Tables 2–3, Figs 5–7). The bench target `table3_null_op` and the
//! unit tests below check that the composed model reproduces those anchors.
//!
//! Anchor points from the paper:
//!
//! | Measurement | Paper value |
//! |---|---|
//! | Raw loopback ping-pong, server @ host CPU | 2.42 µs RTT |
//! | Raw loopback ping-pong, server @ sNIC | 3.68 µs RTT |
//! | FractOS null op @ CPU | 3.00 µs |
//! | FractOS null op @ sNIC | 4.50 µs |
//! | 1-byte cross-node RDMA | 3.3 µs |
//! | 1-byte `memory_copy`, Controller @ CPU | 12.7 µs |
//! | 1-byte `memory_copy`, Controller @ sNIC | 24.5 µs |
//! | Request handling both ways @ CPU | +1.41 µs |
//! | Request (de)serialization across network @ CPU | +4.41 µs |
//! | Request handling both ways @ sNIC | +5.11 µs |
//! | Request (de)serialization across network @ sNIC | +12.21 µs |
//! | Capability (de)serialization per delegated cap | 2.4 µs CPU / 3.8 µs sNIC |
//! | Network fabric | 10 Gbps |

use fractos_sim::SimDuration;

use crate::topology::{NodeId, Topology};

/// Where a piece of software executes; scales its processing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeDomain {
    /// Xeon host CPU.
    HostCpu,
    /// BlueField SmartNIC ARM cores (≈800 MHz, slow atomics).
    SmartNic,
}

/// Retry budgets for the control plane and the services built on it.
///
/// One typed policy, carried on [`NetParams`], replaces the retry
/// constants that used to be scattered across the Controller/Process
/// retransmit layer and the individual services. The defaults reproduce
/// those historical values exactly, so traces under the default
/// parameters are byte-identical to the pre-consolidation build.
///
/// Exhausting a budget never *declares* a peer dead — it only translates
/// into the §3.6 failure verdicts (`ControllerUnreachable`, severed
/// channels); death declaration stays with the external watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Initial retransmission timeout; doubles on every attempt.
    pub rto_base: SimDuration,
    /// Total transmit attempts (the original plus retries) before the
    /// sender gives up and applies a §3.6 failure verdict.
    pub max_attempts: u32,
    /// Last-resort timeout for a pending peer-operation ack. Covers the
    /// case where the request was delivered but the answering side gave
    /// up on its (also faulty) return path.
    pub ack_timeout: SimDuration,
    /// Last-resort timeout for a pending syscall at the issuing Process.
    pub syscall_timeout: SimDuration,
    /// Application-level retry budget per file-system I/O operation.
    pub fs_io_retries: u32,
    /// Application-level retry budget per face-verification stage.
    pub fv_retries: u32,
    /// Application-level retry budget per composition-pipeline stage.
    pub stage_retries: u32,
}

impl RetryPolicy {
    /// Retransmission backoff: `rto_base * 2^attempt`, saturating.
    pub fn rto(&self, attempt: u32) -> SimDuration {
        let shift = attempt.min(16);
        SimDuration::from_nanos(self.rto_base.as_nanos().saturating_mul(1u64 << shift))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            rto_base: SimDuration::from_micros(30),
            max_attempts: 5,
            ack_timeout: SimDuration::from_millis(1),
            syscall_timeout: SimDuration::from_millis(5),
            fs_io_retries: 4,
            fv_retries: 4,
            stage_retries: 3,
        }
    }
}

/// Calibrated model parameters. Construct via [`NetParams::paper`] for the
/// paper's testbed (Table 2) or tweak fields for sensitivity studies.
#[derive(Debug, Clone)]
pub struct NetParams {
    /// One-way small-message latency through the local NIC loopback path
    /// (Process ↔ Controller on the same node still traverse an RoCE QP,
    /// §4 "Processes are decoupled from their Controller via an RoCE queue
    /// pair"). Calibrated: 2 × 1.21 µs = 2.42 µs raw loopback RTT.
    pub local_oneway: SimDuration,
    /// One-way small-message latency across the switched fabric between two
    /// nodes. Calibrated: 2 × 1.65 µs = 3.3 µs 1-byte RDMA round trip.
    pub remote_oneway: SimDuration,
    /// Extra latency for each traversal into/out of an endpoint that sits
    /// behind an additional PCIe crossing (sNIC ARM complex, GPU, NVMe).
    /// Calibrated: raw loopback to sNIC = 2.42 + 2 × 0.63 = 3.68 µs.
    pub pcie_hop: SimDuration,
    /// Network line rate in bytes/second (10 Gbps fabric, Table 2).
    pub net_bandwidth: f64,
    /// PCIe bandwidth in bytes/second (Gen3 x8-ish for the K80 testbed).
    pub pcie_bandwidth: f64,
    /// Loopback (intra-node NIC) bandwidth in bytes/second.
    pub local_bandwidth: f64,
    /// FractOS per-message software handling on a host CPU (null syscall
    /// adds 2 × 0.29 µs over raw loopback: 3.00 µs total).
    pub fractos_handling_cpu: SimDuration,
    /// Multiplier for FractOS software costs when the code runs on the sNIC
    /// ARM cores. Calibrated so the null op costs 4.50 µs on the sNIC:
    /// (4.50 − 3.68) / (3.00 − 2.42) ≈ 1.41 for the null path; heavier
    /// operations (serialization, atomics-rich capability lookups) use the
    /// dedicated constants below, which embed larger factors from Figs 6–7.
    pub snic_handling_factor: f64,
    /// Request-handling software cost, both directions combined, on a CPU
    /// (Fig 6: +1.41 µs over null-op path).
    pub request_handling_cpu: SimDuration,
    /// Request-handling software cost on the sNIC (Fig 6: +5.11 µs).
    pub request_handling_snic: SimDuration,
    /// Request (de)serialization cost when crossing the network, CPU
    /// deployment (Fig 6: +4.41 µs).
    pub request_serialize_cpu: SimDuration,
    /// Request (de)serialization cost when crossing the network, sNIC
    /// deployment (Fig 6: +12.21 µs).
    pub request_serialize_snic: SimDuration,
    /// Capability (de)serialization per delegated capability, CPU (Fig 7).
    pub cap_serialize_cpu: SimDuration,
    /// Capability (de)serialization per delegated capability, sNIC (Fig 7).
    pub cap_serialize_snic: SimDuration,
    /// Controller-side processing per RDMA bounce operation during
    /// `memory_copy` (Fig 5: 1-byte copy = 12.7 µs on CPU; see
    /// `fractos-core::controller` for the full decomposition).
    pub memcopy_proc_cpu: SimDuration,
    /// Same on the sNIC (Fig 5: 24.5 µs for 1 byte).
    pub memcopy_proc_snic: SimDuration,
    /// Memcpy bandwidth of the bounce-buffer path on a host CPU, in
    /// bytes/second. Each bounced chunk is copied into and out of the
    /// Controller's RoCE buffers, costing CPU time that bounds mediated
    /// throughput below line rate (Fig 11: the FS and the baseline yield
    /// ~20% less than DAX, which skips one bounce traversal).
    pub bounce_memcpy_cpu: f64,
    /// Same on the sNIC ARM cores.
    pub bounce_memcpy_snic: f64,
    /// Chunk size threshold above which `memory_copy` double-buffers
    /// (prototype uses 16 KiB, §6.1).
    pub double_buffer_threshold: u64,
    /// Chunk size used when double buffering.
    pub double_buffer_chunk: u64,
    /// Extra one-way latency for messages between nodes in *different
    /// racks* (aggregation-switch traversal). Zero — the paper's testbed
    /// hangs off a single ToR switch — unless a sensitivity study sets it.
    /// The extra joins the route base (and so jitters with it) and widens
    /// the sharded engine's per-link lookahead for cross-rack node pairs;
    /// see [`NetParams::link_lookahead_matrix`].
    pub cross_rack_extra: SimDuration,
    /// Multiplicative latency jitter amplitude (uniform ±frac); the paper
    /// reports all stddevs below 3% of the mean.
    pub jitter_frac: f64,
    /// When true, Controllers use third-party RDMA offload ("HW copies" in
    /// Fig 5) instead of bounce buffers for `memory_copy`.
    pub third_party_rdma: bool,
    /// When true, Controllers sleep when idle and pay a wake-up cost on the
    /// next message (§4 lists "a dynamic poll/interrupt model" as the next
    /// step beyond the prototype's 2 polling cores).
    pub controller_interrupts: bool,
    /// Interrupt wake-up latency (IRQ delivery + scheduler).
    pub interrupt_wakeup: SimDuration,
    /// Idle time after which a Controller stops polling and sleeps.
    pub poll_window: SimDuration,
    /// When true, Controllers verify integrity envelopes at `memory_copy`
    /// completion (models the NIC/device inline CRC check, so it adds no
    /// simulated time). Off, an in-flight bit flip lands silently — used
    /// by tests to prove the envelope is what catches corruption.
    pub end_to_end_integrity: bool,
    /// Retransmission and retry budgets for the control plane and the
    /// services built on it (see [`RetryPolicy`]).
    pub retry: RetryPolicy,
}

impl NetParams {
    /// Parameters calibrated to the paper's testbed (Table 2).
    pub fn paper() -> Self {
        NetParams {
            local_oneway: SimDuration::from_nanos(1_210),
            remote_oneway: SimDuration::from_nanos(1_650),
            pcie_hop: SimDuration::from_nanos(630),
            net_bandwidth: 1.25e9,  // 10 Gbps
            pcie_bandwidth: 8.0e9,  // ~PCIe 3.0 x8
            local_bandwidth: 3.0e9, // NIC loopback
            fractos_handling_cpu: SimDuration::from_nanos(290),
            snic_handling_factor: 1.41,
            request_handling_cpu: SimDuration::from_nanos(1_410),
            request_handling_snic: SimDuration::from_nanos(5_110),
            request_serialize_cpu: SimDuration::from_nanos(4_410),
            request_serialize_snic: SimDuration::from_nanos(12_210),
            cap_serialize_cpu: SimDuration::from_nanos(2_400),
            cap_serialize_snic: SimDuration::from_nanos(3_800),
            memcopy_proc_cpu: SimDuration::from_nanos(2_800),
            memcopy_proc_snic: SimDuration::from_nanos(11_000),
            bounce_memcpy_cpu: 4.5e9,
            bounce_memcpy_snic: 3.0e9,
            double_buffer_threshold: 16 * 1024,
            double_buffer_chunk: 16 * 1024,
            cross_rack_extra: SimDuration::ZERO,
            jitter_frac: 0.0,
            third_party_rdma: false,
            controller_interrupts: false,
            interrupt_wakeup: SimDuration::from_micros(4),
            poll_window: SimDuration::from_micros(20),
            end_to_end_integrity: true,
            retry: RetryPolicy::default(),
        }
    }

    /// Paper parameters with a given jitter amplitude enabled.
    pub fn paper_with_jitter(frac: f64) -> Self {
        NetParams {
            jitter_frac: frac,
            ..Self::paper()
        }
    }

    /// Strict lower bound on the delay of any message between two *nodes*:
    /// the remote one-way base latency scaled by the worst-case jitter
    /// floor, minus one nanosecond to absorb rounding in the fabric's f64
    /// delay math. Serialization, PCIe hops, congestion, and handling
    /// costs only ever add to this bound.
    ///
    /// This is the conservative-lookahead window of the sharded runtime
    /// backend: a cross-node message sent at `t` can never take effect
    /// before `t + conservative_lookahead()`.
    pub fn conservative_lookahead(&self) -> SimDuration {
        self.lookahead_floor(self.remote_oneway)
    }

    /// Jitter-and-rounding-safe lower bound for a nominal one-way latency.
    fn lookahead_floor(&self, oneway: SimDuration) -> SimDuration {
        let floor = oneway * (1.0 - self.jitter_frac.clamp(0.0, 1.0));
        floor
            .saturating_sub(SimDuration::from_nanos(1))
            .max(SimDuration::from_nanos(1))
    }

    /// Per-link lookahead matrix for the sharded runtime backend: entry
    /// `[j][i]` is a strict lower bound on the delay of any message from
    /// an endpoint on node `j` to an endpoint on node `i`. Same-rack
    /// pairs use [`conservative_lookahead`](NetParams::conservative_lookahead);
    /// cross-rack pairs take the same jitter-floored bound over
    /// `remote_oneway + cross_rack_extra`, the nominal base the fabric
    /// charges on every inter-rack message — slow links buy the engine
    /// wider synchronization windows instead of throttling the cluster to
    /// the fastest link's bound. Diagonal entries are unused by the
    /// engine and hold the base bound.
    pub fn link_lookahead_matrix(&self, topology: &Topology) -> Vec<Vec<SimDuration>> {
        let base = self.conservative_lookahead();
        let wide = self.lookahead_floor(self.remote_oneway.saturating_add(self.cross_rack_extra));
        let n = topology.len();
        (0..n)
            .map(|j| {
                (0..n)
                    .map(|i| {
                        if i != j && topology.cross_rack(NodeId(j as u32), NodeId(i as u32)) {
                            wide
                        } else {
                            base
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// FractOS per-message handling cost in the given compute domain.
    pub fn fractos_handling(&self, domain: ComputeDomain) -> SimDuration {
        match domain {
            ComputeDomain::HostCpu => self.fractos_handling_cpu,
            ComputeDomain::SmartNic => self.fractos_handling_cpu * self.snic_handling_factor,
        }
    }

    /// Request-handling cost (both ways combined) in the given domain.
    pub fn request_handling(&self, domain: ComputeDomain) -> SimDuration {
        match domain {
            ComputeDomain::HostCpu => self.request_handling_cpu,
            ComputeDomain::SmartNic => self.request_handling_snic,
        }
    }

    /// Request network-(de)serialization cost in the given domain.
    pub fn request_serialize(&self, domain: ComputeDomain) -> SimDuration {
        match domain {
            ComputeDomain::HostCpu => self.request_serialize_cpu,
            ComputeDomain::SmartNic => self.request_serialize_snic,
        }
    }

    /// Per-capability (de)serialization cost in the given domain.
    pub fn cap_serialize(&self, domain: ComputeDomain) -> SimDuration {
        match domain {
            ComputeDomain::HostCpu => self.cap_serialize_cpu,
            ComputeDomain::SmartNic => self.cap_serialize_snic,
        }
    }

    /// Controller processing per bounce-RDMA op in the given domain.
    pub fn memcopy_proc(&self, domain: ComputeDomain) -> SimDuration {
        match domain {
            ComputeDomain::HostCpu => self.memcopy_proc_cpu,
            ComputeDomain::SmartNic => self.memcopy_proc_snic,
        }
    }

    /// Bounce-buffer memcpy bandwidth in the given domain, bytes/second.
    /// Snapshot this scalar when a long computation cannot keep borrowing
    /// the fabric's params, then price chunks with
    /// [`bounce_memcpy_at`](NetParams::bounce_memcpy_at).
    pub fn bounce_memcpy_bw(&self, domain: ComputeDomain) -> f64 {
        match domain {
            ComputeDomain::HostCpu => self.bounce_memcpy_cpu,
            ComputeDomain::SmartNic => self.bounce_memcpy_snic,
        }
    }

    /// CPU time to move `bytes` through the bounce buffers (two memcpys).
    pub fn bounce_memcpy(&self, domain: ComputeDomain, bytes: u64) -> SimDuration {
        Self::bounce_memcpy_at(self.bounce_memcpy_bw(domain), bytes)
    }

    /// [`bounce_memcpy`](NetParams::bounce_memcpy) priced at an already
    /// snapshotted bandwidth.
    pub fn bounce_memcpy_at(bw: f64, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(2.0 * bytes as f64 / bw)
    }
}

impl Default for NetParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rto_doubles_and_saturates() {
        let r = RetryPolicy::default();
        assert_eq!(r.rto(0), r.rto_base);
        assert_eq!(r.rto(1), SimDuration::from_micros(60));
        assert_eq!(r.rto(3), SimDuration::from_micros(240));
        // Far past the budget: still finite.
        assert!(r.rto(200) > r.rto(4));
    }

    /// The default policy must reproduce the historical constants exactly,
    /// or traces under the default parameters would diverge.
    #[test]
    fn retry_defaults_match_historical_constants() {
        let r = NetParams::paper().retry;
        assert_eq!(r.rto_base, SimDuration::from_micros(30));
        assert_eq!(r.max_attempts, 5);
        assert_eq!(r.ack_timeout, SimDuration::from_millis(1));
        assert_eq!(r.syscall_timeout, SimDuration::from_millis(5));
        assert_eq!((r.fs_io_retries, r.fv_retries, r.stage_retries), (4, 4, 3));
    }

    /// Raw loopback RTT @ CPU = 2 × local one-way = 2.42 µs (Table 3).
    #[test]
    fn anchors_raw_loopback_cpu() {
        let p = NetParams::paper();
        let rtt = p.local_oneway * 2;
        assert_eq!(rtt.as_nanos(), 2_420);
    }

    /// Raw loopback RTT @ sNIC = 2 × (local + PCIe hop) = 3.68 µs (Table 3).
    #[test]
    fn anchors_raw_loopback_snic() {
        let p = NetParams::paper();
        let rtt = (p.local_oneway + p.pcie_hop) * 2;
        assert_eq!(rtt.as_nanos(), 3_680);
    }

    /// FractOS null op @ CPU = loopback + 2 × handling = 3.00 µs (Table 3).
    #[test]
    fn anchors_null_op_cpu() {
        let p = NetParams::paper();
        let rtt = p.local_oneway * 2 + p.fractos_handling(ComputeDomain::HostCpu) * 2;
        assert_eq!(rtt.as_nanos(), 3_000);
    }

    /// FractOS null op @ sNIC ≈ 4.50 µs (Table 3).
    #[test]
    fn anchors_null_op_snic() {
        let p = NetParams::paper();
        let rtt =
            (p.local_oneway + p.pcie_hop) * 2 + p.fractos_handling(ComputeDomain::SmartNic) * 2;
        let us = rtt.as_micros_f64();
        assert!((us - 4.50).abs() < 0.1, "null op @ sNIC was {us:.3} µs");
    }

    /// 1-byte cross-node RDMA round trip = 3.3 µs (Fig 5 discussion).
    #[test]
    fn anchors_one_byte_rdma() {
        let p = NetParams::paper();
        let rtt = p.remote_oneway * 2;
        assert_eq!(rtt.as_nanos(), 3_300);
    }

    #[test]
    fn snic_costs_exceed_cpu_costs() {
        let p = NetParams::paper();
        for (cpu, snic) in [
            (
                p.request_handling(ComputeDomain::HostCpu),
                p.request_handling(ComputeDomain::SmartNic),
            ),
            (
                p.request_serialize(ComputeDomain::HostCpu),
                p.request_serialize(ComputeDomain::SmartNic),
            ),
            (
                p.cap_serialize(ComputeDomain::HostCpu),
                p.cap_serialize(ComputeDomain::SmartNic),
            ),
            (
                p.memcopy_proc(ComputeDomain::HostCpu),
                p.memcopy_proc(ComputeDomain::SmartNic),
            ),
        ] {
            assert!(snic > cpu);
        }
    }

    #[test]
    fn lookahead_matrix_widens_cross_rack_links() {
        use crate::topology::NodeConfig;
        let mut p = NetParams::paper();
        p.cross_rack_extra = SimDuration::from_micros(5);
        let mut t = Topology::new();
        t.add_node(NodeConfig::cpu_only("a"));
        t.add_node(NodeConfig::cpu_only("b"));
        t.add_node(NodeConfig::cpu_only("c").in_rack(1));
        let m = p.link_lookahead_matrix(&t);
        let base = p.conservative_lookahead();
        let wide = base + SimDuration::from_micros(5);
        assert_eq!(m[0][1], base);
        assert_eq!(m[1][0], base);
        assert_eq!(m[0][2], wide);
        assert_eq!(m[2][1], wide);
        // Zero extra (the default) collapses to the uniform bound.
        let uniform = NetParams::paper().link_lookahead_matrix(&t);
        assert!(uniform.iter().flatten().all(|&l| l == base));
    }

    #[test]
    fn line_rate_is_10_gbps() {
        let p = NetParams::paper();
        assert_eq!(p.net_bandwidth, 1.25e9);
        // 256 KiB at line rate ≈ 210 µs — the regime where Fig 5 reaches
        // full throughput.
        let t = SimDuration::from_secs_f64(256.0 * 1024.0 / p.net_bandwidth);
        assert!(t.as_micros_f64() > 200.0 && t.as_micros_f64() < 215.0);
    }
}
