//! Shared RPC conventions of the device adaptors.
//!
//! Every device RPC is a FractOS Request. Immediate arguments are 8-byte
//! little-endian integers; capability arguments follow the per-RPC
//! conventions documented on each tag constant. Results travel by the
//! continuation idiom: the caller appends one (or two: success/error)
//! continuation Requests, and the adaptor replies by refining and invoking
//! them (§3.4, §5).

use fractos_core::prelude::Payload;

/// GPU adaptor (§5 "Accelerator Service: GPU"): context initialization.
///
/// Caps: `[continuation]`. Reply caps: `[alloc Request, load Request]` bound
/// to the fresh context.
pub const TAG_GPU_INIT: u64 = 0x0100;

/// GPU memory allocation. Imms (appended by client): `[size]`.
/// Caps: `[continuation]`. Reply caps: `[Memory]` in GPU memory.
pub const TAG_GPU_ALLOC: u64 = 0x0101;

/// GPU kernel load. Imms: `[kernel id]`. Caps: `[continuation]`.
/// Reply caps: `[kernel-invocation Request]`.
pub const TAG_GPU_LOAD: u64 = 0x0102;

/// GPU kernel invocation. Imms: `[kernel id (preset)] ++ kernel params`.
/// Caps: `[input Memory, output Memory, success Request, error Request]`
/// (§5: "the GPU-kernel invocation Requests expect two Request arguments
/// used to signal success/error ... all other immediate arguments are
/// forwarded to the GPU kernel itself").
pub const TAG_GPU_INVOKE: u64 = 0x0103;

/// GPU context teardown. Imms: `[context id (preset)]`.
pub const TAG_GPU_FINI: u64 = 0x0104;

/// Block-device adaptor (§5 "Storage Stack"): create a logical volume.
/// Imms: `[size]`. Caps: `[continuation]`. Reply caps:
/// `[read Request, write Request]` bound to the volume.
pub const TAG_BLK_CREATE_VOL: u64 = 0x0200;

/// Volume read. Imms: `[volume (preset), offset, size]`.
/// Caps: `[destination Memory, success Request, error Request]`.
pub const TAG_BLK_READ: u64 = 0x0201;

/// Volume write. Imms: `[volume (preset), offset, size]`.
/// Caps: `[source Memory, success Request, error Request]`.
pub const TAG_BLK_WRITE: u64 = 0x0202;

/// Typed error codes carried in the first appended immediate of a device
/// adaptor's error-continuation reply (§3.6: adaptors translate device
/// failures into typed error invocations the caller can act on).
///
/// The discriminant is the wire code: `DevError::Media as u64` is what
/// `imm_at(&req.imms, N)` yields at the error continuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum DevError {
    /// The request was malformed: wrong capability count or undecodable
    /// immediates. Not recoverable by retrying the same request.
    BadRequest = 1,
    /// The transfer exceeds the adaptor's staging capacity.
    TooLarge = 2,
    /// The volume/offset/size triple falls outside the volume, or the
    /// context/volume does not exist.
    Bounds = 3,
    /// A `memory_copy` leg of the operation failed (revoked window,
    /// unreachable peer, or an integrity-envelope mismatch in flight).
    /// Recoverable when the cause is transient.
    Transfer = 4,
    /// The requested GPU kernel is not loaded.
    NoKernel = 5,
    /// A GPU input/output buffer capability failed to stat or read.
    BadBuffer = 6,
    /// An injected (or real) NVMe media error. Recoverable: the adaptor's
    /// caller may re-issue the read/write.
    Media = 7,
    /// A GPU kernel launch failure. Recoverable by relaunching.
    Launch = 8,
    /// The payload failed its integrity envelope at a consumption
    /// boundary (torn write, corrupted output). Recoverable: re-running
    /// the producing operation re-stamps the envelope.
    Integrity = 9,
}

impl DevError {
    /// The wire code of this error.
    pub fn code(self) -> u64 {
        self as u64
    }

    /// The immediate encoding of this error.
    pub fn imm(self) -> Payload {
        imm(self.code())
    }

    /// Decodes a wire code.
    pub fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            1 => DevError::BadRequest,
            2 => DevError::TooLarge,
            3 => DevError::Bounds,
            4 => DevError::Transfer,
            5 => DevError::NoKernel,
            6 => DevError::BadBuffer,
            7 => DevError::Media,
            8 => DevError::Launch,
            9 => DevError::Integrity,
            _ => return None,
        })
    }

    /// Whether re-issuing the same operation can plausibly succeed
    /// (transient device/transfer faults, as opposed to malformed or
    /// out-of-bounds requests, which fail identically every time).
    pub fn is_recoverable(self) -> bool {
        matches!(
            self,
            DevError::Transfer | DevError::Media | DevError::Launch | DevError::Integrity
        )
    }
}

/// Encodes an integer immediate.
pub fn imm(v: u64) -> Payload {
    Payload::from(v.to_le_bytes())
}

/// Decodes the `i`-th immediate as an integer, if present and well-formed.
pub fn imm_at(imms: &[Payload], i: usize) -> Option<u64> {
    imms.get(i)
        .and_then(|b| <[u8; 8]>::try_from(b.as_slice()).ok())
        .map(u64::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imm_roundtrip() {
        let imms = vec![imm(7), imm(u64::MAX), vec![1, 2].into()];
        assert_eq!(imm_at(&imms, 0), Some(7));
        assert_eq!(imm_at(&imms, 1), Some(u64::MAX));
        assert_eq!(imm_at(&imms, 2), None, "short immediates rejected");
        assert_eq!(imm_at(&imms, 3), None);
    }

    #[test]
    fn dev_error_codes_roundtrip() {
        for e in [
            DevError::BadRequest,
            DevError::TooLarge,
            DevError::Bounds,
            DevError::Transfer,
            DevError::NoKernel,
            DevError::BadBuffer,
            DevError::Media,
            DevError::Launch,
            DevError::Integrity,
        ] {
            assert_eq!(DevError::from_code(e.code()), Some(e));
            assert_eq!(imm_at(&[e.imm()], 0), Some(e.code()));
        }
        assert_eq!(DevError::from_code(0), None);
        assert_eq!(DevError::from_code(99), None);
        assert!(DevError::Media.is_recoverable());
        assert!(!DevError::Bounds.is_recoverable());
    }
}
