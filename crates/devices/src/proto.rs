//! Shared RPC conventions of the device adaptors.
//!
//! Every device RPC is a FractOS Request. Immediate arguments are 8-byte
//! little-endian integers; capability arguments follow the per-RPC
//! conventions documented on each tag constant. Results travel by the
//! continuation idiom: the caller appends one (or two: success/error)
//! continuation Requests, and the adaptor replies by refining and invoking
//! them (§3.4, §5).

/// GPU adaptor (§5 "Accelerator Service: GPU"): context initialization.
///
/// Caps: `[continuation]`. Reply caps: `[alloc Request, load Request]` bound
/// to the fresh context.
pub const TAG_GPU_INIT: u64 = 0x0100;

/// GPU memory allocation. Imms (appended by client): `[size]`.
/// Caps: `[continuation]`. Reply caps: `[Memory]` in GPU memory.
pub const TAG_GPU_ALLOC: u64 = 0x0101;

/// GPU kernel load. Imms: `[kernel id]`. Caps: `[continuation]`.
/// Reply caps: `[kernel-invocation Request]`.
pub const TAG_GPU_LOAD: u64 = 0x0102;

/// GPU kernel invocation. Imms: `[kernel id (preset)] ++ kernel params`.
/// Caps: `[input Memory, output Memory, success Request, error Request]`
/// (§5: "the GPU-kernel invocation Requests expect two Request arguments
/// used to signal success/error ... all other immediate arguments are
/// forwarded to the GPU kernel itself").
pub const TAG_GPU_INVOKE: u64 = 0x0103;

/// GPU context teardown. Imms: `[context id (preset)]`.
pub const TAG_GPU_FINI: u64 = 0x0104;

/// Block-device adaptor (§5 "Storage Stack"): create a logical volume.
/// Imms: `[size]`. Caps: `[continuation]`. Reply caps:
/// `[read Request, write Request]` bound to the volume.
pub const TAG_BLK_CREATE_VOL: u64 = 0x0200;

/// Volume read. Imms: `[volume (preset), offset, size]`.
/// Caps: `[destination Memory, success Request, error Request]`.
pub const TAG_BLK_READ: u64 = 0x0201;

/// Volume write. Imms: `[volume (preset), offset, size]`.
/// Caps: `[source Memory, success Request, error Request]`.
pub const TAG_BLK_WRITE: u64 = 0x0202;

/// Encodes an integer immediate.
pub fn imm(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

/// Decodes the `i`-th immediate as an integer, if present and well-formed.
pub fn imm_at(imms: &[Vec<u8>], i: usize) -> Option<u64> {
    imms.get(i)
        .and_then(|b| <[u8; 8]>::try_from(b.as_slice()).ok())
        .map(u64::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imm_roundtrip() {
        let imms = vec![imm(7), imm(u64::MAX), vec![1, 2]];
        assert_eq!(imm_at(&imms, 0), Some(7));
        assert_eq!(imm_at(&imms, 1), Some(u64::MAX));
        assert_eq!(imm_at(&imms, 2), None, "short immediates rejected");
        assert_eq!(imm_at(&imms, 3), None);
    }
}
