//! Shared RPC conventions of the device adaptors.
//!
//! Every device RPC is a FractOS Request. Immediate arguments are 8-byte
//! little-endian integers; capability arguments follow the per-RPC
//! conventions documented on each tag constant. Results travel by the
//! continuation idiom: the caller appends one (or two: success/error)
//! continuation Requests, and the adaptor replies by refining and invoking
//! them (§3.4, §5).

use fractos_core::prelude::Payload;
use fractos_core::wire::codes;

/// GPU adaptor (§5 "Accelerator Service: GPU"): context initialization.
///
/// Caps: `[continuation]`. Reply caps: `[alloc Request, load Request]` bound
/// to the fresh context.
pub const TAG_GPU_INIT: u64 = 0x0100;

/// GPU memory allocation. Imms (appended by client): `[size]`.
/// Caps: `[continuation]`. Reply caps: `[Memory]` in GPU memory.
pub const TAG_GPU_ALLOC: u64 = 0x0101;

/// GPU kernel load. Imms: `[kernel id]`. Caps: `[continuation]`.
/// Reply caps: `[kernel-invocation Request]`.
pub const TAG_GPU_LOAD: u64 = 0x0102;

/// GPU kernel invocation. Imms: `[kernel id (preset)] ++ kernel params`.
/// Caps: `[input Memory, output Memory, success Request, error Request]`
/// (§5: "the GPU-kernel invocation Requests expect two Request arguments
/// used to signal success/error ... all other immediate arguments are
/// forwarded to the GPU kernel itself").
pub const TAG_GPU_INVOKE: u64 = 0x0103;

/// GPU context teardown. Imms: `[context id (preset)]`.
pub const TAG_GPU_FINI: u64 = 0x0104;

/// Block-device adaptor (§5 "Storage Stack"): create a logical volume.
/// Imms: `[size]`. Caps: `[continuation]`. Reply caps:
/// `[read Request, write Request]` bound to the volume.
pub const TAG_BLK_CREATE_VOL: u64 = 0x0200;

/// Volume read. Imms: `[volume (preset), offset, size]`.
/// Caps: `[destination Memory, success Request, error Request]`.
pub const TAG_BLK_READ: u64 = 0x0201;

/// Volume write. Imms: `[volume (preset), offset, size]`.
/// Caps: `[source Memory, success Request, error Request]`.
pub const TAG_BLK_WRITE: u64 = 0x0202;

/// Typed error codes carried in the first appended immediate of a device
/// adaptor's error-continuation reply (§3.6: adaptors translate device
/// failures into typed error invocations the caller can act on).
///
/// The discriminant is the wire code: `DevError::Media as u64` is what
/// `imm_at(&req.imms, N)` yields at the error continuation. The codes
/// themselves live in the [`fractos_core::wire::codes`] registry (`DEV_*`
/// group) so the wire-conformance pass can check mint and decode sites
/// across crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum DevError {
    /// The request was malformed: wrong capability count or undecodable
    /// immediates. Not recoverable by retrying the same request.
    BadRequest = codes::DEV_BAD_REQUEST,
    /// The transfer exceeds the adaptor's staging capacity.
    TooLarge = codes::DEV_TOO_LARGE,
    /// The volume/offset/size triple falls outside the volume, or the
    /// context/volume does not exist.
    Bounds = codes::DEV_BOUNDS,
    /// A `memory_copy` leg of the operation failed (revoked window,
    /// unreachable peer, or an integrity-envelope mismatch in flight).
    /// Recoverable when the cause is transient.
    Transfer = codes::DEV_TRANSFER,
    /// The requested GPU kernel is not loaded.
    NoKernel = codes::DEV_NO_KERNEL,
    /// A GPU input/output buffer capability failed to stat or read.
    BadBuffer = codes::DEV_BAD_BUFFER,
    /// An injected (or real) NVMe media error. Recoverable: the adaptor's
    /// caller may re-issue the read/write.
    Media = codes::DEV_MEDIA,
    /// A GPU kernel launch failure. Recoverable by relaunching.
    Launch = codes::DEV_LAUNCH,
    /// The payload failed its integrity envelope at a consumption
    /// boundary (torn write, corrupted output). Recoverable: re-running
    /// the producing operation re-stamps the envelope.
    Integrity = codes::DEV_INTEGRITY,
}

impl DevError {
    /// The wire code of this error.
    pub fn code(self) -> u64 {
        self as u64
    }

    /// The immediate encoding of this error.
    pub fn imm(self) -> Payload {
        imm(self.code())
    }

    /// Decodes a wire code.
    pub fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            codes::DEV_BAD_REQUEST => DevError::BadRequest,
            codes::DEV_TOO_LARGE => DevError::TooLarge,
            codes::DEV_BOUNDS => DevError::Bounds,
            codes::DEV_TRANSFER => DevError::Transfer,
            codes::DEV_NO_KERNEL => DevError::NoKernel,
            codes::DEV_BAD_BUFFER => DevError::BadBuffer,
            codes::DEV_MEDIA => DevError::Media,
            codes::DEV_LAUNCH => DevError::Launch,
            codes::DEV_INTEGRITY => DevError::Integrity,
            _ => return None,
        })
    }

    /// Whether re-issuing the same operation can plausibly succeed
    /// (transient device/transfer faults, as opposed to malformed or
    /// out-of-bounds requests, which fail identically every time).
    pub fn is_recoverable(self) -> bool {
        matches!(
            self,
            DevError::Transfer | DevError::Media | DevError::Launch | DevError::Integrity
        )
    }
}

/// Encodes an integer immediate.
pub fn imm(v: u64) -> Payload {
    Payload::from(v.to_le_bytes())
}

/// Decodes the `i`-th immediate as an integer, if present and well-formed.
pub fn imm_at(imms: &[Payload], i: usize) -> Option<u64> {
    imms.get(i)
        .and_then(|b| <[u8; 8]>::try_from(b.as_slice()).ok())
        .map(u64::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imm_roundtrip() {
        let imms = vec![imm(7), imm(u64::MAX), vec![1, 2].into()];
        assert_eq!(imm_at(&imms, 0), Some(7));
        assert_eq!(imm_at(&imms, 1), Some(u64::MAX));
        assert_eq!(imm_at(&imms, 2), None, "short immediates rejected");
        assert_eq!(imm_at(&imms, 3), None);
    }

    #[test]
    fn dev_error_codes_roundtrip() {
        for e in [
            DevError::BadRequest,
            DevError::TooLarge,
            DevError::Bounds,
            DevError::Transfer,
            DevError::NoKernel,
            DevError::BadBuffer,
            DevError::Media,
            DevError::Launch,
            DevError::Integrity,
        ] {
            assert_eq!(DevError::from_code(e.code()), Some(e));
            assert_eq!(imm_at(&[e.imm()], 0), Some(e.code()));
        }
        assert_eq!(DevError::from_code(0), None);
        assert_eq!(DevError::from_code(99), None);
        assert!(DevError::Media.is_recoverable());
        assert!(!DevError::Bounds.is_recoverable());
    }
}
