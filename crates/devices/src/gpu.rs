//! Disaggregated GPU: device model, kernels, and the FractOS adaptor (§5).
//!
//! The adaptor is an ordinary FractOS Process on the GPU node's host CPU
//! that drives the device through its (simulated) driver. It exposes the
//! paper's RPCs — context init, memory allocation, kernel load, kernel
//! invocation — as Requests. GPU buffers live at the GPU endpoint, so data
//! transfers into them traverse network + PCIe like GPUDirect RDMA would.
//!
//! The device *computes for real*: a [`Kernel`] maps input bytes to output
//! bytes, so end-to-end tests verify results, while the timing model
//! (launch overhead + per-item compute, serialized per device like a
//! single-context K80) produces the Fig 9 latency/throughput shapes.

use std::collections::HashMap;
use std::sync::Arc;

use fractos_cap::{Cid, Perms};
use fractos_core::integrity::{flip_bit, fnv1a};
use fractos_core::prelude::*;
use fractos_core::types::Syscall;
use fractos_net::{DeviceFaultOutcome, DeviceOp, Endpoint};
use fractos_sim::{SimDuration, SimTime};

use crate::proto::{
    imm, imm_at, DevError, TAG_GPU_ALLOC, TAG_GPU_FINI, TAG_GPU_INIT, TAG_GPU_INVOKE, TAG_GPU_LOAD,
};

/// Timing model of the GPU (calibrated to a Tesla-K80-class device).
#[derive(Debug, Clone)]
pub struct GpuParams {
    /// Fixed kernel-launch overhead.
    pub launch_overhead: SimDuration,
    /// Compute time per work item (e.g. one image for face verification).
    pub per_item: SimDuration,
    /// Driver time for a context initialization.
    pub init_time: SimDuration,
    /// Driver time for a memory allocation.
    pub alloc_time: SimDuration,
    /// Driver time for loading a kernel module.
    pub load_time: SimDuration,
}

impl Default for GpuParams {
    fn default() -> Self {
        GpuParams {
            launch_overhead: SimDuration::from_micros(15),
            per_item: SimDuration::from_micros(12),
            init_time: SimDuration::from_micros(500),
            alloc_time: SimDuration::from_micros(20),
            load_time: SimDuration::from_micros(200),
        }
    }
}

/// A GPU kernel: a pure function over bytes plus a work-item count used by
/// the timing model. `Send + Sync` so adaptors holding kernels can live on
/// runtime worker threads.
pub trait Kernel: Send + Sync + 'static {
    /// Executes the kernel over `input` with integer `params`.
    fn run(&self, input: &[u8], params: &[u64]) -> Vec<u8>;

    /// Number of work items for the timing model (defaults to the first
    /// parameter, the paper's batch size).
    fn items(&self, input_len: u64, params: &[u64]) -> u64 {
        let _ = input_len;
        params.first().copied().unwrap_or(1).max(1)
    }
}

/// A trivial kernel that XORs every byte with a constant — used by tests to
/// verify real data flow through the GPU.
#[derive(Debug, Clone, Copy)]
pub struct XorKernel(pub u8);

impl Kernel for XorKernel {
    fn run(&self, input: &[u8], _params: &[u64]) -> Vec<u8> {
        input.iter().map(|b| b ^ self.0).collect()
    }
}

/// The GPU device model: serialized kernel execution with real compute.
#[derive(Debug)]
pub struct GpuDevice {
    params: GpuParams,
    busy_until: SimTime,
    kernels_executed: u64,
}

impl GpuDevice {
    /// A fresh device.
    pub fn new(params: GpuParams) -> Self {
        GpuDevice {
            params,
            busy_until: SimTime::ZERO,
            kernels_executed: 0,
        }
    }

    /// The timing parameters.
    pub fn params(&self) -> &GpuParams {
        &self.params
    }

    /// Total kernels executed (tests and benches).
    pub fn kernels_executed(&self) -> u64 {
        self.kernels_executed
    }

    /// Schedules a kernel of `items` work items submitted at `now`; returns
    /// the delay until completion. Execution is serialized on the device
    /// (single hardware queue — at high in-flight counts the GPU becomes
    /// the bottleneck, as in Fig 9 right).
    pub fn execute(&mut self, now: SimTime, items: u64) -> SimDuration {
        let exec = self.params.launch_overhead + self.params.per_item * items;
        let start = self.busy_until.max(now);
        let done = start + exec;
        self.busy_until = done;
        self.kernels_executed += 1;
        done.duration_since(now)
    }
}

struct GpuContext {
    /// Buffers allocated under this context: `(addr, size, cid)`.
    allocs: Vec<(u64, u64, Cid)>,
}

/// The GPU adaptor Process (§5): exposes the device as FractOS Requests.
pub struct GpuAdaptor {
    device: GpuDevice,
    gpu_endpoint: Endpoint,
    kernels: HashMap<u64, Arc<dyn Kernel>>,
    contexts: HashMap<u64, GpuContext>,
    next_ctx: u64,
    /// Registry key prefix under which the init Request is published
    /// (`"{prefix}.init"`).
    key_prefix: String,
    /// Completed kernel invocations (tests).
    pub invocations: u64,
    /// Contexts torn down after their client vanished (monitor-driven).
    pub reaped_contexts: u64,
    /// Control-plane setup operations (monitor arms, registry publishes)
    /// that failed. Surfaced as a metric instead of a debug-only assert
    /// so release builds do not silently degrade reaping/publication.
    pub setup_failures: u64,
}

impl GpuAdaptor {
    /// Creates an adaptor for a GPU at `gpu_endpoint`, publishing under
    /// `key_prefix` (e.g. `"gpu"` → `"gpu.init"`).
    pub fn new(params: GpuParams, gpu_endpoint: Endpoint, key_prefix: &str) -> Self {
        GpuAdaptor {
            device: GpuDevice::new(params),
            gpu_endpoint,
            kernels: HashMap::new(),
            contexts: HashMap::new(),
            next_ctx: 1,
            key_prefix: key_prefix.to_string(),
            invocations: 0,
            reaped_contexts: 0,
            setup_failures: 0,
        }
    }

    /// Registers a kernel under an id (simulating an installed module that
    /// `TAG_GPU_LOAD` makes invocable).
    pub fn with_kernel(mut self, id: u64, kernel: impl Kernel) -> Self {
        self.kernels.insert(id, Arc::new(kernel));
        self
    }

    /// The device model (tests/benches).
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    fn on_init(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let Some(&cont) = req.caps.first() else {
            return;
        };
        let ctx_id = self.next_ctx;
        self.next_ctx += 1;
        self.contexts
            .insert(ctx_id, GpuContext { allocs: Vec::new() });
        let init_time = self.device.params.init_time;
        fos.sleep_dev(init_time, "gpu.init", move |s: &mut Self, fos| {
            let _ = s;
            // Mint the per-context alloc and load Requests; their context id
            // is preset and immutable (refinement security, §3.4).
            fos.request_create_new(
                TAG_GPU_ALLOC,
                vec![imm(ctx_id)],
                vec![],
                move |_s, res, fos| {
                    let alloc_req = res.cid();
                    fos.request_create_new(
                        TAG_GPU_LOAD,
                        vec![imm(ctx_id)],
                        vec![],
                        move |_s: &mut Self, res, fos| {
                            let load_req = res.cid();
                            // Watch the alloc Request's delegations: when the
                            // client revokes (or dies), reap the context.
                            fos.call(
                                Syscall::MonitorDelegate {
                                    cid: alloc_req,
                                    callback_id: ctx_id,
                                },
                                move |s: &mut Self, res, fos| {
                                    if !res.is_ok() {
                                        // Reaping for this context is
                                        // degraded; the context still works.
                                        s.setup_failures += 1;
                                    }
                                    fos.reply_via(cont, vec![], vec![alloc_req, load_req]);
                                },
                            );
                        },
                    );
                },
            );
        });
    }

    fn on_alloc(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let (Some(ctx_id), Some(size), Some(&cont)) =
            (imm_at(&req.imms, 0), imm_at(&req.imms, 1), req.caps.first())
        else {
            return;
        };
        if !self.contexts.contains_key(&ctx_id) {
            return;
        }
        let alloc_time = self.device.params.alloc_time;
        let gpu_ep = self.gpu_endpoint;
        fos.sleep_dev(alloc_time, "gpu.alloc", move |_s: &mut Self, fos| {
            let addr = fos.mem_alloc_at(size, gpu_ep);
            fos.memory_create(addr, size, Perms::RW, move |s: &mut Self, res, fos| {
                let SyscallResult::NewCid(mem_cid) = res else {
                    return;
                };
                if let Some(ctx) = s.contexts.get_mut(&ctx_id) {
                    ctx.allocs.push((addr, size, mem_cid));
                }
                fos.reply_via(cont, vec![], vec![mem_cid]);
            });
        });
    }

    fn on_load(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let (Some(ctx_id), Some(kernel_id), Some(&cont)) =
            (imm_at(&req.imms, 0), imm_at(&req.imms, 1), req.caps.first())
        else {
            return;
        };
        if !self.contexts.contains_key(&ctx_id) || !self.kernels.contains_key(&kernel_id) {
            return;
        }
        let load_time = self.device.params.load_time;
        fos.sleep_dev(load_time, "gpu.load", move |_s: &mut Self, fos| {
            fos.request_create_new(
                TAG_GPU_INVOKE,
                vec![imm(ctx_id), imm(kernel_id)],
                vec![],
                move |_s: &mut Self, res, fos| {
                    let invoke_req = res.cid();
                    fos.reply_via(cont, vec![], vec![invoke_req]);
                },
            );
        });
    }

    fn on_invoke(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        // Imms: [ctx (preset), kernel (preset), params... , inline blob?];
        // caps: [input, output, success, error]. Eight-byte immediates are
        // integer kernel parameters; any other immediate is inline input
        // data prepended to the buffer contents ("all other immediate
        // arguments are forwarded to the GPU kernel itself", §5).
        let [input, output, success, error] = req.caps[..] else {
            // Wrong capability count: no identifiable error continuation.
            return;
        };
        let (Some(_ctx), Some(kernel_id)) = (imm_at(&req.imms, 0), imm_at(&req.imms, 1)) else {
            fos.reply_via(error, vec![DevError::BadRequest.imm()], vec![]);
            return;
        };
        let params: Vec<u64> = (2..req.imms.len())
            .filter_map(|i| imm_at(&req.imms, i))
            .collect();
        let inline: Vec<u8> = req.imms[2..]
            .iter()
            .filter(|b| b.len() != 8)
            .flat_map(|b| b.iter().copied())
            .collect();
        let Some(kernel) = self.kernels.get(&kernel_id).cloned() else {
            fos.reply_via(error, vec![DevError::NoKernel.imm()], vec![]);
            return;
        };
        // One fault-plan draw per launch, in the adaptor's serial op
        // order (replay contract).
        let fault = fos.device_fault(self.gpu_endpoint, DeviceOp::GpuLaunch);
        fos.telemetry_count("dev.gpu.launches", 1);
        if matches!(fault, DeviceFaultOutcome::Fail) {
            // Launch failure: the driver reports it after the launch
            // overhead; nothing executes.
            let overhead = self.device.params.launch_overhead;
            fos.sleep_dev(overhead, "gpu.launch", move |_s: &mut Self, fos| {
                fos.reply_via(error, vec![DevError::Launch.imm()], vec![]);
            });
            return;
        }
        // Resolve both buffers (they are in this adaptor's device memory),
        // then compute.
        fos.memory_stat(input, move |_s: &mut Self, res, fos| {
            let SyscallResult::Stat {
                addr: in_addr,
                off: in_off,
                size: in_size,
            } = res
            else {
                fos.reply_via(error, vec![DevError::BadBuffer.imm()], vec![]);
                return;
            };
            fos.memory_stat(output, move |s: &mut Self, res, fos| {
                let SyscallResult::Stat {
                    addr: out_addr,
                    off: out_off,
                    size: out_size,
                } = res
                else {
                    fos.reply_via(error, vec![DevError::BadBuffer.imm()], vec![]);
                    return;
                };
                // Launch: device executes serially; real bytes compute.
                let buffer = match fos.mem_read(in_addr, in_off, in_size) {
                    Ok(d) => d,
                    Err(_) => {
                        fos.reply_via(error, vec![DevError::Bounds.imm()], vec![]);
                        return;
                    }
                };
                let mut data = inline;
                data.extend_from_slice(&buffer);
                let items = kernel.items(data.len() as u64, &params);
                let mut delay = s.device.execute(fos.now(), items);
                if let DeviceFaultOutcome::Spike { factor } = fault {
                    delay = SimDuration::from_secs_f64(delay.as_secs_f64() * factor);
                }
                fos.sleep_dev(delay, "gpu.exec", move |s: &mut Self, fos| {
                    let mut out = kernel.run(&data, &params);
                    out.truncate(out_size as usize);
                    let n = out.len() as u64;
                    // Producer-side envelope over the computed output.
                    let sum = fnv1a(&out);
                    if let DeviceFaultOutcome::Corrupt { bit } = fault {
                        // ECC-escape: one flipped bit in the result.
                        flip_bit(&mut out, bit);
                    }
                    if fos.mem_write(out_addr, out_off, &out).is_err() {
                        fos.reply_via(error, vec![DevError::Bounds.imm()], vec![]);
                        return;
                    }
                    // Verify the delivered output against the envelope
                    // before signalling success; a mismatch is a typed,
                    // recoverable error (relaunch re-stamps it). The
                    // corrupt bytes stay in the buffer — exactly what an
                    // unchecked consumer would read.
                    let intact = fos
                        .mem_read(out_addr, out_off, n)
                        .is_ok_and(|back| fnv1a(&back) == sum);
                    if !intact {
                        fos.reply_via(error, vec![DevError::Integrity.imm()], vec![]);
                        return;
                    }
                    s.invocations += 1;
                    fos.reply_via(success, vec![imm(n)], vec![]);
                });
            });
        });
    }

    fn on_fini(&mut self, req: IncomingRequest, _fos: &Fos<Self>) {
        if let Some(ctx_id) = imm_at(&req.imms, 0) {
            self.contexts.remove(&ctx_id);
        }
    }
}

impl Service for GpuAdaptor {
    fn on_start(&mut self, fos: &Fos<Self>) {
        let key = format!("{}.init", self.key_prefix);
        fos.request_create_new(TAG_GPU_INIT, vec![], vec![], move |_s, res, fos| {
            fos.kv_put(&key, res.cid(), |s: &mut Self, res, _| {
                if !res.is_ok() {
                    s.setup_failures += 1;
                }
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        match req.tag {
            TAG_GPU_INIT => self.on_init(req, fos),
            TAG_GPU_ALLOC => self.on_alloc(req, fos),
            TAG_GPU_LOAD => self.on_load(req, fos),
            TAG_GPU_INVOKE => self.on_invoke(req, fos),
            TAG_GPU_FINI => self.on_fini(req, fos),
            _ => {}
        }
    }

    fn on_monitor(&mut self, cb: MonitorCb, _fos: &Fos<Self>) {
        // The per-context alloc Request drained: every client handle is
        // gone, so free the context's resources (§3.6 resource management).
        if let MonitorCb::DelegateDrained { callback_id } = cb {
            if self.contexts.remove(&callback_id).is_some() {
                self.reaped_contexts += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_serializes_kernels() {
        let mut dev = GpuDevice::new(GpuParams::default());
        let t0 = SimTime::ZERO;
        let d1 = dev.execute(t0, 10);
        let d2 = dev.execute(t0, 10);
        // 15 + 10*12 = 135 µs each; second queues behind the first.
        assert_eq!(d1.as_micros_f64(), 135.0);
        assert_eq!(d2.as_micros_f64(), 270.0);
        assert_eq!(dev.kernels_executed(), 2);
    }

    #[test]
    fn device_idles_between_batches() {
        let mut dev = GpuDevice::new(GpuParams::default());
        dev.execute(SimTime::ZERO, 1);
        // Submitting long after completion pays no queueing.
        let d = dev.execute(SimTime::from_nanos(1_000_000_000), 1);
        assert_eq!(d.as_micros_f64(), 27.0);
    }

    #[test]
    fn xor_kernel_computes() {
        let k = XorKernel(0xFF);
        assert_eq!(k.run(&[0x00, 0x0F], &[]), vec![0xFF, 0xF0]);
        assert_eq!(k.items(4096, &[16]), 16);
        assert_eq!(k.items(4096, &[]), 1);
    }
}
