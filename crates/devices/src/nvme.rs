//! Disaggregated NVMe SSD: device model and the block-device adaptor (§5).
//!
//! The device stores *real bytes* in logical volumes and models a Samsung
//! 970-EVO-Plus-class drive: ~70 µs 4 KiB random-read latency (the paper
//! notes "the NVMe latency dominates (70 usec)" for 4 KiB reads in Fig 10),
//! SLC-cache-absorbed writes, and bandwidth far above the 10 Gbps network so
//! that the fabric, not the device, bounds throughput (Fig 11).
//!
//! The adaptor exposes `create_vol` / `read` / `write` Requests. Volume ids
//! are *preset immediates* on the per-volume Requests, so a client can
//! refine offsets and buffers but can never redirect a Request at another
//! volume — the `0xcafe` block-number example of §3.4.

use std::collections::HashMap;

use fractos_cap::{Cid, Perms};
use fractos_core::integrity::ExtentSums;
use fractos_core::prelude::*;
use fractos_core::types::Syscall;
use fractos_net::{DeviceFaultOutcome, DeviceOp, Endpoint};
use fractos_sim::{SimDuration, SimTime};

use crate::proto::{imm, imm_at, DevError, TAG_BLK_CREATE_VOL, TAG_BLK_READ, TAG_BLK_WRITE};

/// Timing model of the NVMe device.
#[derive(Debug, Clone)]
pub struct NvmeParams {
    /// Base latency of a random read (flash array lookup).
    pub read_latency: SimDuration,
    /// Base latency of a write absorbed by the SLC cache.
    pub write_latency: SimDuration,
    /// Device read bandwidth in bytes/second.
    pub read_bandwidth: f64,
    /// Device write bandwidth in bytes/second.
    pub write_bandwidth: f64,
    /// Latency of a block-cache hit / cache-absorbed write in the kernel
    /// block layer (used by [`KernelCache`]).
    pub cache_latency: SimDuration,
}

impl Default for NvmeParams {
    fn default() -> Self {
        NvmeParams {
            read_latency: SimDuration::from_micros(67),
            write_latency: SimDuration::from_micros(15),
            read_bandwidth: 2.5e9,
            write_bandwidth: 1.5e9,
            cache_latency: SimDuration::from_micros(4),
        }
    }
}

/// Timing-only model of the Linux block cache in front of an NVMe-oF
/// device (§6.4's "Disaggregated Baseline"): writes are absorbed (ack
/// after the cache latency, write-back off the measured path), sequential
/// read streaks trigger read-ahead, and cached ranges skip the device.
///
/// Data always lands in the device immediately (the simulation keeps one
/// copy of the truth); the cache only decides what *latency* an access
/// pays.
#[derive(Debug, Default)]
pub struct KernelCache {
    /// 4 KiB pages currently resident.
    resident: std::collections::HashSet<u64>,
    last_page: Option<u64>,
    /// Cache hits (tests / Fig 10 discussion).
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

/// Cache page size.
pub const CACHE_PAGE: u64 = 4096;

/// Pages prefetched on a sequential streak (2 MiB, covering large
/// sequential I/Os like Fig 11's 1024 KiB blocks).
pub const CACHE_READAHEAD: u64 = 512;

impl KernelCache {
    /// A cold cache.
    pub fn new() -> Self {
        KernelCache::default()
    }

    /// Records a read of `[offset, offset+len)` on `vol`; returns `true`
    /// if it hits (device skipped). On a miss the range becomes resident,
    /// and a sequential streak makes the read-ahead window resident too.
    pub fn read(&mut self, vol: u64, offset: u64, len: u64) -> bool {
        let first = Self::page(vol, offset);
        let last = Self::page(vol, offset + len.max(1) - 1);
        let sequential = self.last_page.is_some_and(|p| p == first || p + 1 == first);
        self.last_page = Some(last);
        if (first..=last).all(|p| self.resident.contains(&p)) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        let ahead = if sequential { CACHE_READAHEAD } else { 0 };
        for p in first..=(last + ahead) {
            self.resident.insert(p);
        }
        false
    }

    /// Records a write: the range becomes resident (absorbed).
    pub fn write(&mut self, vol: u64, offset: u64, len: u64) {
        let first = Self::page(vol, offset);
        let last = Self::page(vol, offset + len.max(1) - 1);
        for p in first..=last {
            self.resident.insert(p);
        }
    }

    fn page(vol: u64, byte: u64) -> u64 {
        // Volumes are far smaller than 2^40 pages; pack (vol, page).
        (vol << 40) | (byte / CACHE_PAGE)
    }
}

/// Kind of a block operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockOp {
    /// Read from flash.
    Read,
    /// Write to flash (SLC-cache absorbed).
    Write,
}

/// The NVMe device model: logical volumes with real contents.
#[derive(Debug)]
pub struct NvmeDevice {
    params: NvmeParams,
    volumes: HashMap<u64, Vec<u8>>,
    next_vol: u64,
    busy_until: SimTime,
    /// Completed operations (tests/benches).
    pub ops: u64,
}

impl NvmeDevice {
    /// A fresh, empty device.
    pub fn new(params: NvmeParams) -> Self {
        NvmeDevice {
            params,
            volumes: HashMap::new(),
            next_vol: 1,
            busy_until: SimTime::ZERO,
            ops: 0,
        }
    }

    /// The timing parameters.
    pub fn params(&self) -> &NvmeParams {
        &self.params
    }

    /// Creates a zero-filled logical volume of `size` bytes; returns its id.
    pub fn create_volume(&mut self, size: u64) -> u64 {
        let id = self.next_vol;
        self.next_vol += 1;
        self.volumes.insert(id, vec![0; size as usize]);
        id
    }

    /// Size of a volume.
    pub fn volume_size(&self, vol: u64) -> Option<u64> {
        self.volumes.get(&vol).map(|v| v.len() as u64)
    }

    /// Frees a logical volume, returning whether it existed.
    pub fn delete_volume(&mut self, vol: u64) -> bool {
        self.volumes.remove(&vol).is_some()
    }

    /// Reads bytes without counting a host-visible operation — the
    /// adaptor's post-write CRC read-back, which runs inside the device
    /// and never crosses the block interface.
    pub fn peek(&self, vol: u64, offset: u64, len: u64) -> Result<Vec<u8>, FosError> {
        let v = self.volumes.get(&vol).ok_or(FosError::OutOfBounds)?;
        let start = offset as usize;
        let end = start + len as usize;
        if end > v.len() {
            return Err(FosError::OutOfBounds);
        }
        Ok(v[start..end].to_vec())
    }

    /// Reads bytes from a volume.
    pub fn read(&mut self, vol: u64, offset: u64, len: u64) -> Result<Vec<u8>, FosError> {
        let v = self.volumes.get(&vol).ok_or(FosError::OutOfBounds)?;
        let start = offset as usize;
        let end = start + len as usize;
        if end > v.len() {
            return Err(FosError::OutOfBounds);
        }
        self.ops += 1;
        Ok(v[start..end].to_vec())
    }

    /// Writes bytes into a volume.
    pub fn write(&mut self, vol: u64, offset: u64, data: &[u8]) -> Result<(), FosError> {
        let v = self.volumes.get_mut(&vol).ok_or(FosError::OutOfBounds)?;
        let start = offset as usize;
        let end = start + data.len();
        if end > v.len() {
            return Err(FosError::OutOfBounds);
        }
        v[start..end].copy_from_slice(data);
        self.ops += 1;
        Ok(())
    }

    /// Service-time model: base latency plus bandwidth occupancy, with the
    /// flash channels shared across outstanding operations.
    pub fn service_time(&mut self, now: SimTime, op: BlockOp, size: u64) -> SimDuration {
        let (base, bw) = match op {
            BlockOp::Read => (self.params.read_latency, self.params.read_bandwidth),
            BlockOp::Write => (self.params.write_latency, self.params.write_bandwidth),
        };
        let occupancy = SimDuration::from_secs_f64(size as f64 / bw);
        let start = self.busy_until.max(now);
        self.busy_until = start + occupancy;
        start.duration_since(now) + occupancy + base
    }
}

/// Staging-buffer pool entry.
struct Staging {
    addr: u64,
    cid: Cid,
    busy: bool,
}

/// The block-device adaptor Process (§5).
///
/// With [`BlockAdaptor::with_kernel_cache`] it instead models the in-kernel
/// NVMe-oF block stack of §6.4's "Disaggregated Baseline": same Request
/// interface and data path, but a Linux block cache absorbs writes and
/// read-ahead accelerates sequential reads.
pub struct BlockAdaptor {
    device: NvmeDevice,
    nvme_endpoint: Endpoint,
    key: String,
    staging: Vec<Staging>,
    staging_size: u64,
    kernel_cache: Option<KernelCache>,
    /// Integrity envelopes over committed extents, keyed by volume id:
    /// stamped with the *intended* payload at write commit, verified by
    /// the device-side read-back and again on exact-extent reads. A torn
    /// write therefore surfaces as [`DevError::Integrity`] instead of
    /// silently handing corrupt bytes to the reader.
    sums: ExtentSums,
    /// Completed reads and writes delivered to continuations (tests).
    pub completed: u64,
    /// Volumes reclaimed after their capability trees drained (§3.5).
    pub reaped_volumes: u64,
    /// Control-plane setup operations (monitor arms, registry publishes)
    /// that failed. Release builds must not silently discard these —
    /// reaping/publication is degraded, so they are surfaced as a metric
    /// instead of a debug-only assert.
    pub setup_failures: u64,
}

/// Default size of each staging buffer (covers the paper's largest I/O,
/// 1024 KiB in Fig 11).
pub const STAGING_BUF_SIZE: u64 = 1 << 20;

/// Number of pre-registered staging buffers.
pub const STAGING_POOL: usize = 8;

impl BlockAdaptor {
    /// Creates an adaptor for an NVMe drive at `nvme_endpoint`, publishing
    /// its `create_vol` Request under `"{key}.create_vol"`.
    pub fn new(params: NvmeParams, nvme_endpoint: Endpoint, key: &str) -> Self {
        BlockAdaptor {
            device: NvmeDevice::new(params),
            nvme_endpoint,
            key: key.to_string(),
            staging: Vec::new(),
            staging_size: STAGING_BUF_SIZE,
            kernel_cache: None,
            sums: ExtentSums::new(),
            completed: 0,
            reaped_volumes: 0,
            setup_failures: 0,
        }
    }

    /// Enables the kernel block-cache model (the NVMe-oF baseline).
    pub fn with_kernel_cache(mut self) -> Self {
        self.kernel_cache = Some(KernelCache::new());
        self
    }

    /// Cache statistics, if the kernel cache is enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.kernel_cache.as_ref().map(|c| (c.hits, c.misses))
    }

    /// The device model (tests/benches).
    pub fn device(&self) -> &NvmeDevice {
        &self.device
    }

    /// Mutable device access (harnesses pre-populating volumes).
    pub fn device_mut(&mut self) -> &mut NvmeDevice {
        &mut self.device
    }

    fn grab_staging(
        &mut self,
        fos: &Fos<Self>,
        k: impl FnOnce(&mut Self, usize, &Fos<Self>) + Send + 'static,
    ) {
        if let Some(i) = self.staging.iter().position(|s| !s.busy) {
            self.staging[i].busy = true;
            k(self, i, fos);
            return;
        }
        // Pool exhausted: register another buffer.
        let size = self.staging_size;
        let ep = self.nvme_endpoint;
        let addr = fos.mem_alloc_at(size, ep);
        fos.memory_create(addr, size, Perms::RW, move |s: &mut Self, res, fos| {
            let SyscallResult::NewCid(cid) = res else {
                return;
            };
            s.staging.push(Staging {
                addr,
                cid,
                busy: true,
            });
            let i = s.staging.len() - 1;
            k(s, i, fos);
        });
    }

    fn release_staging(&mut self, i: usize) {
        self.staging[i].busy = false;
    }

    fn on_create_vol(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let (Some(size), Some(&cont)) = (imm_at(&req.imms, 0), req.caps.first()) else {
            return;
        };
        let vol = self.device.create_volume(size);
        // Per-volume read/write Requests with the volume id preset. The
        // adaptor watches the read Request's delegations: once every holder
        // has revoked (or died), the volume's storage is reclaimed — the
        // §3.5 "free one of their blocks" pattern, driven entirely by the
        // capability machinery.
        fos.request_create_new(
            TAG_BLK_READ,
            vec![imm(vol)],
            vec![],
            move |_s: &mut Self, res, fos| {
                let read_req = res.cid();
                fos.request_create_new(
                    TAG_BLK_WRITE,
                    vec![imm(vol)],
                    vec![],
                    move |_s: &mut Self, res, fos| {
                        let write_req = res.cid();
                        fos.call(
                            fractos_core::types::Syscall::MonitorDelegate {
                                cid: read_req,
                                callback_id: vol,
                            },
                            move |s: &mut Self, res, fos| {
                                if !res.is_ok() {
                                    // Reaping for this volume is degraded;
                                    // the volume itself still works.
                                    s.setup_failures += 1;
                                }
                                fos.reply_via(cont, vec![imm(vol)], vec![read_req, write_req]);
                            },
                        );
                    },
                );
            },
        );
    }

    fn on_read(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let [dst, success, error] = req.caps[..] else {
            // Wrong capability count: there is no identifiable error
            // continuation to reply on, so the request is dropped.
            return;
        };
        let (Some(vol), Some(offset), Some(size)) = (
            imm_at(&req.imms, 0),
            imm_at(&req.imms, 1),
            imm_at(&req.imms, 2),
        ) else {
            fos.reply_via(error, vec![DevError::BadRequest.imm()], vec![]);
            return;
        };
        if size > self.staging_size {
            fos.reply_via(error, vec![DevError::TooLarge.imm()], vec![]);
            return;
        }
        // Device access first, then a third-party transfer into the
        // client-provided destination buffer. A kernel cache may absorb
        // the device access entirely.
        let hit = self
            .kernel_cache
            .as_mut()
            .is_some_and(|cache| cache.read(vol, offset, size));
        let mut delay = if hit {
            self.device.params().cache_latency
        } else {
            self.device.service_time(fos.now(), BlockOp::Read, size)
        };
        // One fault-plan draw per media read, in the adaptor's serial
        // op order (replay contract).
        let fault = fos.device_fault(self.nvme_endpoint, DeviceOp::NvmeRead);
        fos.telemetry_count("dev.nvme.reads", 1);
        if hit {
            fos.telemetry_count("dev.nvme.cache_hits", 1);
        }
        if let DeviceFaultOutcome::Spike { factor } = fault {
            delay = SimDuration::from_secs_f64(delay.as_secs_f64() * factor);
        }
        if matches!(fault, DeviceFaultOutcome::Fail) {
            // Media error: the flash array gives up only after the
            // access latency, as on real hardware.
            fos.sleep_dev(delay, "nvme.read", move |_s: &mut Self, fos| {
                fos.reply_via(error, vec![DevError::Media.imm()], vec![]);
            });
            return;
        }
        self.grab_staging(fos, move |s: &mut Self, slot, fos| {
            fos.sleep_dev(delay, "nvme.read", move |s: &mut Self, fos| {
                let data = match s.device.read(vol, offset, size) {
                    Ok(d) => d,
                    Err(_) => {
                        s.release_staging(slot);
                        fos.reply_via(error, vec![DevError::Bounds.imm()], vec![]);
                        return;
                    }
                };
                // Consumption-boundary check: if this exact extent was
                // stamped at write commit, verify its envelope before
                // handing the bytes to the client (catches torn writes
                // that persisted past the write-time read-back).
                if s.sums.verify(vol, offset, &data) == Some(false) {
                    s.release_staging(slot);
                    fos.reply_via(error, vec![DevError::Integrity.imm()], vec![]);
                    return;
                }
                let st = &s.staging[slot];
                let (st_addr, st_cid) = (st.addr, st.cid);
                fos.mem_write(st_addr, 0, &data).expect("staging write");
                // A sized view of the staging buffer, so the copy moves
                // exactly `size` bytes.
                fos.call(
                    Syscall::MemoryDiminish {
                        cid: st_cid,
                        offset: 0,
                        size,
                        drop_perms: Perms::NONE,
                    },
                    move |_s: &mut Self, res, fos| {
                        let SyscallResult::NewCid(view) = res else {
                            return;
                        };
                        fos.memory_copy(view, dst, move |s: &mut Self, res, fos| {
                            s.release_staging(slot);
                            // Drop the transient view.
                            fos.call_ignore(Syscall::CapRevoke { cid: view });
                            match res {
                                SyscallResult::Ok => {
                                    s.completed += 1;
                                    fos.reply_via(success, vec![imm(size)], vec![]);
                                }
                                SyscallResult::Err(FosError::IntegrityViolation) => {
                                    fos.reply_via(error, vec![DevError::Integrity.imm()], vec![])
                                }
                                _ => fos.reply_via(error, vec![DevError::Transfer.imm()], vec![]),
                            }
                        });
                    },
                );
            });
            let _ = s;
        });
    }

    fn on_write(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let [src, success, error] = req.caps[..] else {
            return;
        };
        let (Some(vol), Some(offset), Some(size)) = (
            imm_at(&req.imms, 0),
            imm_at(&req.imms, 1),
            imm_at(&req.imms, 2),
        ) else {
            fos.reply_via(error, vec![DevError::BadRequest.imm()], vec![]);
            return;
        };
        if size > self.staging_size {
            fos.reply_via(error, vec![DevError::TooLarge.imm()], vec![]);
            return;
        }
        self.grab_staging(fos, move |s: &mut Self, slot, fos| {
            let st = &s.staging[slot];
            let (st_addr, st_cid) = (st.addr, st.cid);
            // Pull the client's data into the staging buffer (third-party
            // transfer), then commit to flash.
            fos.call(
                Syscall::MemoryDiminish {
                    cid: st_cid,
                    offset: 0,
                    size,
                    drop_perms: Perms::NONE,
                },
                move |_s: &mut Self, res, fos| {
                    let SyscallResult::NewCid(view) = res else {
                        return;
                    };
                    fos.memory_copy(src, view, move |s: &mut Self, res, fos| {
                        fos.call_ignore(Syscall::CapRevoke { cid: view });
                        match res {
                            SyscallResult::Ok => {}
                            SyscallResult::Err(FosError::IntegrityViolation) => {
                                s.release_staging(slot);
                                fos.reply_via(error, vec![DevError::Integrity.imm()], vec![]);
                                return;
                            }
                            _ => {
                                s.release_staging(slot);
                                fos.reply_via(error, vec![DevError::Transfer.imm()], vec![]);
                                return;
                            }
                        }
                        let data = fos.mem_read(st_addr, 0, size).expect("staging read");
                        // One fault-plan draw per media write (replay
                        // contract: serial adaptor op order).
                        let fault = fos.device_fault(s.nvme_endpoint, DeviceOp::NvmeWrite);
                        fos.telemetry_count("dev.nvme.writes", 1);
                        let mut delay = match s.kernel_cache.as_mut() {
                            Some(cache) => {
                                // Absorbed: ack after the cache latency;
                                // write-back runs off the measured path.
                                cache.write(vol, offset, size);
                                s.device.params().cache_latency
                            }
                            None => s.device.service_time(fos.now(), BlockOp::Write, size),
                        };
                        if let DeviceFaultOutcome::Spike { factor } = fault {
                            delay = SimDuration::from_secs_f64(delay.as_secs_f64() * factor);
                        }
                        fos.sleep_dev(delay, "nvme.write", move |s: &mut Self, fos| {
                            s.release_staging(slot);
                            if matches!(fault, DeviceFaultOutcome::Fail) {
                                fos.reply_via(error, vec![DevError::Media.imm()], vec![]);
                                return;
                            }
                            // A torn write persists only a prefix of the
                            // payload; the envelope below catches it.
                            let commit: &[u8] = match fault {
                                DeviceFaultOutcome::Torn { keep_frac } => {
                                    let keep = (size as f64 * keep_frac) as usize;
                                    &data[..keep.min(data.len())]
                                }
                                _ => &data,
                            };
                            match s.device.write(vol, offset, commit) {
                                Ok(()) => {
                                    // Stamp the *intended* payload's
                                    // envelope, then read back and verify
                                    // — the device-side CRC that turns a
                                    // torn write into a typed, recoverable
                                    // error the caller can re-issue.
                                    s.sums.stamp(vol, offset, &data);
                                    let intact =
                                        s.device.peek(vol, offset, size).is_ok_and(|back| {
                                            s.sums.verify(vol, offset, &back) == Some(true)
                                        });
                                    if !intact {
                                        fos.reply_via(
                                            error,
                                            vec![DevError::Integrity.imm()],
                                            vec![],
                                        );
                                        return;
                                    }
                                    s.completed += 1;
                                    fos.reply_via(success, vec![imm(size)], vec![]);
                                }
                                Err(_) => {
                                    fos.reply_via(error, vec![DevError::Bounds.imm()], vec![])
                                }
                            }
                        });
                    });
                },
            );
        });
    }
}

impl Service for BlockAdaptor {
    fn on_monitor(&mut self, cb: MonitorCb, _fos: &Fos<Self>) {
        if let MonitorCb::DelegateDrained { callback_id: vol } = cb {
            if self.device.delete_volume(vol) {
                self.sums.forget(vol);
                self.reaped_volumes += 1;
            }
        }
    }

    fn on_start(&mut self, fos: &Fos<Self>) {
        // Pre-register the staging pool (the prototype's bounce buffers).
        let size = self.staging_size;
        let ep = self.nvme_endpoint;
        for _ in 0..STAGING_POOL {
            let addr = fos.mem_alloc_at(size, ep);
            fos.memory_create(addr, size, Perms::RW, move |s: &mut Self, res, _fos| {
                if let SyscallResult::NewCid(cid) = res {
                    s.staging.push(Staging {
                        addr,
                        cid,
                        busy: false,
                    });
                }
            });
        }
        let key = format!("{}.create_vol", self.key);
        fos.request_create_new(TAG_BLK_CREATE_VOL, vec![], vec![], move |_s, res, fos| {
            fos.kv_put(&key, res.cid(), |s: &mut Self, res, _| {
                if !res.is_ok() {
                    s.setup_failures += 1;
                }
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        match req.tag {
            TAG_BLK_CREATE_VOL => self.on_create_vol(req, fos),
            TAG_BLK_READ => self.on_read(req, fos),
            TAG_BLK_WRITE => self.on_write(req, fos),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_read_write_roundtrip() {
        let mut dev = NvmeDevice::new(NvmeParams::default());
        let vol = dev.create_volume(4096);
        dev.write(vol, 100, b"hello nvme").unwrap();
        assert_eq!(dev.read(vol, 100, 10).unwrap(), b"hello nvme");
        assert_eq!(dev.read(vol, 0, 4).unwrap(), vec![0; 4]);
        assert_eq!(dev.ops, 3);
    }

    #[test]
    fn bounds_checked() {
        let mut dev = NvmeDevice::new(NvmeParams::default());
        let vol = dev.create_volume(16);
        assert!(dev.write(vol, 10, &[0; 10]).is_err());
        assert!(dev.read(vol, 0, 17).is_err());
        assert!(dev.read(99, 0, 1).is_err());
    }

    #[test]
    fn service_time_includes_base_latency() {
        let mut dev = NvmeDevice::new(NvmeParams::default());
        let t = dev.service_time(SimTime::ZERO, BlockOp::Read, 4096);
        // 67 µs base + ~1.6 µs transfer.
        let us = t.as_micros_f64();
        assert!((68.0..70.0).contains(&us), "4 KiB read {us:.2} µs");
        let tw = dev.service_time(SimTime::ZERO, BlockOp::Write, 4096);
        assert!(tw < t, "cached writes are faster than flash reads");
    }

    #[test]
    fn kernel_cache_absorbs_and_prefetches() {
        let mut c = KernelCache::new();
        // Cold random read misses; the range becomes resident.
        assert!(!c.read(1, 0, 4096));
        assert!(c.read(1, 0, 4096), "repeat hits");
        // Sequential follow-up triggers read-ahead.
        assert!(!c.read(1, 4096, 4096));
        assert!(
            c.read(1, 8192, 4096),
            "read-ahead made the next page resident"
        );
        // Writes are absorbed (range resident afterwards).
        c.write(1, 1 << 20, 4096);
        assert!(c.read(1, 1 << 20, 4096));
        // Volumes do not alias.
        assert!(!c.read(2, 0, 4096));
        assert!(c.hits >= 3 && c.misses >= 3);
    }

    #[test]
    fn delete_volume_frees_storage() {
        let mut dev = NvmeDevice::new(NvmeParams::default());
        let vol = dev.create_volume(4096);
        assert!(dev.volume_size(vol).is_some());
        assert!(dev.delete_volume(vol));
        assert!(dev.volume_size(vol).is_none());
        assert!(!dev.delete_volume(vol), "double free is a no-op");
        assert!(dev.read(vol, 0, 1).is_err());
    }

    #[test]
    fn bandwidth_shared_across_outstanding_ops() {
        let mut dev = NvmeDevice::new(NvmeParams::default());
        let big = 10 << 20;
        let t1 = dev.service_time(SimTime::ZERO, BlockOp::Read, big);
        let t2 = dev.service_time(SimTime::ZERO, BlockOp::Read, big);
        assert!(t2.as_secs_f64() > 1.9 * t1.as_secs_f64() * 0.9);
    }
}
