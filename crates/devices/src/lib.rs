#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Disaggregated device models and FractOS adaptors (§5 of the paper).
//!
//! A device adaptor is an *untrusted* FractOS Process co-located with its
//! device that translates Requests into device operations — the paper's
//! analogue of a LegoOS "monitor" or M³X "ASM". This crate provides:
//!
//! * [`gpu`] — a Tesla-K80-class GPU model (serialized kernel execution,
//!   real byte-level compute via the [`gpu::Kernel`] trait) and its adaptor
//!   exposing context-init / alloc / load / invoke RPCs;
//! * [`nvme`] — a Samsung-970-class NVMe model (logical volumes holding
//!   real bytes, calibrated latency) and its block-device adaptor exposing
//!   create-volume / read / write RPCs with preset volume ids;
//! * [`proto`] — the RPC tag and immediate-encoding conventions.
//!
//! Buffers these adaptors register live at the *device* endpoints, so data
//! moved into GPU memory or NVMe staging crosses the same links GPUDirect
//! RDMA would.

pub mod gpu;
pub mod nvme;
pub mod proto;

pub use gpu::{GpuAdaptor, GpuDevice, GpuParams, Kernel, XorKernel};
pub use nvme::{BlockAdaptor, BlockOp, NvmeDevice, NvmeParams};
