//! End-to-end tests of the GPU and block-device adaptors on a simulated
//! cluster: real bytes flow client → device → client through the FractOS
//! Request machinery.

use fractos_cap::{Cid, Perms};
use fractos_core::prelude::*;
use fractos_devices::proto::{imm, imm_at};
use fractos_devices::{BlockAdaptor, GpuAdaptor, GpuParams, NvmeParams, XorKernel};

/// Client tag for reply continuations.
const TAG_REPLY: u64 = 0x9000;

/// A GPU client that drives the full bootstrap: init → alloc in+out → load
/// → upload input → invoke → download output.
struct GpuClient {
    phase: u32,
    alloc_req: Option<Cid>,
    load_req: Option<Cid>,
    in_mem: Option<Cid>,
    out_mem: Option<Cid>,
    invoke_req: Option<Cid>,
    local_in: Option<(u64, Cid)>,
    local_out: Option<(u64, Cid)>,
    pub done: bool,
    pub result: Vec<u8>,
}

impl GpuClient {
    fn new() -> Self {
        GpuClient {
            phase: 0,
            alloc_req: None,
            load_req: None,
            in_mem: None,
            out_mem: None,
            invoke_req: None,
            local_in: None,
            local_out: None,
            done: false,
            result: Vec::new(),
        }
    }

    /// Makes a reply continuation and runs `f` with its cid.
    fn with_cont(
        fos: &Fos<Self>,
        phase: u64,
        f: impl FnOnce(&mut Self, Cid, &Fos<Self>) + Send + 'static,
    ) {
        fos.request_create_new(TAG_REPLY, vec![imm(phase)], vec![], move |s, res, fos| {
            f(s, res.cid(), fos);
        });
    }
}

const N: u64 = 64;

impl Service for GpuClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        // Phase 0: fetch gpu.init and invoke it with a continuation.
        fos.kv_get("gpu.init", |_s, res, fos| {
            let init = res.cid();
            GpuClient::with_cont(fos, 0, move |_s, cont, fos| {
                fos.request_derive(init, vec![], vec![cont], |_s, res, fos| {
                    fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                });
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        assert_eq!(req.tag, TAG_REPLY);
        let phase = imm_at(&req.imms, 0).unwrap();
        match phase {
            0 => {
                // Reply to init: [alloc_req, load_req].
                self.alloc_req = Some(req.caps[0]);
                self.load_req = Some(req.caps[1]);
                let alloc = req.caps[0];
                // Phase 1: allocate the input buffer.
                GpuClient::with_cont(fos, 1, move |_s, cont, fos| {
                    fos.request_derive(alloc, vec![imm(N)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                    });
                });
            }
            1 => {
                self.in_mem = Some(req.caps[0]);
                let alloc = self.alloc_req.unwrap();
                GpuClient::with_cont(fos, 2, move |_s, cont, fos| {
                    fos.request_derive(alloc, vec![imm(N)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                    });
                });
            }
            2 => {
                self.out_mem = Some(req.caps[0]);
                let load = self.load_req.unwrap();
                // Phase 3: load kernel 7 (the XOR kernel).
                GpuClient::with_cont(fos, 3, move |_s, cont, fos| {
                    fos.request_derive(load, vec![imm(7)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                    });
                });
            }
            3 => {
                self.invoke_req = Some(req.caps[0]);
                // Phase 4: upload input data (pattern 0..N) into GPU memory.
                let addr = fos.mem_alloc(N);
                let data: Vec<u8> = (0..N as u8).collect();
                fos.mem_write(addr, 0, &data).unwrap();
                let in_mem = self.in_mem.unwrap();
                fos.memory_create(addr, N, Perms::RW, move |s: &mut Self, res, fos| {
                    let local = res.cid();
                    s.local_in = Some((addr, local));
                    fos.memory_copy(local, in_mem, move |s: &mut Self, res, fos| {
                        assert_eq!(res, SyscallResult::Ok);
                        // Phase 5: invoke the kernel with success/error conts.
                        let invoke = s.invoke_req.unwrap();
                        let in_mem = s.in_mem.unwrap();
                        let out_mem = s.out_mem.unwrap();
                        GpuClient::with_cont(fos, 5, move |_s, success, fos| {
                            GpuClient::with_cont(fos, 99, move |_s, error, fos| {
                                fos.request_derive(
                                    invoke,
                                    vec![imm(1)], // one work item
                                    vec![in_mem, out_mem, success, error],
                                    |_s, res, fos| {
                                        fos.request_invoke(res.cid(), |_, res, _| {
                                            assert!(res.is_ok())
                                        });
                                    },
                                );
                            });
                        });
                    });
                });
            }
            5 => {
                // Kernel done; download the output.
                let out_mem = self.out_mem.unwrap();
                let addr = fos.mem_alloc(N);
                fos.memory_create(addr, N, Perms::RW, move |s: &mut Self, res, fos| {
                    let local = res.cid();
                    s.local_out = Some((addr, local));
                    fos.memory_copy(out_mem, local, move |s: &mut Self, res, fos| {
                        assert_eq!(res, SyscallResult::Ok);
                        let (addr, _) = s.local_out.unwrap();
                        s.result = fos.mem_read(addr, 0, N).unwrap();
                        s.done = true;
                    });
                });
            }
            99 => panic!("GPU kernel invocation signalled an error"),
            other => panic!("unexpected phase {other}"),
        }
        let _ = self.phase;
    }
}

#[test]
fn gpu_pipeline_computes_real_bytes() {
    let mut tb = Testbed::paper(21);
    let ctrls = tb.controllers_per_node(false);
    let gpu_adaptor =
        GpuAdaptor::new(GpuParams::default(), gpu(1), "gpu").with_kernel(7, XorKernel(0x5A));
    let gpu_proc = tb.add_process("gpu-adaptor", cpu(1), ctrls[1], gpu_adaptor);
    tb.start_process(gpu_proc);
    tb.run();

    let client = tb.add_process("client", cpu(2), ctrls[2], GpuClient::new());
    tb.start_process(client);
    tb.run();

    tb.with_service::<GpuClient, _>(client, |c| {
        assert!(c.done, "pipeline did not finish");
        let want: Vec<u8> = (0..N as u8).map(|b| b ^ 0x5A).collect();
        assert_eq!(c.result, want, "GPU output must be the XOR of the input");
    });
    tb.with_service::<GpuAdaptor, _>(gpu_proc, |a| {
        assert_eq!(a.invocations, 1);
        assert_eq!(a.device().kernels_executed(), 1);
    });
}

/// A block client: create volume, write a pattern, read it back.
struct BlkClient {
    read_req: Option<Cid>,
    write_req: Option<Cid>,
    buf: Option<(u64, Cid)>,
    pub done: bool,
    pub read_back: Vec<u8>,
}

impl BlkClient {
    fn new() -> Self {
        BlkClient {
            read_req: None,
            write_req: None,
            buf: None,
            done: false,
            read_back: Vec::new(),
        }
    }
}

const IO: u64 = 4096;

impl Service for BlkClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("blk.create_vol", |_s, res, fos| {
            let create = res.cid();
            fos.request_create_new(TAG_REPLY, vec![imm(0)], vec![], move |_s, res, fos| {
                let cont = res.cid();
                fos.request_derive(create, vec![imm(1 << 20)], vec![cont], |_s, res, fos| {
                    fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                });
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let phase = imm_at(&req.imms, 0).unwrap();
        match phase {
            0 => {
                // [vol id imm], caps: [read_req, write_req].
                self.read_req = Some(req.caps[0]);
                self.write_req = Some(req.caps[1]);
                // Write phase: upload a pattern.
                let addr = fos.mem_alloc(IO);
                let data: Vec<u8> = (0..IO).map(|i| (i % 251) as u8).collect();
                fos.mem_write(addr, 0, &data).unwrap();
                let wreq = self.write_req.unwrap();
                fos.memory_create(addr, IO, Perms::RW, move |s: &mut Self, res, fos| {
                    let src = res.cid();
                    s.buf = Some((addr, src));
                    fos.request_create_new(TAG_REPLY, vec![imm(1)], vec![], move |_s, res, fos| {
                        let success = res.cid();
                        fos.request_create_new(
                            TAG_REPLY,
                            vec![imm(98)],
                            vec![],
                            move |_s, res, fos| {
                                let error = res.cid();
                                fos.request_derive(
                                    wreq,
                                    vec![imm(8192), imm(IO)], // offset, size
                                    vec![src, success, error],
                                    |_s, res, fos| {
                                        fos.request_invoke(res.cid(), |_, res, _| {
                                            assert!(res.is_ok())
                                        });
                                    },
                                );
                            },
                        );
                    });
                });
            }
            1 => {
                // Write complete; read it back into a fresh buffer.
                let rreq = self.read_req.unwrap();
                let addr = fos.mem_alloc(IO);
                fos.memory_create(addr, IO, Perms::RW, move |s: &mut Self, res, fos| {
                    let dst = res.cid();
                    s.buf = Some((addr, dst));
                    fos.request_create_new(TAG_REPLY, vec![imm(2)], vec![], move |_s, res, fos| {
                        let success = res.cid();
                        fos.request_create_new(
                            TAG_REPLY,
                            vec![imm(97)],
                            vec![],
                            move |_s, res, fos| {
                                let error = res.cid();
                                fos.request_derive(
                                    rreq,
                                    vec![imm(8192), imm(IO)],
                                    vec![dst, success, error],
                                    |_s, res, fos| {
                                        fos.request_invoke(res.cid(), |_, res, _| {
                                            assert!(res.is_ok())
                                        });
                                    },
                                );
                            },
                        );
                    });
                });
            }
            2 => {
                let (addr, _) = self.buf.unwrap();
                self.read_back = fos.mem_read(addr, 0, IO).unwrap();
                self.done = true;
            }
            97 | 98 => panic!("block op error, phase {phase}"),
            other => panic!("unexpected phase {other}"),
        }
    }
}

#[test]
fn block_adaptor_roundtrips_data() {
    let mut tb = Testbed::paper(22);
    let ctrls = tb.controllers_per_node(false);
    let blk = BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk");
    let blk_proc = tb.add_process("blk-adaptor", cpu(0), ctrls[0], blk);
    tb.start_process(blk_proc);
    tb.run();

    let client = tb.add_process("client", cpu(2), ctrls[2], BlkClient::new());
    tb.start_process(client);
    tb.run();

    tb.with_service::<BlkClient, _>(client, |c| {
        assert!(c.done, "block pipeline did not finish");
        let want: Vec<u8> = (0..IO).map(|i| (i % 251) as u8).collect();
        assert_eq!(c.read_back, want);
    });
    tb.with_service::<BlockAdaptor, _>(blk_proc, |a| {
        assert_eq!(a.completed, 2);
        assert_eq!(a.device().ops, 2);
    });
}

/// The DAX composition property: a third party that receives the delegated
/// per-volume read Request can use it directly — and a revoked one fails.
#[test]
fn delegated_volume_request_is_directly_usable() {
    let mut tb = Testbed::paper(23);
    let ctrls = tb.controllers_per_node(false);
    let blk = BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk");
    let blk_proc = tb.add_process("blk-adaptor", cpu(0), ctrls[0], blk);
    tb.start_process(blk_proc);
    tb.run();

    // First client creates the volume and publishes the read Request for a
    // third party (simulating the FS handing DAX Requests to its client).
    struct Creator;
    impl Service for Creator {
        fn on_start(&mut self, fos: &Fos<Self>) {
            fos.kv_get("blk.create_vol", |_s, res, fos| {
                let create = res.cid();
                fos.request_create_new(TAG_REPLY, vec![], vec![], move |_s, res, fos| {
                    let cont = res.cid();
                    fos.request_derive(create, vec![imm(65536)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, _, _| {});
                    });
                });
            });
        }
        fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
            // caps: [read, write] → publish the read Request.
            fos.kv_put("vol.read", req.caps[0], |_, res, _| assert!(res.is_ok()));
        }
    }
    let creator = tb.add_process("creator", cpu(2), ctrls[2], Creator);
    tb.start_process(creator);
    tb.run();

    // Third party reads through the delegated Request.
    struct Third {
        pub ok: bool,
    }
    impl Service for Third {
        fn on_start(&mut self, fos: &Fos<Self>) {
            fos.kv_get("vol.read", |_s, res, fos| {
                let rreq = res.cid();
                let addr = fos.mem_alloc(512);
                fos.memory_create(addr, 512, Perms::RW, move |_s, res, fos| {
                    let dst = res.cid();
                    fos.request_create_new(TAG_REPLY, vec![imm(1)], vec![], move |_s, res, fos| {
                        let success = res.cid();
                        fos.request_create_new(
                            TAG_REPLY,
                            vec![imm(9)],
                            vec![],
                            move |_s, res, fos| {
                                let error = res.cid();
                                fos.request_derive(
                                    rreq,
                                    vec![imm(0), imm(512)],
                                    vec![dst, success, error],
                                    |_s, res, fos| {
                                        fos.request_invoke(res.cid(), |_, res, _| {
                                            assert!(res.is_ok())
                                        });
                                    },
                                );
                            },
                        );
                    });
                });
            });
        }
        fn on_request(&mut self, req: IncomingRequest, _fos: &Fos<Self>) {
            assert_eq!(imm_at(&req.imms, 0), Some(1), "success continuation");
            self.ok = true;
        }
    }
    let third = tb.add_process("third", cpu(1), ctrls[1], Third { ok: false });
    tb.start_process(third);
    tb.run();
    tb.with_service::<Third, _>(third, |t| assert!(t.ok, "DAX-style direct read failed"));
}

/// Two tenants share the GPU adaptor; revoking one tenant's handles reaps
/// only that tenant's context.
#[test]
fn gpu_contexts_are_isolated_between_tenants() {
    struct Tenant {
        name: &'static str,
        pub alloc_req: Option<Cid>,
        pub got_context: bool,
    }
    impl Service for Tenant {
        fn on_start(&mut self, fos: &Fos<Self>) {
            let name = self.name;
            fos.kv_get("gpu.init", move |_s, res, fos| {
                let init = res.cid();
                fos.request_create_new(
                    TAG_REPLY,
                    vec![],
                    vec![],
                    move |_s: &mut Self, res, fos| {
                        let cont = res.cid();
                        fos.request_derive(init, vec![], vec![cont], |_s, res, fos| {
                            fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                        });
                    },
                );
                let _ = name;
            });
        }
        fn on_request(&mut self, req: IncomingRequest, _fos: &Fos<Self>) {
            // Init reply: [alloc, load].
            self.alloc_req = Some(req.caps[0]);
            self.got_context = true;
        }
    }

    let mut tb = Testbed::paper(29);
    let ctrls = tb.controllers_per_node(false);
    let gpu_adaptor = GpuAdaptor::new(GpuParams::default(), gpu(1), "gpu");
    let gpu_proc = tb.add_process("gpu-adaptor", cpu(1), ctrls[1], gpu_adaptor);
    tb.start_process(gpu_proc);
    tb.run();

    let a = tb.add_process(
        "tenant-a",
        cpu(0),
        ctrls[0],
        Tenant {
            name: "a",
            alloc_req: None,
            got_context: false,
        },
    );
    tb.start_process(a);
    tb.run();
    let b = tb.add_process(
        "tenant-b",
        cpu(2),
        ctrls[2],
        Tenant {
            name: "b",
            alloc_req: None,
            got_context: false,
        },
    );
    tb.start_process(b);
    tb.run();

    tb.with_service::<Tenant, _>(a, |t| assert!(t.got_context));
    tb.with_service::<Tenant, _>(b, |t| assert!(t.got_context));
    tb.with_service::<GpuAdaptor, _>(gpu_proc, |g| assert_eq!(g.reaped_contexts, 0));

    // Tenant A revokes its alloc handle: only A's context is reaped.
    let a_alloc = tb.with_service::<Tenant, _>(a, |t| t.alloc_req.unwrap());
    let fos = tb.fos_of::<Tenant>(a);
    fos.call(Syscall::CapRevoke { cid: a_alloc }, |_, res, _| {
        assert!(res.is_ok())
    });
    tb.poke(a);
    tb.run();
    tb.with_service::<GpuAdaptor, _>(gpu_proc, |g| {
        assert_eq!(g.reaped_contexts, 1, "exactly tenant A's context reaped");
    });

    // Tenant B's handle still works: allocate a buffer through it.
    let b_alloc = tb.with_service::<Tenant, _>(b, |t| t.alloc_req.unwrap());
    let fos = tb.fos_of::<Tenant>(b);
    fos.request_create_new(
        TAG_REPLY,
        vec![imm(1)],
        vec![],
        move |_s: &mut Tenant, res, fos| {
            let cont = res.cid();
            fos.request_derive(b_alloc, vec![imm(4096)], vec![cont], |_s, res, fos| {
                fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
            });
        },
    );
    tb.poke(b);
    tb.run();
    tb.with_service::<GpuAdaptor, _>(gpu_proc, |g| {
        assert_eq!(g.reaped_contexts, 1, "tenant B unaffected");
    });
}

/// Explicit context teardown through the `TAG_GPU_FINI` RPC.
#[test]
fn gpu_context_teardown_rpc() {
    use fractos_devices::proto::TAG_GPU_FINI;

    struct Client {
        pub alloc_req: Option<Cid>,
    }
    impl Service for Client {
        fn on_start(&mut self, fos: &Fos<Self>) {
            fos.kv_get("gpu.init", |_s, res, fos| {
                let init = res.cid();
                fos.request_create_new(
                    TAG_REPLY,
                    vec![],
                    vec![],
                    move |_s: &mut Self, res, fos| {
                        let cont = res.cid();
                        fos.request_derive(init, vec![], vec![cont], |_s, res, fos| {
                            fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                        });
                    },
                );
            });
        }
        fn on_request(&mut self, req: IncomingRequest, _fos: &Fos<Self>) {
            // Init reply: keep the per-context alloc handle.
            self.alloc_req = Some(req.caps[0]);
        }
    }

    let mut tb = Testbed::paper(33);
    let ctrls = tb.controllers_per_node(false);
    let gpu_adaptor = GpuAdaptor::new(GpuParams::default(), gpu(1), "gpu");
    let gpu_proc = tb.add_process("gpu-adaptor", cpu(1), ctrls[1], gpu_adaptor);
    tb.start_process(gpu_proc);
    tb.run();
    let client = tb.add_process("client", cpu(0), ctrls[0], Client { alloc_req: None });
    tb.start_process(client);
    tb.run();
    tb.with_service::<Client, _>(client, |c| assert!(c.alloc_req.is_some()));

    // The adaptor itself can create-and-invoke its own FINI request (the
    // paper's cleanup RPC is provider-defined).
    let fos = tb.fos_of::<GpuAdaptor>(gpu_proc);
    fos.request_create_new(
        TAG_GPU_FINI,
        vec![fractos_devices::proto::imm(1)],
        vec![],
        |_s, res, fos| {
            fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
        },
    );
    tb.poke(gpu_proc);
    tb.run();

    // Allocating against the torn-down context now does nothing (the
    // adaptor drops requests for unknown contexts).
    let alloc = tb.with_service::<Client, _>(client, |c| c.alloc_req.unwrap());
    let fos = tb.fos_of::<Client>(client);
    fos.request_create_new(
        TAG_REPLY,
        vec![imm(7)],
        vec![],
        move |_s: &mut Client, res, fos| {
            let cont = res.cid();
            fos.request_derive(alloc, vec![imm(4096)], vec![cont], |_s, res, fos| {
                fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
            });
        },
    );
    tb.poke(client);
    tb.run();
    tb.with_service::<GpuAdaptor, _>(gpu_proc, |a| {
        assert_eq!(a.invocations, 0, "no kernel ran");
    });
}
