//! End-to-end tests of the GPU and block-device adaptors on a simulated
//! cluster: real bytes flow client → device → client through the FractOS
//! Request machinery.

use fractos_cap::{Cid, Perms};
use fractos_core::prelude::*;
use fractos_devices::proto::{imm, imm_at, DevError};
use fractos_devices::{BlockAdaptor, GpuAdaptor, GpuParams, NvmeParams, XorKernel};
use fractos_net::FaultPlan;

/// Client tag for reply continuations.
const TAG_REPLY: u64 = 0x9000;

/// A GPU client that drives the full bootstrap: init → alloc in+out → load
/// → upload input → invoke → download output.
struct GpuClient {
    phase: u32,
    alloc_req: Option<Cid>,
    load_req: Option<Cid>,
    in_mem: Option<Cid>,
    out_mem: Option<Cid>,
    invoke_req: Option<Cid>,
    local_in: Option<(u64, Cid)>,
    local_out: Option<(u64, Cid)>,
    pub done: bool,
    pub result: Payload,
}

impl GpuClient {
    fn new() -> Self {
        GpuClient {
            phase: 0,
            alloc_req: None,
            load_req: None,
            in_mem: None,
            out_mem: None,
            invoke_req: None,
            local_in: None,
            local_out: None,
            done: false,
            result: Payload::empty(),
        }
    }

    /// Makes a reply continuation and runs `f` with its cid.
    fn with_cont(
        fos: &Fos<Self>,
        phase: u64,
        f: impl FnOnce(&mut Self, Cid, &Fos<Self>) + Send + 'static,
    ) {
        fos.request_create_new(TAG_REPLY, vec![imm(phase)], vec![], move |s, res, fos| {
            f(s, res.cid(), fos);
        });
    }
}

const N: u64 = 64;

impl Service for GpuClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        // Phase 0: fetch gpu.init and invoke it with a continuation.
        fos.kv_get("gpu.init", |_s, res, fos| {
            let init = res.cid();
            GpuClient::with_cont(fos, 0, move |_s, cont, fos| {
                fos.request_derive(init, vec![], vec![cont], |_s, res, fos| {
                    fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                });
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        assert_eq!(req.tag, TAG_REPLY);
        let phase = imm_at(&req.imms, 0).unwrap();
        match phase {
            0 => {
                // Reply to init: [alloc_req, load_req].
                self.alloc_req = Some(req.caps[0]);
                self.load_req = Some(req.caps[1]);
                let alloc = req.caps[0];
                // Phase 1: allocate the input buffer.
                GpuClient::with_cont(fos, 1, move |_s, cont, fos| {
                    fos.request_derive(alloc, vec![imm(N)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                    });
                });
            }
            1 => {
                self.in_mem = Some(req.caps[0]);
                let alloc = self.alloc_req.unwrap();
                GpuClient::with_cont(fos, 2, move |_s, cont, fos| {
                    fos.request_derive(alloc, vec![imm(N)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                    });
                });
            }
            2 => {
                self.out_mem = Some(req.caps[0]);
                let load = self.load_req.unwrap();
                // Phase 3: load kernel 7 (the XOR kernel).
                GpuClient::with_cont(fos, 3, move |_s, cont, fos| {
                    fos.request_derive(load, vec![imm(7)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                    });
                });
            }
            3 => {
                self.invoke_req = Some(req.caps[0]);
                // Phase 4: upload input data (pattern 0..N) into GPU memory.
                let addr = fos.mem_alloc(N);
                let data: Vec<u8> = (0..N as u8).collect();
                fos.mem_write(addr, 0, &data).unwrap();
                let in_mem = self.in_mem.unwrap();
                fos.memory_create(addr, N, Perms::RW, move |s: &mut Self, res, fos| {
                    let local = res.cid();
                    s.local_in = Some((addr, local));
                    fos.memory_copy(local, in_mem, move |s: &mut Self, res, fos| {
                        assert_eq!(res, SyscallResult::Ok);
                        // Phase 5: invoke the kernel with success/error conts.
                        let invoke = s.invoke_req.unwrap();
                        let in_mem = s.in_mem.unwrap();
                        let out_mem = s.out_mem.unwrap();
                        GpuClient::with_cont(fos, 5, move |_s, success, fos| {
                            GpuClient::with_cont(fos, 99, move |_s, error, fos| {
                                fos.request_derive(
                                    invoke,
                                    vec![imm(1)], // one work item
                                    vec![in_mem, out_mem, success, error],
                                    |_s, res, fos| {
                                        fos.request_invoke(res.cid(), |_, res, _| {
                                            assert!(res.is_ok())
                                        });
                                    },
                                );
                            });
                        });
                    });
                });
            }
            5 => {
                // Kernel done; download the output.
                let out_mem = self.out_mem.unwrap();
                let addr = fos.mem_alloc(N);
                fos.memory_create(addr, N, Perms::RW, move |s: &mut Self, res, fos| {
                    let local = res.cid();
                    s.local_out = Some((addr, local));
                    fos.memory_copy(out_mem, local, move |s: &mut Self, res, fos| {
                        assert_eq!(res, SyscallResult::Ok);
                        let (addr, _) = s.local_out.unwrap();
                        s.result = fos.mem_read(addr, 0, N).unwrap();
                        s.done = true;
                    });
                });
            }
            99 => panic!("GPU kernel invocation signalled an error"),
            other => panic!("unexpected phase {other}"),
        }
        let _ = self.phase;
    }
}

#[test]
fn gpu_pipeline_computes_real_bytes() {
    let mut tb = Testbed::paper(21);
    let ctrls = tb.controllers_per_node(false);
    let gpu_adaptor =
        GpuAdaptor::new(GpuParams::default(), gpu(1), "gpu").with_kernel(7, XorKernel(0x5A));
    let gpu_proc = tb.add_process("gpu-adaptor", cpu(1), ctrls[1], gpu_adaptor);
    tb.start_process(gpu_proc);
    tb.run();

    let client = tb.add_process("client", cpu(2), ctrls[2], GpuClient::new());
    tb.start_process(client);
    tb.run();

    tb.with_service::<GpuClient, _>(client, |c| {
        assert!(c.done, "pipeline did not finish");
        let want: Vec<u8> = (0..N as u8).map(|b| b ^ 0x5A).collect();
        assert_eq!(c.result, want, "GPU output must be the XOR of the input");
    });
    tb.with_service::<GpuAdaptor, _>(gpu_proc, |a| {
        assert_eq!(a.invocations, 1);
        assert_eq!(a.device().kernels_executed(), 1);
    });
}

/// A block client: create volume, write a pattern, read it back.
struct BlkClient {
    read_req: Option<Cid>,
    write_req: Option<Cid>,
    buf: Option<(u64, Cid)>,
    pub done: bool,
    pub read_back: Payload,
}

impl BlkClient {
    fn new() -> Self {
        BlkClient {
            read_req: None,
            write_req: None,
            buf: None,
            done: false,
            read_back: Payload::empty(),
        }
    }
}

const IO: u64 = 4096;

impl Service for BlkClient {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("blk.create_vol", |_s, res, fos| {
            let create = res.cid();
            fos.request_create_new(TAG_REPLY, vec![imm(0)], vec![], move |_s, res, fos| {
                let cont = res.cid();
                fos.request_derive(create, vec![imm(1 << 20)], vec![cont], |_s, res, fos| {
                    fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                });
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let phase = imm_at(&req.imms, 0).unwrap();
        match phase {
            0 => {
                // [vol id imm], caps: [read_req, write_req].
                self.read_req = Some(req.caps[0]);
                self.write_req = Some(req.caps[1]);
                // Write phase: upload a pattern.
                let addr = fos.mem_alloc(IO);
                let data: Vec<u8> = (0..IO).map(|i| (i % 251) as u8).collect();
                fos.mem_write(addr, 0, &data).unwrap();
                let wreq = self.write_req.unwrap();
                fos.memory_create(addr, IO, Perms::RW, move |s: &mut Self, res, fos| {
                    let src = res.cid();
                    s.buf = Some((addr, src));
                    fos.request_create_new(TAG_REPLY, vec![imm(1)], vec![], move |_s, res, fos| {
                        let success = res.cid();
                        fos.request_create_new(
                            TAG_REPLY,
                            vec![imm(98)],
                            vec![],
                            move |_s, res, fos| {
                                let error = res.cid();
                                fos.request_derive(
                                    wreq,
                                    vec![imm(8192), imm(IO)], // offset, size
                                    vec![src, success, error],
                                    |_s, res, fos| {
                                        fos.request_invoke(res.cid(), |_, res, _| {
                                            assert!(res.is_ok())
                                        });
                                    },
                                );
                            },
                        );
                    });
                });
            }
            1 => {
                // Write complete; read it back into a fresh buffer.
                let rreq = self.read_req.unwrap();
                let addr = fos.mem_alloc(IO);
                fos.memory_create(addr, IO, Perms::RW, move |s: &mut Self, res, fos| {
                    let dst = res.cid();
                    s.buf = Some((addr, dst));
                    fos.request_create_new(TAG_REPLY, vec![imm(2)], vec![], move |_s, res, fos| {
                        let success = res.cid();
                        fos.request_create_new(
                            TAG_REPLY,
                            vec![imm(97)],
                            vec![],
                            move |_s, res, fos| {
                                let error = res.cid();
                                fos.request_derive(
                                    rreq,
                                    vec![imm(8192), imm(IO)],
                                    vec![dst, success, error],
                                    |_s, res, fos| {
                                        fos.request_invoke(res.cid(), |_, res, _| {
                                            assert!(res.is_ok())
                                        });
                                    },
                                );
                            },
                        );
                    });
                });
            }
            2 => {
                let (addr, _) = self.buf.unwrap();
                self.read_back = fos.mem_read(addr, 0, IO).unwrap();
                self.done = true;
            }
            97 | 98 => panic!("block op error, phase {phase}"),
            other => panic!("unexpected phase {other}"),
        }
    }
}

#[test]
fn block_adaptor_roundtrips_data() {
    let mut tb = Testbed::paper(22);
    let ctrls = tb.controllers_per_node(false);
    let blk = BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk");
    let blk_proc = tb.add_process("blk-adaptor", cpu(0), ctrls[0], blk);
    tb.start_process(blk_proc);
    tb.run();

    let client = tb.add_process("client", cpu(2), ctrls[2], BlkClient::new());
    tb.start_process(client);
    tb.run();

    tb.with_service::<BlkClient, _>(client, |c| {
        assert!(c.done, "block pipeline did not finish");
        let want: Vec<u8> = (0..IO).map(|i| (i % 251) as u8).collect();
        assert_eq!(c.read_back, want);
    });
    tb.with_service::<BlockAdaptor, _>(blk_proc, |a| {
        assert_eq!(a.completed, 2);
        assert_eq!(a.device().ops, 2);
    });
}

/// The DAX composition property: a third party that receives the delegated
/// per-volume read Request can use it directly — and a revoked one fails.
#[test]
fn delegated_volume_request_is_directly_usable() {
    let mut tb = Testbed::paper(23);
    let ctrls = tb.controllers_per_node(false);
    let blk = BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk");
    let blk_proc = tb.add_process("blk-adaptor", cpu(0), ctrls[0], blk);
    tb.start_process(blk_proc);
    tb.run();

    // First client creates the volume and publishes the read Request for a
    // third party (simulating the FS handing DAX Requests to its client).
    struct Creator;
    impl Service for Creator {
        fn on_start(&mut self, fos: &Fos<Self>) {
            fos.kv_get("blk.create_vol", |_s, res, fos| {
                let create = res.cid();
                fos.request_create_new(TAG_REPLY, vec![], vec![], move |_s, res, fos| {
                    let cont = res.cid();
                    fos.request_derive(create, vec![imm(65536)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, _, _| {});
                    });
                });
            });
        }
        fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
            // caps: [read, write] → publish the read Request.
            fos.kv_put("vol.read", req.caps[0], |_, res, _| assert!(res.is_ok()));
        }
    }
    let creator = tb.add_process("creator", cpu(2), ctrls[2], Creator);
    tb.start_process(creator);
    tb.run();

    // Third party reads through the delegated Request.
    struct Third {
        pub ok: bool,
    }
    impl Service for Third {
        fn on_start(&mut self, fos: &Fos<Self>) {
            fos.kv_get("vol.read", |_s, res, fos| {
                let rreq = res.cid();
                let addr = fos.mem_alloc(512);
                fos.memory_create(addr, 512, Perms::RW, move |_s, res, fos| {
                    let dst = res.cid();
                    fos.request_create_new(TAG_REPLY, vec![imm(1)], vec![], move |_s, res, fos| {
                        let success = res.cid();
                        fos.request_create_new(
                            TAG_REPLY,
                            vec![imm(9)],
                            vec![],
                            move |_s, res, fos| {
                                let error = res.cid();
                                fos.request_derive(
                                    rreq,
                                    vec![imm(0), imm(512)],
                                    vec![dst, success, error],
                                    |_s, res, fos| {
                                        fos.request_invoke(res.cid(), |_, res, _| {
                                            assert!(res.is_ok())
                                        });
                                    },
                                );
                            },
                        );
                    });
                });
            });
        }
        fn on_request(&mut self, req: IncomingRequest, _fos: &Fos<Self>) {
            assert_eq!(imm_at(&req.imms, 0), Some(1), "success continuation");
            self.ok = true;
        }
    }
    let third = tb.add_process("third", cpu(1), ctrls[1], Third { ok: false });
    tb.start_process(third);
    tb.run();
    tb.with_service::<Third, _>(third, |t| assert!(t.ok, "DAX-style direct read failed"));
}

/// Two tenants share the GPU adaptor; revoking one tenant's handles reaps
/// only that tenant's context.
#[test]
fn gpu_contexts_are_isolated_between_tenants() {
    struct Tenant {
        name: &'static str,
        pub alloc_req: Option<Cid>,
        pub got_context: bool,
    }
    impl Service for Tenant {
        fn on_start(&mut self, fos: &Fos<Self>) {
            let name = self.name;
            fos.kv_get("gpu.init", move |_s, res, fos| {
                let init = res.cid();
                fos.request_create_new(
                    TAG_REPLY,
                    vec![],
                    vec![],
                    move |_s: &mut Self, res, fos| {
                        let cont = res.cid();
                        fos.request_derive(init, vec![], vec![cont], |_s, res, fos| {
                            fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                        });
                    },
                );
                let _ = name;
            });
        }
        fn on_request(&mut self, req: IncomingRequest, _fos: &Fos<Self>) {
            // Init reply: [alloc, load].
            self.alloc_req = Some(req.caps[0]);
            self.got_context = true;
        }
    }

    let mut tb = Testbed::paper(29);
    let ctrls = tb.controllers_per_node(false);
    let gpu_adaptor = GpuAdaptor::new(GpuParams::default(), gpu(1), "gpu");
    let gpu_proc = tb.add_process("gpu-adaptor", cpu(1), ctrls[1], gpu_adaptor);
    tb.start_process(gpu_proc);
    tb.run();

    let a = tb.add_process(
        "tenant-a",
        cpu(0),
        ctrls[0],
        Tenant {
            name: "a",
            alloc_req: None,
            got_context: false,
        },
    );
    tb.start_process(a);
    tb.run();
    let b = tb.add_process(
        "tenant-b",
        cpu(2),
        ctrls[2],
        Tenant {
            name: "b",
            alloc_req: None,
            got_context: false,
        },
    );
    tb.start_process(b);
    tb.run();

    tb.with_service::<Tenant, _>(a, |t| assert!(t.got_context));
    tb.with_service::<Tenant, _>(b, |t| assert!(t.got_context));
    tb.with_service::<GpuAdaptor, _>(gpu_proc, |g| assert_eq!(g.reaped_contexts, 0));

    // Tenant A revokes its alloc handle: only A's context is reaped.
    let a_alloc = tb.with_service::<Tenant, _>(a, |t| t.alloc_req.unwrap());
    let fos = tb.fos_of::<Tenant>(a);
    fos.call(Syscall::CapRevoke { cid: a_alloc }, |_, res, _| {
        assert!(res.is_ok())
    });
    tb.poke(a);
    tb.run();
    tb.with_service::<GpuAdaptor, _>(gpu_proc, |g| {
        assert_eq!(g.reaped_contexts, 1, "exactly tenant A's context reaped");
    });

    // Tenant B's handle still works: allocate a buffer through it.
    let b_alloc = tb.with_service::<Tenant, _>(b, |t| t.alloc_req.unwrap());
    let fos = tb.fos_of::<Tenant>(b);
    fos.request_create_new(
        TAG_REPLY,
        vec![imm(1)],
        vec![],
        move |_s: &mut Tenant, res, fos| {
            let cont = res.cid();
            fos.request_derive(b_alloc, vec![imm(4096)], vec![cont], |_s, res, fos| {
                fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
            });
        },
    );
    tb.poke(b);
    tb.run();
    tb.with_service::<GpuAdaptor, _>(gpu_proc, |g| {
        assert_eq!(g.reaped_contexts, 1, "tenant B unaffected");
    });
}

/// Explicit context teardown through the `TAG_GPU_FINI` RPC.
#[test]
fn gpu_context_teardown_rpc() {
    use fractos_devices::proto::TAG_GPU_FINI;

    struct Client {
        pub alloc_req: Option<Cid>,
    }
    impl Service for Client {
        fn on_start(&mut self, fos: &Fos<Self>) {
            fos.kv_get("gpu.init", |_s, res, fos| {
                let init = res.cid();
                fos.request_create_new(
                    TAG_REPLY,
                    vec![],
                    vec![],
                    move |_s: &mut Self, res, fos| {
                        let cont = res.cid();
                        fos.request_derive(init, vec![], vec![cont], |_s, res, fos| {
                            fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                        });
                    },
                );
            });
        }
        fn on_request(&mut self, req: IncomingRequest, _fos: &Fos<Self>) {
            // Init reply: keep the per-context alloc handle.
            self.alloc_req = Some(req.caps[0]);
        }
    }

    let mut tb = Testbed::paper(33);
    let ctrls = tb.controllers_per_node(false);
    let gpu_adaptor = GpuAdaptor::new(GpuParams::default(), gpu(1), "gpu");
    let gpu_proc = tb.add_process("gpu-adaptor", cpu(1), ctrls[1], gpu_adaptor);
    tb.start_process(gpu_proc);
    tb.run();
    let client = tb.add_process("client", cpu(0), ctrls[0], Client { alloc_req: None });
    tb.start_process(client);
    tb.run();
    tb.with_service::<Client, _>(client, |c| assert!(c.alloc_req.is_some()));

    // The adaptor itself can create-and-invoke its own FINI request (the
    // paper's cleanup RPC is provider-defined).
    let fos = tb.fos_of::<GpuAdaptor>(gpu_proc);
    fos.request_create_new(
        TAG_GPU_FINI,
        vec![fractos_devices::proto::imm(1)],
        vec![],
        |_s, res, fos| {
            fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
        },
    );
    tb.poke(gpu_proc);
    tb.run();

    // Allocating against the torn-down context now does nothing (the
    // adaptor drops requests for unknown contexts).
    let alloc = tb.with_service::<Client, _>(client, |c| c.alloc_req.unwrap());
    let fos = tb.fos_of::<Client>(client);
    fos.request_create_new(
        TAG_REPLY,
        vec![imm(7)],
        vec![],
        move |_s: &mut Client, res, fos| {
            let cont = res.cid();
            fos.request_derive(alloc, vec![imm(4096)], vec![cont], |_s, res, fos| {
                fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
            });
        },
    );
    tb.poke(client);
    tb.run();
    tb.with_service::<GpuAdaptor, _>(gpu_proc, |a| {
        assert_eq!(a.invocations, 0, "no kernel ran");
    });
}

// ---------------------------------------------------------------------------
// Typed error continuations: malformed requests and injected device faults.
// ---------------------------------------------------------------------------

/// Makes a reply continuation carrying `phase` and runs `f` with its cid
/// (the generic sibling of [`GpuClient::with_cont`]).
fn reply_cont<S: Service>(
    fos: &Fos<S>,
    phase: u64,
    f: impl FnOnce(&mut S, Cid, &Fos<S>) + Send + 'static,
) {
    fos.request_create_new(TAG_REPLY, vec![imm(phase)], vec![], move |s, res, fos| {
        f(s, res.cid(), fos);
    });
}

/// Makes a success/error continuation pair and hands both cids to `f`.
fn io_pair<S: Service>(
    fos: &Fos<S>,
    ok: u64,
    err: u64,
    f: impl FnOnce(&mut S, Cid, Cid, &Fos<S>) + Send + 'static,
) {
    fos.request_create_new(TAG_REPLY, vec![imm(ok)], vec![], move |_s, res, fos| {
        let success = res.cid();
        fos.request_create_new(TAG_REPLY, vec![imm(err)], vec![], move |s, res, fos| {
            f(s, success, res.cid(), fos);
        });
    });
}

/// A block client that fires deliberately malformed reads and records the
/// typed error code each error continuation carries.
struct MalformedBlk {
    pub errs: Vec<(u64, u64)>,
    pub dropped_replied: bool,
}

impl Service for MalformedBlk {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("blk.create_vol", |_s, res, fos| {
            let create = res.cid();
            fos.request_create_new(TAG_REPLY, vec![imm(0)], vec![], move |_s, res, fos| {
                let cont = res.cid();
                fos.request_derive(create, vec![imm(65536)], vec![cont], |_s, res, fos| {
                    fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                });
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let phase = imm_at(&req.imms, 0).unwrap();
        match phase {
            0 => {
                let rreq = req.caps[0];
                // (a) Correct caps, missing offset/size imms → BadRequest.
                io_pair(fos, 10, 90, move |_s, success, error, fos| {
                    fos.request_derive(
                        rreq,
                        vec![],
                        vec![error, success, error],
                        |_s, res, fos| {
                            fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                        },
                    );
                });
                // (b) Size beyond the staging pool → TooLarge.
                let too_big = fractos_devices::nvme::STAGING_BUF_SIZE + 1;
                io_pair(fos, 11, 91, move |_s, success, error, fos| {
                    fos.request_derive(
                        rreq,
                        vec![imm(0), imm(too_big)],
                        vec![error, success, error],
                        |_s, res, fos| {
                            fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                        },
                    );
                });
                // (c) Offset beyond the 64 KiB volume → Bounds.
                io_pair(fos, 12, 92, move |_s, success, error, fos| {
                    fos.request_derive(
                        rreq,
                        vec![imm(1 << 20), imm(512)],
                        vec![error, success, error],
                        |_s, res, fos| {
                            fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                        },
                    );
                });
                // (d) Wrong capability count → the request is silently
                // dropped (no identifiable error continuation to reply on).
                io_pair(fos, 13, 93, move |_s, success, _error, fos| {
                    fos.request_derive(
                        rreq,
                        vec![imm(0), imm(512)],
                        vec![success, success],
                        |_s, res, fos| {
                            fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                        },
                    );
                });
            }
            90..=92 => self
                .errs
                .push((phase, imm_at(&req.imms, 1).unwrap_or(u64::MAX))),
            13 | 93 => self.dropped_replied = true,
            other => panic!("unexpected reply phase {other}"),
        }
    }
}

#[test]
fn malformed_block_requests_reply_typed_codes() {
    let mut tb = Testbed::paper(41);
    let ctrls = tb.controllers_per_node(false);
    let blk = BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk");
    let blk_proc = tb.add_process("blk-adaptor", cpu(0), ctrls[0], blk);
    tb.start_process(blk_proc);
    tb.run();

    let client = tb.add_process(
        "client",
        cpu(2),
        ctrls[2],
        MalformedBlk {
            errs: Vec::new(),
            dropped_replied: false,
        },
    );
    tb.start_process(client);
    tb.run();

    tb.with_service::<MalformedBlk, _>(client, |c| {
        let code = |p: u64| c.errs.iter().find(|(ph, _)| *ph == p).map(|&(_, c)| c);
        assert_eq!(code(90), Some(DevError::BadRequest.code()));
        assert_eq!(code(91), Some(DevError::TooLarge.code()));
        assert_eq!(code(92), Some(DevError::Bounds.code()));
        assert!(
            !c.dropped_replied,
            "wrong-cap-count request must be dropped without a reply"
        );
    });
    // The adaptor survived all of it and completed no I/O.
    tb.with_service::<BlockAdaptor, _>(blk_proc, |a| assert_eq!(a.completed, 0));
}

/// A block client that runs a write and then a read under an injected
/// device-fault plan and records the typed codes the error continuations
/// carry (no retry: this observes the raw adaptor contract).
struct ChaosBlk {
    read_req: Option<Cid>,
    pub write_err: Option<u64>,
    pub read_err: Option<u64>,
}

impl Service for ChaosBlk {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("blk.create_vol", |_s, res, fos| {
            let create = res.cid();
            fos.request_create_new(TAG_REPLY, vec![imm(0)], vec![], move |_s, res, fos| {
                let cont = res.cid();
                fos.request_derive(create, vec![imm(65536)], vec![cont], |_s, res, fos| {
                    fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                });
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let phase = imm_at(&req.imms, 0).unwrap();
        match phase {
            0 => {
                self.read_req = Some(req.caps[0]);
                let wreq = req.caps[1];
                let addr = fos.mem_alloc(IO);
                let data: Vec<u8> = (0..IO).map(|i| (i % 253) as u8 + 1).collect();
                fos.mem_write(addr, 0, &data).unwrap();
                fos.memory_create(addr, IO, Perms::RW, move |_s: &mut Self, res, fos| {
                    let src = res.cid();
                    io_pair(fos, 1, 98, move |_s, success, error, fos| {
                        fos.request_derive(
                            wreq,
                            vec![imm(0), imm(IO)],
                            vec![src, success, error],
                            |_s, res, fos| {
                                fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                            },
                        );
                    });
                });
            }
            98 => {
                // Torn write detected by the adaptor's read-back envelope.
                self.write_err = imm_at(&req.imms, 1);
                let rreq = self.read_req.unwrap();
                let addr = fos.mem_alloc(IO);
                fos.memory_create(addr, IO, Perms::RW, move |_s: &mut Self, res, fos| {
                    let dst = res.cid();
                    io_pair(fos, 2, 97, move |_s, success, error, fos| {
                        fos.request_derive(
                            rreq,
                            vec![imm(0), imm(IO)],
                            vec![dst, success, error],
                            |_s, res, fos| {
                                fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                            },
                        );
                    });
                });
            }
            97 => self.read_err = imm_at(&req.imms, 1),
            1 => panic!("write must fail under a p=1.0 torn-write plan"),
            2 => panic!("read must fail under a p=1.0 read-error plan"),
            other => panic!("unexpected reply phase {other}"),
        }
    }
}

#[test]
fn injected_nvme_faults_reply_typed_codes() {
    let mut tb = Testbed::paper(43);
    let plan = FaultPlan::new()
        .nvme_torn_writes(nvme(0), 1.0)
        .nvme_read_errors(nvme(0), 1.0);
    tb.install_fault_plan(plan, 43);
    let ctrls = tb.controllers_per_node(false);
    let blk = BlockAdaptor::new(NvmeParams::default(), nvme(0), "blk");
    let blk_proc = tb.add_process("blk-adaptor", cpu(0), ctrls[0], blk);
    tb.start_process(blk_proc);
    tb.run();

    let client = tb.add_process(
        "client",
        cpu(2),
        ctrls[2],
        ChaosBlk {
            read_req: None,
            write_err: None,
            read_err: None,
        },
    );
    tb.start_process(client);
    tb.run();

    tb.with_service::<ChaosBlk, _>(client, |c| {
        assert_eq!(
            c.write_err,
            Some(DevError::Integrity.code()),
            "torn write must surface as an integrity-envelope violation"
        );
        assert_eq!(
            c.read_err,
            Some(DevError::Media.code()),
            "injected media read error must carry the Media code"
        );
    });
    let stats = tb.traffic();
    let faults = stats.device_faults_at(nvme(0));
    assert!(faults.torn >= 1, "torn-write counter must tick");
    assert!(faults.failed >= 1, "media-failure counter must tick");
    let _ = blk_proc;
}

/// A minimal GPU client: init → alloc one buffer → load kernel 7 → invoke,
/// recording success or the typed error code. `mode` selects the failure
/// shape: 0 = well-formed, 1 = non-memory input capability, 2 = wrong
/// capability count.
struct GpuFault {
    alloc_req: Option<Cid>,
    load_req: Option<Cid>,
    mem: Option<Cid>,
    mode: u8,
    pub ok: bool,
    pub err_code: Option<u64>,
}

impl GpuFault {
    fn new(mode: u8) -> Self {
        GpuFault {
            alloc_req: None,
            load_req: None,
            mem: None,
            mode,
            ok: false,
            err_code: None,
        }
    }
}

impl Service for GpuFault {
    fn on_start(&mut self, fos: &Fos<Self>) {
        fos.kv_get("gpu.init", |_s, res, fos| {
            let init = res.cid();
            fos.request_create_new(TAG_REPLY, vec![imm(0)], vec![], move |_s, res, fos| {
                let cont = res.cid();
                fos.request_derive(init, vec![], vec![cont], |_s, res, fos| {
                    fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                });
            });
        });
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        let phase = imm_at(&req.imms, 0).unwrap();
        match phase {
            0 => {
                self.alloc_req = Some(req.caps[0]);
                self.load_req = Some(req.caps[1]);
                let alloc = req.caps[0];
                reply_cont(fos, 1, move |_s, cont, fos| {
                    fos.request_derive(alloc, vec![imm(N)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                    });
                });
            }
            1 => {
                self.mem = Some(req.caps[0]);
                let load = self.load_req.unwrap();
                reply_cont(fos, 2, move |_s, cont, fos| {
                    fos.request_derive(load, vec![imm(7)], vec![cont], |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                    });
                });
            }
            2 => {
                let invoke = req.caps[0];
                let mem = self.mem.unwrap();
                let mode = self.mode;
                reply_cont(fos, 5, move |_s, success, fos| {
                    reply_cont(fos, 99, move |_s, error, fos| {
                        let caps = match mode {
                            // Non-memory input: the error continuation
                            // itself stands in for a buffer.
                            1 => vec![error, mem, success, error],
                            // Wrong capability count: silently dropped.
                            2 => vec![mem, success],
                            _ => vec![mem, mem, success, error],
                        };
                        fos.request_derive(invoke, vec![imm(1)], caps, |_s, res, fos| {
                            fos.request_invoke(res.cid(), |_, res, _| assert!(res.is_ok()));
                        });
                    });
                });
            }
            5 => self.ok = true,
            99 => self.err_code = imm_at(&req.imms, 1),
            other => panic!("unexpected reply phase {other}"),
        }
    }
}

/// Boots a GPU adaptor plus a [`GpuFault`] client under `plan` and returns
/// (success, error code, completed invocations, per-device fault counters).
fn run_gpu_fault(
    seed: u64,
    plan: FaultPlan,
    mode: u8,
) -> (bool, Option<u64>, u64, fractos_net::DeviceFaultCounter) {
    let mut tb = Testbed::paper(seed);
    tb.install_fault_plan(plan, seed);
    let ctrls = tb.controllers_per_node(false);
    let gpu_adaptor =
        GpuAdaptor::new(GpuParams::default(), gpu(1), "gpu").with_kernel(7, XorKernel(0x5A));
    let gpu_proc = tb.add_process("gpu-adaptor", cpu(1), ctrls[1], gpu_adaptor);
    tb.start_process(gpu_proc);
    tb.run();

    let client = tb.add_process("client", cpu(2), ctrls[2], GpuFault::new(mode));
    tb.start_process(client);
    tb.run();

    let (ok, err) = tb.with_service::<GpuFault, _>(client, |c| (c.ok, c.err_code));
    let invocations = tb.with_service::<GpuAdaptor, _>(gpu_proc, |a| a.invocations);
    let faults = tb.traffic().device_faults_at(gpu(1));
    (ok, err, invocations, faults)
}

#[test]
fn injected_gpu_launch_failure_replies_typed_code() {
    let plan = FaultPlan::new().gpu_launch_errors(gpu(1), 1.0);
    let (ok, err, invocations, faults) = run_gpu_fault(47, plan, 0);
    assert!(!ok);
    assert_eq!(err, Some(DevError::Launch.code()));
    assert_eq!(invocations, 0, "nothing executes on a failed launch");
    assert!(faults.failed >= 1, "launch-failure counter must tick");
}

#[test]
fn injected_gpu_output_corruption_is_detected() {
    let plan = FaultPlan::new().gpu_output_corruption(gpu(1), 1.0);
    let (ok, err, invocations, faults) = run_gpu_fault(53, plan, 0);
    assert!(!ok);
    assert_eq!(
        err,
        Some(DevError::Integrity.code()),
        "ECC-style output corruption must surface as an integrity violation"
    );
    assert_eq!(invocations, 0, "a corrupted invocation does not count");
    assert!(faults.corrupted >= 1, "corruption counter must tick");
}

#[test]
fn gpu_non_memory_input_replies_bad_buffer() {
    let (ok, err, invocations, _) = run_gpu_fault(59, FaultPlan::new(), 1);
    assert!(!ok);
    assert_eq!(err, Some(DevError::BadBuffer.code()));
    assert_eq!(invocations, 0);
}

#[test]
fn gpu_wrong_cap_count_is_silently_dropped() {
    let (ok, err, invocations, _) = run_gpu_fault(61, FaultPlan::new(), 2);
    assert!(!ok, "no success reply for a dropped request");
    assert_eq!(err, None, "no error reply either: the request is dropped");
    assert_eq!(invocations, 0);
}
