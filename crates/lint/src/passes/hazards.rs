//! Determinism & hazard lint (the original `fractos-lint` rules).
//!
//! Rules:
//!
//! * `wallclock` — `Instant::now` / `SystemTime` read the host clock; all
//!   simulation time must flow from the virtual clock.
//! * `thread-local` — `thread_local!` state diverges across the sharded
//!   backend's workers.
//! * `ambient-rand` — `thread_rng` / `rand::random` / `from_entropy` /
//!   `OsRng` seed from the environment; randomness must come from the
//!   seeded deterministic RNG.
//! * `hash-iter` — iterating a `HashMap`/`HashSet` observes hasher order,
//!   which differs per process; iterated maps must be `BTreeMap`s.
//! * `unwrap` — `.unwrap()` / `.expect(` outside tests panics instead of
//!   returning a typed `FosError`/`CapError`.

use crate::{ident_before, Finding, Rule, SourceFile};

/// Collects identifiers declared with a `HashMap`/`HashSet` type or
/// initializer anywhere in the (masked) file: struct fields and bindings
/// (`name: HashMap<..>`), plus `let name = HashMap::new()` forms.
pub fn hashed_idents(masked: &str) -> Vec<String> {
    let mut idents = Vec::new();
    for line in masked.lines() {
        for pat in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(off) = line[from..].find(pat) {
                let pos = from + off;
                let before = line[..pos].trim_end();
                if let Some(head) = before.strip_suffix(':') {
                    // `name: HashMap<..>` (field, binding or signature).
                    if let Some(id) = ident_before(head, head.len()) {
                        push_unique(&mut idents, id);
                    }
                } else if let Some(head) = before.strip_suffix('=') {
                    // `let name = HashMap::new()` / `name = HashSet::new()`.
                    if let Some(id) = ident_before(head, head.len()) {
                        push_unique(&mut idents, id);
                    }
                }
                from = pos + pat.len();
            }
        }
    }
    idents
}

fn push_unique(v: &mut Vec<String>, s: String) {
    if s != "let" && s != "mut" && !v.contains(&s) {
        v.push(s);
    }
}

/// Iteration methods whose order observes hasher state.
const ORDER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];

/// Scans one file for the five hazard rules.
pub fn scan(file: &SourceFile) -> Vec<Finding> {
    let hashed = hashed_idents(&file.masked);
    let mut findings = Vec::new();
    let mut push = |rule: Rule, lineno: usize, text: &str| {
        findings.push(Finding {
            rule,
            file: file.path.clone(),
            line: lineno + 1,
            text: text.to_string(),
        });
    };
    for (n, line) in file.masked.lines().enumerate() {
        if file.in_test.get(n).copied().unwrap_or(false) {
            continue;
        }
        if line.contains("Instant::now") || line.contains("SystemTime") {
            push(Rule::Wallclock, n, line);
        }
        if line.contains("thread_local!") {
            push(Rule::ThreadLocal, n, line);
        }
        if ["thread_rng", "rand::random", "from_entropy", "OsRng"]
            .iter()
            .any(|p| line.contains(p))
        {
            push(Rule::AmbientRand, n, line);
        }
        if line.contains(".unwrap()") || line.contains(".expect(") {
            push(Rule::Unwrap, n, line);
        }
        // hash-iter: method calls on known hashed idents, and `for .. in`
        // over them.
        for m in ORDER_METHODS {
            let mut from = 0;
            while let Some(off) = line[from..].find(m) {
                let pos = from + off;
                if let Some(id) = ident_before(line, pos) {
                    if hashed.contains(&id) {
                        push(Rule::HashIter, n, line);
                    }
                }
                from = pos + m.len();
            }
        }
        if let Some(pos) = line.find(" in ") {
            let tail = line[pos + 4..].trim_start().trim_start_matches(['&', '*']);
            let id: String = tail
                .bytes()
                .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
                .map(|b| b as char)
                .collect();
            if !id.is_empty()
                && hashed.contains(&id)
                && line.trim_start().starts_with("for ")
                && !ORDER_METHODS.iter().any(|m| line.contains(m))
            {
                push(Rule::HashIter, n, line);
            }
        }
    }
    // A line matching several rules is reported once per rule; dedup exact
    // repeats from overlapping method hits.
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.file == b.file);
    findings
}

pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    files.iter().flat_map(scan).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn corpus(name: &str) -> SourceFile {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("corpus")
            .join(name);
        SourceFile::load(&path).expect("corpus file readable")
    }

    fn rules_fired(name: &str) -> Vec<Rule> {
        scan(&corpus(name)).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn corpus_wallclock_detected() {
        assert!(rules_fired("bad_wallclock.rs").contains(&Rule::Wallclock));
    }

    #[test]
    fn corpus_wallclock_sampler_detected() {
        let fired = rules_fired("bad_wallclock_sampler.rs");
        assert!(
            fired.iter().filter(|r| **r == Rule::Wallclock).count() >= 2,
            "both the SystemTime stamp and the Instant cadence must fire: {fired:?}"
        );
    }

    #[test]
    fn corpus_thread_local_detected() {
        assert!(rules_fired("bad_thread_local.rs").contains(&Rule::ThreadLocal));
    }

    #[test]
    fn corpus_ambient_rand_detected() {
        assert!(rules_fired("bad_rand.rs").contains(&Rule::AmbientRand));
    }

    #[test]
    fn corpus_hash_iter_detected() {
        let fired = rules_fired("bad_hash_iter.rs");
        assert!(
            fired.iter().filter(|r| **r == Rule::HashIter).count() >= 2,
            "both the method-call and for-loop forms must fire: {fired:?}"
        );
    }

    #[test]
    fn corpus_unwrap_detected() {
        assert!(rules_fired("bad_unwrap.rs").contains(&Rule::Unwrap));
    }

    #[test]
    fn corpus_clean_file_passes() {
        assert!(rules_fired("ok_clean.rs").is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = r#"
// Instant::now() in a comment is fine.
/* SystemTime in a block comment too. */
fn f() -> &'static str {
    "thread_rng() inside a string literal"
}
"#;
        assert!(scan(&SourceFile::from_source("x.rs", src)).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = r#"
fn product() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u32> = Some(1);
        x.unwrap();
    }
}
"#;
        assert!(scan(&SourceFile::from_source("x.rs", src)).is_empty());
    }

    #[test]
    fn unwrap_outside_test_module_fires() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let fired: Vec<Rule> = scan(&SourceFile::from_source("x.rs", src))
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(fired, vec![Rule::Unwrap]);
    }

    #[test]
    fn hashed_ident_collection_sees_fields_and_lets() {
        let masked =
            "struct S { procs: HashMap<u32, u32> }\nfn f() { let seen = HashSet::new(); }\n";
        let ids = hashed_idents(masked);
        assert!(ids.contains(&"procs".to_string()));
        assert!(ids.contains(&"seen".to_string()));
    }
}
