//! Lock-order / deadlock analysis over `Shared<T>` acquisition sites.
//!
//! The simulator's shared substrate state is guarded by `Shared<T>`
//! (`Arc<Mutex<T>>` with `borrow`/`borrow_mut` vocabulary). A deadlock
//! needs two threads acquiring two lock classes in opposite orders, so
//! the pass builds a *may-hold-while-acquiring* graph and denies cycles:
//!
//! 1. **Acquisitions.** Every `.borrow()`, `.borrow_mut()` and `.lock()`
//!    call site is an acquisition of the lock *class* named by its
//!    receiver identifier (`self.fabric.borrow_mut()` acquires `fabric`;
//!    `state().lock()` acquires `state`). These three methods are the
//!    locking primitives: they are never traversed as ordinary calls.
//! 2. **Hold scopes.** A guard bound by a plain `let` (`let g =
//!    x.borrow();`, including `?` and unwrap-family adapters that
//!    forward the guard, as in `slot.lock().unwrap_or_else(..)`) is held
//!    to the end of its enclosing block. Any other use is a temporary:
//!    projections (`x.borrow().field`) and consumed chains
//!    (`x.borrow_mut().send(..)`) hold to the end of their statement —
//!    a `;` or `,` at nesting depth zero; a plain `if`/`while`
//!    condition ends at its `{`; a `match`/`if let` scrutinee spans the
//!    whole construct, mirroring Rust temporary-lifetime rules.
//! 3. **Calls.** A call made while holding locks contributes edges from
//!    each held class to everything the callee *may* acquire,
//!    transitively (a name-keyed summary fixpoint over all product
//!    functions; same-named functions are merged, a safe
//!    over-approximation). Only calls whose callee is nameable are
//!    resolved — `self.method(..)`, `Path::func(..)` and bare
//!    `helper(..)` — and ubiquitous std method names (`new`, `push`,
//!    `get`, ...) are excluded, so `Vec::new()` does not smear every
//!    product constructor's summary into its caller. Method calls on
//!    arbitrary expression receivers are left to the runtime witness.
//! 4. **Verdicts.** Same-class nesting inside one function is reported
//!    directly (with `Mutex` semantics it self-deadlocks); any cycle in
//!    the class graph is reported once per strongly-connected component,
//!    with a representative site for every edge on the cycle.
//!
//! Functions annotated `// analyze: lock-primitive` (the `Shared`
//! internals and the lockdep witness, which manipulate raw mutexes *to
//! implement* the discipline) are skipped entirely. `#[cfg(test)]` code
//! is exempt. The runtime complement of this pass is `fractos-sim`'s
//! `lockdep` feature, which witnesses actual acquisition orders.

use std::collections::{BTreeMap, BTreeSet};

use crate::{fn_spans, Finding, Rule, SourceFile};

/// The locking primitives: a call to one of these is an acquisition.
const PRIMITIVES: &[&str] = &["borrow", "borrow_mut", "lock"];

/// Callee names ignored by the call graph: std-prelude methods so common
/// that a product function sharing the name (every `fn new`) would smear
/// unrelated summaries together. Product functions with these names are
/// still *scanned* (their own bodies are analyzed); they are just never
/// resolved as callees.
const STD_NOISE: &[&str] = &[
    "new",
    "default",
    "clone",
    "from",
    "into",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "entry",
    "contains",
    "contains_key",
    "drain",
    "take",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "and_then",
    "filter",
    "collect",
    "extend",
    "min",
    "max",
    "cmp",
    "eq",
    "fmt",
    "drop",
    "expect",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "to_vec",
    "to_string",
    "clamp",
    "abs",
    "ok",
    "err",
    "as_ref",
    "as_mut",
];

/// Control-flow keywords that can precede a `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move",
];

/// Marker exempting a function from this pass.
pub const PRIMITIVE_MARKER: &str = "analyze: lock-primitive";

#[derive(Debug)]
enum Event {
    /// `.borrow()` / `.borrow_mut()` / `.lock()` of class `class`.
    Acquire { pos: usize, class: String },
    /// A potential product-fn call observed at `pos`.
    Call { pos: usize, name: String },
}

/// One observed `held -> acquired` pair with its witness site.
#[derive(Debug, Clone)]
struct EdgeSite {
    file: std::path::PathBuf,
    line: usize,
    note: String,
}

/// Lock classes held at a call site, each with the line it was taken on.
type HeldSet = Vec<(String, usize)>;

#[derive(Default)]
struct FnFacts {
    /// Classes this fn acquires directly.
    direct: BTreeSet<String>,
    /// Callee names (deduped) for summary propagation.
    callees: BTreeSet<String>,
    /// Calls made while holding locks: (held classes, callee, line).
    held_calls: Vec<(HeldSet, String, usize)>,
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// The receiver class of a primitive call whose `.` sits at `dot`:
/// the identifier just before it (skipping whitespace, so multiline
/// builder chains resolve), or the callee identifier of a trailing
/// `ident(...)` receiver (`state().lock()` -> `state`).
fn receiver_class(masked: &[u8], dot: usize) -> Option<String> {
    let mut i = dot;
    while i > 0 && masked[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 {
        return None;
    }
    if masked[i - 1] == b')' {
        // Balance back over the call's parens, then take its name.
        let mut depth = 0i32;
        let mut j = i;
        while j > 0 {
            j -= 1;
            match masked[j] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if j == 0 || !is_ident(masked[j - 1]) {
            return None;
        }
        i = j;
    }
    let end = i;
    let mut start = end;
    while start > 0 && is_ident(masked[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    let id = std::str::from_utf8(&masked[start..end]).ok()?.to_string();
    id.bytes().any(|b| b.is_ascii_alphabetic()).then_some(id)
}

/// Extracts acquisition and call events from one fn body, in order.
fn body_events(masked: &str, start: usize, end: usize) -> Vec<Event> {
    let b = masked.as_bytes();
    let mut events = Vec::new();
    let mut i = start;
    while i < end {
        if b[i] == b'(' && i > start && is_ident(b[i - 1]) {
            let mut s = i;
            while s > start && is_ident(b[s - 1]) {
                s -= 1;
            }
            let name = &masked[s..i];
            // `fn name(` is a nested definition, not a call.
            let decl = s >= 3 && &masked[s.saturating_sub(3)..s] == "fn ";
            if !decl && !KEYWORDS.contains(&name) && !name.is_empty() {
                let mut d = s;
                while d > start && b[d - 1].is_ascii_whitespace() {
                    d -= 1;
                }
                let after_dot = d > start && b[d - 1] == b'.';
                if PRIMITIVES.contains(&name) && after_dot {
                    // d-1 is the `.` of the method call.
                    if let Some(class) = receiver_class(b, d - 1) {
                        events.push(Event::Acquire { pos: i, class });
                    }
                } else if !PRIMITIVES.contains(&name) {
                    // Resolve only nameable callees: `self.m(..)`,
                    // `Path::f(..)`, bare `f(..)`. Method calls on other
                    // receivers dispatch on types this text-level pass
                    // cannot see; resolving them by bare name would smear
                    // unrelated summaries together.
                    let resolvable = if after_dot {
                        let recv_end = d - 1;
                        let mut r = recv_end;
                        while r > start && is_ident(b[r - 1]) {
                            r -= 1;
                        }
                        &masked[r..recv_end] == "self"
                    } else {
                        true // bare call or `::` path call
                    };
                    if resolvable {
                        events.push(Event::Call {
                            pos: i,
                            name: name.to_string(),
                        });
                    }
                }
            }
        }
        i += 1;
    }
    events
}

/// The byte offset just past the matching `)` of the `(` at `open`.
fn after_balanced(b: &[u8], open: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < limit {
        match b[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    limit
}

/// Adapters that *forward* the guard instead of consuming it: `.lock()`
/// returns `Result<Guard, _>`, so only the unwrap family yields a guard
/// from a chain. Everything else (`.send(..)`, `.params()`) consumes the
/// guard as a temporary.
const FORWARDERS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "unwrap_or_default"];

/// Start offset of the statement containing `pos`: just past the nearest
/// `;`, `{` or `}` at relative nesting depth 0 scanning backwards.
fn stmt_start(b: &[u8], body_start: usize, pos: usize) -> usize {
    let mut depth = 0i32;
    let mut i = pos;
    while i > body_start {
        i -= 1;
        match b[i] {
            b')' | b']' => depth += 1,
            b'(' | b'[' => depth -= 1,
            b'}' => {
                if depth == 0 {
                    return i + 1;
                }
                depth += 1;
            }
            b'{' => {
                if depth == 0 {
                    return i + 1;
                }
                depth -= 1;
            }
            b';' | b',' if depth == 0 => return i + 1,
            _ => {}
        }
    }
    body_start
}

/// First word of the statement starting at `stmt` (for keyword
/// classification), skipping a leading `else`.
fn stmt_keyword(b: &[u8], stmt: usize, limit: usize) -> &[u8] {
    let mut j = stmt;
    loop {
        while j < limit && b[j].is_ascii_whitespace() {
            j += 1;
        }
        let w = j;
        while j < limit && is_ident(b[j]) {
            j += 1;
        }
        if &b[w..j] == b"else" {
            continue;
        }
        return &b[w..j];
    }
}

/// Whether the statement containing the acquisition at `paren` (its call
/// `(`) is a plain `let` binding of the guard: starts with `let` and the
/// expression tail after the primitive call is only `?` and unwrap-family
/// adapter calls up to `;`. `let x = g.borrow().field;` (projection) and
/// `let n = g.borrow().len();` (consumed chain) are temporaries.
fn is_guard_binding(b: &[u8], body_start: usize, paren: usize, body_end: usize) -> bool {
    let stmt = stmt_start(b, body_start, paren);
    if stmt_keyword(b, stmt, paren) != b"let" {
        return false;
    }
    // Walk the tail after the primitive call's balanced parens.
    let mut k = after_balanced(b, paren, body_end);
    loop {
        while k < body_end && b[k].is_ascii_whitespace() {
            k += 1;
        }
        if k >= body_end {
            return false;
        }
        match b[k] {
            b';' => return true,
            b'?' => k += 1,
            b'.' => {
                k += 1;
                let m = k;
                while k < body_end && is_ident(b[k]) {
                    k += 1;
                }
                let method = std::str::from_utf8(&b[m..k]).unwrap_or("");
                if !FORWARDERS.contains(&method) {
                    return false;
                }
                while k < body_end && b[k].is_ascii_whitespace() {
                    k += 1;
                }
                if k < body_end && b[k] == b'(' {
                    k = after_balanced(b, k, body_end);
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

/// Release offset for a statement-temporary guard acquired at `pos`,
/// mirroring Rust temporary-lifetime rules at token level:
///
/// * plain `if`/`while` head — the condition's temporaries drop at the
///   `{` opening the body;
/// * `match`/`for` head (which desugar to a `match` on the scrutinee)
///   and `if let`/`while let` — scrutinee temporaries live to the `}`
///   closing the construct's first block;
/// * anything else — the next `;` or `,` at relative depth 0 (the `,`
///   covers match-arm bodies), or the `}` closing the enclosing scope.
fn statement_release(b: &[u8], body_start: usize, pos: usize, body_end: usize) -> usize {
    let stmt = stmt_start(b, body_start, pos);
    let kw = stmt_keyword(b, stmt, pos);
    let plain_cond = kw == b"if" || kw == b"while";
    let spans_block = kw == b"match" || kw == b"for";
    // `if let` / `while let`: the head text contains ` let` before the
    // acquisition — those scrutinee temporaries also span the construct.
    let let_cond = plain_cond && b[stmt..pos].windows(4).any(|w| w == b" let");
    let mut depth = 0i32;
    let mut i = pos;
    while i < body_end {
        match b[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' => {
                if depth == 0 && (plain_cond || spans_block) {
                    if plain_cond && !let_cond {
                        // Condition temporaries die at the body `{`.
                        return i;
                    }
                    // Scrutinee temporaries live to the matching `}`.
                    let mut d = 0i32;
                    let mut j = i;
                    while j < body_end {
                        match b[j] {
                            b'{' => d += 1,
                            b'}' => {
                                d -= 1;
                                if d == 0 {
                                    return j;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    return body_end;
                }
                depth += 1;
            }
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            b';' | b',' if depth <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    body_end
}

/// Analyzes one fn body: records direct acquisitions, same-class nesting
/// findings, held-call observations and direct edges.
#[allow(clippy::too_many_arguments)]
fn analyze_body(
    file: &SourceFile,
    body_start: usize,
    body_end: usize,
    facts: &mut FnFacts,
    edges: &mut BTreeMap<(String, String), EdgeSite>,
    findings: &mut Vec<Finding>,
) {
    let b = file.masked.as_bytes();
    let events = body_events(&file.masked, body_start, body_end);

    // Scope stack of `{` positions with their matching `}` offsets.
    let mut scope_close: Vec<usize> = Vec::new();
    let mut holds: Vec<(String, usize, usize)> = Vec::new(); // (class, release, line)
    let mut ev = events.iter().peekable();
    let mut i = body_start;
    while i < body_end {
        holds.retain(|&(_, release, _)| release > i);
        match b[i] {
            b'{' => {
                let mut depth = 0i32;
                let mut j = i;
                let mut close = body_end;
                while j < body_end {
                    match b[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                close = j;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                scope_close.push(close);
            }
            b'}' => {
                scope_close.pop();
            }
            _ => {}
        }
        while let Some(event) = ev.peek() {
            let pos = match event {
                Event::Acquire { pos, .. } | Event::Call { pos, .. } => *pos,
            };
            if pos != i {
                break;
            }
            match ev.next().unwrap() {
                Event::Acquire { pos, class } => {
                    let line = file.line_of(*pos);
                    for (held, _, held_line) in &holds {
                        if held == class {
                            findings.push(Finding {
                                rule: Rule::LockOrder,
                                file: file.path.clone(),
                                line,
                                text: format!(
                                    "nested acquisition of lock class `{class}` (already held \
                                     since line {held_line}); same-class nesting deadlocks"
                                ),
                            });
                        } else {
                            edges
                                .entry((held.clone(), class.clone()))
                                .or_insert_with(|| EdgeSite {
                                    file: file.path.clone(),
                                    line,
                                    note: format!("`{held}` held since line {held_line}"),
                                });
                        }
                    }
                    facts.direct.insert(class.clone());
                    let release = if is_guard_binding(b, body_start, *pos, body_end) {
                        scope_close.last().copied().unwrap_or(body_end)
                    } else {
                        statement_release(b, body_start, *pos, body_end)
                    };
                    holds.push((class.clone(), release, line));
                }
                Event::Call { pos, name } => {
                    facts.callees.insert(name.clone());
                    if !holds.is_empty() {
                        facts.held_calls.push((
                            holds.iter().map(|(c, _, l)| (c.clone(), *l)).collect(),
                            name.clone(),
                            file.line_of(*pos),
                        ));
                    }
                }
            }
        }
        i += 1;
    }
}

pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    // Name-keyed facts; same-named fns merge (safe over-approximation).
    let mut facts: BTreeMap<String, FnFacts> = BTreeMap::new();
    let mut held_calls: Vec<(std::path::PathBuf, HeldSet, String, usize)> = Vec::new();

    for file in files {
        for span in fn_spans(file) {
            if file.line_in_test(span.sig_line)
                || file.marker_above(span.sig_line, PRIMITIVE_MARKER)
            {
                continue;
            }
            let mut f = FnFacts::default();
            analyze_body(
                file,
                span.body_start,
                span.body_end,
                &mut f,
                &mut edges,
                &mut findings,
            );
            for (held, callee, line) in std::mem::take(&mut f.held_calls) {
                held_calls.push((file.path.clone(), held, callee, line));
            }
            let entry = facts.entry(span.name.clone()).or_default();
            entry.direct.extend(f.direct);
            entry.callees.extend(f.callees);
        }
    }

    // Summary fixpoint: may-acquire(f) = direct(f) ∪ may-acquire(callees).
    let mut summaries: BTreeMap<&str, BTreeSet<String>> = facts
        .iter()
        .map(|(name, f)| (name.as_str(), f.direct.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (name, f) in &facts {
            let mut add = BTreeSet::new();
            for callee in &f.callees {
                if STD_NOISE.contains(&callee.as_str()) {
                    continue;
                }
                if let Some(s) = summaries.get(callee.as_str()) {
                    add.extend(s.iter().cloned());
                }
            }
            let mine = summaries.get_mut(name.as_str()).expect("seeded above");
            for class in add {
                changed |= mine.insert(class);
            }
        }
        if !changed {
            break;
        }
    }

    // Call-induced edges: held class -> everything the callee may acquire.
    // Same-class re-entry through calls is left to the runtime lockdep
    // witness: name-merged summaries make it too noisy to deny statically.
    for (path, held, callee, line) in &held_calls {
        if STD_NOISE.contains(&callee.as_str()) {
            continue;
        }
        let Some(may) = summaries.get(callee.as_str()) else {
            continue;
        };
        for (h, h_line) in held {
            for acq in may {
                if acq != h {
                    edges
                        .entry((h.clone(), acq.clone()))
                        .or_insert_with(|| EdgeSite {
                            file: path.clone(),
                            line: *line,
                            note: format!(
                                "`{h}` held since line {h_line} across call to `{callee}` \
                             (may acquire `{acq}`)"
                            ),
                        });
                }
            }
        }
    }

    findings.extend(cycle_findings(&edges));
    findings
}

/// One finding per strongly-connected component of the class graph with
/// more than one node (self-edges were already reported as same-class
/// nesting). Deterministic: Tarjan over sorted adjacency.
fn cycle_findings(edges: &BTreeMap<(String, String), EdgeSite>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
        adj.entry(b.as_str()).or_default();
    }

    // Iterative Tarjan SCC.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<&str>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // (node, child cursor)
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, cursor)) = call.last() {
            if cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succs = &adj[nodes[v]];
            if cursor < succs.len() {
                call.last_mut().expect("non-empty").1 += 1;
                let w = index_of[succs[cursor]];
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    if comp.len() > 1 {
                        sccs.push(comp);
                    }
                }
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }

    sccs.sort();
    let mut findings = Vec::new();
    for comp in sccs {
        let set: BTreeSet<&str> = comp.iter().copied().collect();
        let mut sites = Vec::new();
        for ((a, b), site) in edges {
            if set.contains(a.as_str()) && set.contains(b.as_str()) {
                sites.push(format!(
                    "{} -> {} at {}:{} ({})",
                    a,
                    b,
                    site.file.display(),
                    site.line,
                    site.note
                ));
            }
        }
        let first = edges
            .iter()
            .find(|((a, b), _)| set.contains(a.as_str()) && set.contains(b.as_str()))
            .map(|(_, s)| s)
            .expect("non-trivial SCC has at least one internal edge");
        findings.push(Finding {
            rule: Rule::LockOrder,
            file: first.file.clone(),
            line: first.line,
            text: format!(
                "lock-order cycle among classes {{{}}}: {}",
                comp.join(", "),
                sites.join("; ")
            ),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn corpus(name: &str) -> SourceFile {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("corpus")
            .join(name);
        SourceFile::load(&path).expect("corpus file readable")
    }

    #[test]
    fn corpus_abba_cycle_detected() {
        let findings = run(&[corpus("bad_lock_cycle.rs")]);
        assert!(
            findings
                .iter()
                .any(|f| f.text.contains("lock-order cycle") && f.text.contains("alpha")),
            "ABBA cycle must be reported: {findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.text.contains("nested acquisition of lock class `alpha`")),
            "same-class nesting must be reported: {findings:?}"
        );
    }

    #[test]
    fn corpus_cycle_through_call_detected() {
        let findings = run(&[corpus("bad_lock_cycle_calls.rs")]);
        assert!(
            findings.iter().any(|f| f.text.contains("lock-order cycle")
                && f.text.contains("gamma")
                && f.text.contains("delta")),
            "call-graph cycle must be reported: {findings:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
struct S;
impl S {
    fn a_then_b(&self) {
        let _ga = self.alpha.borrow();
        let _gb = self.beta.borrow_mut();
    }
    fn also_a_then_b(&self) {
        let _ga = self.alpha.borrow_mut();
        let _gb = self.beta.borrow();
    }
    fn sequential_not_nested(&self) {
        {
            let mut g = self.alpha.borrow_mut();
            *g += 1;
        }
        let _g2 = self.alpha.borrow();
    }
}
";
        let findings = run(&[SourceFile::from_source("x.rs", src)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn projection_temporaries_release_at_statement_end() {
        // `let x = a.borrow().field;` drops the guard at the `;` — the
        // later `beta` acquisition must not see `alpha` held (a false
        // `alpha -> beta` edge here would invert with fn `b_then_a`).
        let src = "
impl S {
    fn projections(&self) {
        let x = self.alpha.borrow().field;
        let _y = x;
        let _gb = self.beta.borrow();
    }
    fn b_then_a(&self) {
        let _gb = self.beta.borrow();
        let _ga = self.alpha.borrow();
    }
}
";
        let findings = run(&[SourceFile::from_source("x.rs", src)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn lock_primitive_marker_exempts_fn() {
        let src = "
impl S {
    // analyze: lock-primitive
    fn acquire(&self) {
        let _g = self.alpha.borrow();
        let _h = self.beta.borrow();
    }
    fn other(&self) {
        let _h = self.beta.borrow();
        let _g = self.alpha.borrow();
    }
}
";
        let findings = run(&[SourceFile::from_source("x.rs", src)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn chained_receiver_and_adapter_guards_are_tracked() {
        // `slot.lock().unwrap_or_else(..)` binds the guard (adapter
        // chain), so the class stays held across the call below it.
        let src = "
fn run_round(slot: &M) {
    let mut shard = slot.lock().unwrap_or_else(recover);
    helper(&mut shard);
}
fn helper(s: &mut S) {
    let _g = s.state.borrow_mut();
}
fn inverse(s: &S) {
    let _g = s.state.borrow();
    let _h = s.slot.borrow();
}
";
        let findings = run(&[SourceFile::from_source("x.rs", src)]);
        assert!(
            findings.iter().any(|f| f.text.contains("lock-order cycle")),
            "slot->state (via call) + state->slot must cycle: {findings:?}"
        );
    }
}
