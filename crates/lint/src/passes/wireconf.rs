//! Wire-protocol conformance against `fractos_core::wire::codes`.
//!
//! Every tag, status and error code that crosses the simulated wire is
//! minted in one registry (`crates/core/src/wire/codes.rs`); protocol
//! code refers to registry constants (`codes::SC_INVOKE`), never literal
//! bytes. This pass checks the contract from both ends:
//!
//! * **Registry hygiene** — no duplicate values inside a group (the
//!   group is the const-name prefix before the first `_`), no dead
//!   codes (every const referenced at least once outside the registry).
//! * **Decode completeness** — a decode-role function (name containing
//!   `decode` or `from_code`, or annotated `// analyze: wire-decode` for
//!   dispatchers like `on_request` whose names don't say so) that
//!   handles *any* member of a group must
//!   handle *all* of them, and must explicitly reject unknown codes
//!   (a `BadTag`/catch-all arm). Groups annotated
//!   `// analyze: group <PREFIX> mint-only` in the registry are minted
//!   for the wire but decoded only by tests (e.g. typed error codes
//!   surfaced to applications); they are exempt from the decode-side
//!   checks but still checked for references and duplicates.
//! * **No literal tags** — in any product file that uses the registry,
//!   encoder calls with literal bytes (`e.u8(7)`) and literal-integer
//!   match arms outside tests are denied: a magic number next to
//!   registry constants is how two ends of the protocol drift apart.
//!
//! `#[cfg(test)]` code is exempt from the literal checks (tests
//! deliberately forge bad tags to exercise rejection paths).

use std::collections::{BTreeMap, BTreeSet};

use crate::{enclosing_fn, fn_spans, Finding, FnSpan, Rule, SourceFile};

/// Path suffix locating the registry inside the product sources.
pub const REGISTRY_SUFFIX: &str = "core/src/wire/codes.rs";

/// One registry constant.
#[derive(Debug, Clone)]
pub struct CodeConst {
    pub name: String,
    pub group: String,
    /// Value text; numeric for hygiene checks when it parses.
    pub value: String,
    pub line: usize,
}

/// The parsed `wire::codes` registry.
#[derive(Debug, Default)]
pub struct Registry {
    pub consts: Vec<CodeConst>,
    pub mint_only: BTreeSet<String>,
}

/// Parses the registry from its raw source: `pub const NAME: <ty> = <v>;`
/// items plus `// analyze: group <PREFIX> mint-only` annotations.
pub fn parse_registry(raw: &str) -> Registry {
    let mut reg = Registry::default();
    for (i, line) in raw.lines().enumerate() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("// analyze: group ") {
            let mut words = rest.split_whitespace();
            if let (Some(prefix), Some("mint-only")) = (words.next(), words.next()) {
                reg.mint_only.insert(prefix.to_string());
            }
            continue;
        }
        let Some(rest) = t.strip_prefix("pub const ") else {
            continue;
        };
        let Some((name, tail)) = rest.split_once(':') else {
            continue;
        };
        let Some((_ty, value)) = tail.split_once('=') else {
            continue;
        };
        let name = name.trim().to_string();
        let value = value.trim().trim_end_matches(';').trim().to_string();
        let group = name.split('_').next().unwrap_or(&name).to_string();
        reg.consts.push(CodeConst {
            name,
            group,
            value,
            line: i + 1,
        });
    }
    reg
}

/// Whether `masked[pos..]` starts a standalone `codes::NAME` reference
/// (not a longer identifier).
fn is_ref_at(masked: &[u8], pos: usize, name: &str) -> bool {
    let end = pos + name.len();
    if masked.len() > end {
        let c = masked[end];
        if c.is_ascii_alphanumeric() || c == b'_' {
            return false;
        }
    }
    true
}

/// All `codes::NAME` reference positions of `name` in `masked`.
fn refs_in(masked: &str, name: &str) -> Vec<usize> {
    let needle = format!("codes::{name}");
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = masked[from..].find(&needle) {
        let pos = from + off;
        if is_ref_at(masked.as_bytes(), pos + 7, name) {
            out.push(pos);
        }
        from = pos + needle.len();
    }
    out
}

/// Marker classifying a function as a decode site regardless of name.
pub const DECODE_MARKER: &str = "analyze: wire-decode";

fn is_decode_role(file: &SourceFile, f: &FnSpan) -> bool {
    f.name.contains("decode")
        || f.name.contains("from_code")
        || file.marker_above(f.sig_line, DECODE_MARKER)
}

/// Catch-all patterns acceptable as explicit unknown-code rejection.
const REJECTIONS: &[&str] = &["BadTag", "_ =>", "=> None", "return None"];

/// Runs the conformance checks for an explicit registry file (test
/// entry point; [`run`] locates the real one by path suffix).
pub fn check(registry_file: &SourceFile, files: &[SourceFile]) -> Vec<Finding> {
    let reg = parse_registry(&registry_file.raw);
    let mut findings = Vec::new();

    // Registry hygiene: duplicate numeric values within a group.
    let mut by_group: BTreeMap<&str, Vec<&CodeConst>> = BTreeMap::new();
    for c in &reg.consts {
        by_group.entry(c.group.as_str()).or_default().push(c);
    }
    for (group, members) in &by_group {
        let mut seen: BTreeMap<u64, &str> = BTreeMap::new();
        for c in members {
            let Ok(v) = c.value.parse::<u64>() else {
                continue; // const expression; the compiler owns its value
            };
            if let Some(prev) = seen.insert(v, &c.name) {
                findings.push(Finding {
                    rule: Rule::WireConf,
                    file: registry_file.path.clone(),
                    line: c.line,
                    text: format!(
                        "duplicate value {v} in wire-code group `{group}`: \
                         `{prev}` and `{}`",
                        c.name
                    ),
                });
            }
        }
    }

    // Reference census: per const, (any ref, decode-role ref); per
    // decode fn, which members of which groups it references.
    let mut any_ref: BTreeMap<&str, bool> = BTreeMap::new();
    let mut decoded: BTreeMap<&str, bool> = BTreeMap::new();
    // (file idx, fn name, sig line) -> group -> set of member names.
    #[allow(clippy::type_complexity)]
    let mut per_decode_fn: BTreeMap<(usize, String, usize), BTreeMap<&str, BTreeSet<&str>>> =
        BTreeMap::new();
    let mut decode_fns: BTreeMap<(usize, String, usize), bool> = BTreeMap::new(); // uses codes?

    let spans: Vec<Vec<FnSpan>> = files.iter().map(fn_spans).collect();
    for (fi, file) in files.iter().enumerate() {
        if file.path == registry_file.path {
            continue;
        }
        for c in &reg.consts {
            for pos in refs_in(&file.masked, &c.name) {
                if file.line_in_test(file.line_of(pos)) {
                    continue;
                }
                *any_ref.entry(c.name.as_str()).or_default() = true;
                if let Some(f) = enclosing_fn(&spans[fi], pos) {
                    if is_decode_role(file, f) {
                        *decoded.entry(c.name.as_str()).or_default() = true;
                        let key = (fi, f.name.clone(), f.sig_line);
                        per_decode_fn
                            .entry(key.clone())
                            .or_default()
                            .entry(c.group.as_str())
                            .or_default()
                            .insert(c.name.as_str());
                        decode_fns.insert(key, true);
                    }
                }
            }
        }
    }

    for c in &reg.consts {
        if !any_ref.get(c.name.as_str()).copied().unwrap_or(false) {
            findings.push(Finding {
                rule: Rule::WireConf,
                file: registry_file.path.clone(),
                line: c.line,
                text: format!(
                    "wire code `{}` is never referenced outside the registry (dead code point)",
                    c.name
                ),
            });
        } else if !reg.mint_only.contains(&c.group)
            && !decoded.get(c.name.as_str()).copied().unwrap_or(false)
        {
            findings.push(Finding {
                rule: Rule::WireConf,
                file: registry_file.path.clone(),
                line: c.line,
                text: format!(
                    "wire code `{}` is never handled at any decode site (group `{}` is not \
                     mint-only)",
                    c.name, c.group
                ),
            });
        }
    }

    // Decode completeness + explicit rejection, per decode-role fn.
    for ((fi, fn_name, sig_line), groups) in &per_decode_fn {
        let file = &files[*fi];
        for (group, handled) in groups {
            if reg.mint_only.contains(*group) {
                continue;
            }
            let missing: Vec<&str> = by_group[group]
                .iter()
                .map(|c| c.name.as_str())
                .filter(|n| !handled.contains(*n))
                .collect();
            if !missing.is_empty() {
                findings.push(Finding {
                    rule: Rule::WireConf,
                    file: file.path.clone(),
                    line: *sig_line,
                    text: format!(
                        "decode fn `{fn_name}` handles wire-code group `{group}` but misses: {}",
                        missing.join(", ")
                    ),
                });
            }
        }
        let span = spans[*fi]
            .iter()
            .find(|s| s.name == *fn_name && s.sig_line == *sig_line)
            .expect("span recorded above");
        let body = &file.masked[span.body_start..span.body_end];
        if !REJECTIONS.iter().any(|r| body.contains(r)) {
            findings.push(Finding {
                rule: Rule::WireConf,
                file: file.path.clone(),
                line: *sig_line,
                text: format!(
                    "decode fn `{fn_name}` lacks an explicit unknown-code rejection \
                     (no BadTag / catch-all arm)"
                ),
            });
        }
    }

    // No literal tags in registry-using files.
    for file in files {
        if file.path == registry_file.path || !file.masked.contains("codes::") {
            continue;
        }
        for (n, line) in file.masked.lines().enumerate() {
            if file.in_test.get(n).copied().unwrap_or(false) {
                continue;
            }
            for enc in [".u8(", ".u16(", ".u32(", ".u64("] {
                let mut from = 0;
                while let Some(off) = line[from..].find(enc) {
                    let pos = from + off + enc.len();
                    if line.as_bytes().get(pos).is_some_and(u8::is_ascii_digit) {
                        findings.push(Finding {
                            rule: Rule::WireConf,
                            file: file.path.clone(),
                            line: n + 1,
                            text: format!(
                                "literal wire value in encoder call (use a \
                                 fractos_core::wire::codes constant): {}",
                                line.trim()
                            ),
                        });
                    }
                    from = pos;
                }
            }
            let t = line.trim_start();
            if t.as_bytes().first().is_some_and(u8::is_ascii_digit) && t.contains("=>") {
                findings.push(Finding {
                    rule: Rule::WireConf,
                    file: file.path.clone(),
                    line: n + 1,
                    text: format!(
                        "literal integer match arm in a registry-using file (use a \
                         fractos_core::wire::codes constant): {}",
                        line.trim()
                    ),
                });
            }
        }
    }

    findings
}

pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let Some(registry) = files
        .iter()
        .find(|f| f.path.to_string_lossy().ends_with(REGISTRY_SUFFIX))
    else {
        return vec![Finding {
            rule: Rule::WireConf,
            file: std::path::PathBuf::from(REGISTRY_SUFFIX),
            line: 1,
            text: format!(
                "wire-code registry not found (expected a file ending {REGISTRY_SUFFIX})"
            ),
        }];
    };
    check(registry, files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn corpus(name: &str) -> SourceFile {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("corpus")
            .join(name);
        SourceFile::load(&path).expect("corpus file readable")
    }

    #[test]
    fn corpus_wire_fixture_yields_expected_findings() {
        let registry = corpus("bad_wire_registry.rs");
        let decoder = corpus("bad_wire_unhandled.rs");
        let findings = check(&registry, &[decoder]);
        let texts: Vec<&str> = findings.iter().map(|f| f.text.as_str()).collect();
        assert!(
            texts.iter().any(|t| t.contains("duplicate value 1")),
            "{texts:?}"
        );
        assert!(
            texts
                .iter()
                .any(|t| t.contains("`XX_DEAD` is never referenced")),
            "{texts:?}"
        );
        assert!(
            texts.iter().any(|t| t.contains("`decode_any`")
                && t.contains("misses:")
                && t.contains("XX_PONG")
                && t.contains("XX_DATA")),
            "{texts:?}"
        );
        assert!(
            texts
                .iter()
                .any(|t| t.contains("`decode_loose`") && t.contains("unknown-code rejection")),
            "{texts:?}"
        );
        assert!(
            texts.iter().any(|t| t.contains("literal wire value")),
            "{texts:?}"
        );
        // Mint-only group: encoded but never decoded, and that is fine.
        assert!(
            !texts.iter().any(|t| t.contains("YY_MARK")),
            "mint-only group must be exempt from decode checks: {texts:?}"
        );
    }

    #[test]
    fn registry_parse_reads_groups_and_annotations() {
        let reg = parse_registry(
            "pub const AB_X: u8 = 0;\n// analyze: group CD mint-only\npub const CD_Y: u64 = 2;\n",
        );
        assert_eq!(reg.consts.len(), 2);
        assert_eq!(reg.consts[0].group, "AB");
        assert_eq!(reg.consts[1].value, "2");
        assert!(reg.mint_only.contains("CD"));
    }

    #[test]
    fn wire_decode_marker_classifies_dispatchers() {
        let registry = SourceFile::from_source(
            "codes.rs",
            "pub const WW_A: u8 = 0;\npub const WW_B: u8 = 1;\n",
        );
        let user = SourceFile::from_source(
            "svc.rs",
            "fn mint(e: &mut E) { e.u8(codes::WW_A); e.u8(codes::WW_B); }\n\
             // analyze: wire-decode\n\
             fn on_request(&mut self, k: u8) {\n    match k {\n        codes::WW_A => a(),\n        \
             _ => {}\n    }\n}\n",
        );
        let findings = check(&registry, &[user]);
        assert!(
            findings
                .iter()
                .any(|f| f.text.contains("`on_request`") && f.text.contains("misses: WW_B")),
            "marked dispatcher must be held to decode completeness: {findings:?}"
        );
    }

    #[test]
    fn complete_decode_with_rejection_is_clean() {
        let registry = SourceFile::from_source(
            "codes.rs",
            "pub const ZZ_A: u8 = 0;\npub const ZZ_B: u8 = 1;\n",
        );
        let user = SourceFile::from_source(
            "proto.rs",
            "use codes;\nfn encode(e: &mut E) { e.u8(codes::ZZ_A); e.u8(codes::ZZ_B); }\n\
             fn decode(d: &mut D) -> R {\n    match d.u8()? {\n        codes::ZZ_A => a(),\n        \
             codes::ZZ_B => b(),\n        t => Err(DecodeError::BadTag(t)),\n    }\n}\n",
        );
        let findings = check(&registry, &[user]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
