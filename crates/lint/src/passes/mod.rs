//! The analysis passes of `fractos-analyze`.
//!
//! Each pass is a pure function from loaded [`SourceFile`]s to
//! [`Finding`]s; ordering and allowlisting happen in
//! [`analyze`](crate::analyze).
//!
//! [`SourceFile`]: crate::SourceFile
//! [`Finding`]: crate::Finding

pub mod hazards;
pub mod hotpath;
pub mod lockorder;
pub mod wireconf;
