//! Hot-path hazard lint: no allocation or copying in marked functions.
//!
//! The engine's per-event cost budget is tens of nanoseconds; a single
//! `clone()` or fresh `Vec` in the event loop dominates it. Functions on
//! the per-event path carry an `// analyze: hot-path` marker above their
//! signature (the engine step, the sharded window runner, fabric
//! routing/sends, the timing-wheel operations), and this pass denies
//! allocation and copy idioms inside their bodies:
//!
//! `.clone()`, `.to_vec()`, `.to_owned()`, `.to_string()`, `Vec::new()`,
//! `vec![`, `String::new()`, `String::from(`, `Box::new(`, `format!(`,
//! `with_capacity(`, `.collect()`.
//!
//! The check is direct-body only (callees are not traversed): the marker
//! states a *local* obligation, and pushing it transitively would forbid
//! legitimately-amortized structures (map nodes, pre-reserved buffers)
//! behind helper calls. Panic/assert messages are fine — they are string
//! literals, which masking blanks, and the allocation happens only on
//! the failure path... but `format!` in the success path is not.
//! `#[cfg(test)]` code is exempt.

use crate::{fn_spans, Finding, Rule, SourceFile};

/// Marker placing a function on the allocation-free hot path.
pub const HOT_PATH_MARKER: &str = "analyze: hot-path";

/// Denied allocation/copy idioms (searched in masked body text).
const BANNED: &[&str] = &[
    ".clone()",
    ".to_vec()",
    ".to_owned()",
    ".to_string()",
    "Vec::new()",
    "vec![",
    "String::new()",
    "String::from(",
    "Box::new(",
    "format!(",
    "with_capacity(",
    ".collect()",
];

pub fn run(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        for span in fn_spans(file) {
            if file.line_in_test(span.sig_line)
                || !file.marker_above(span.sig_line, HOT_PATH_MARKER)
            {
                continue;
            }
            let body = &file.masked[span.body_start..span.body_end];
            for pat in BANNED {
                let mut from = 0;
                while let Some(off) = body[from..].find(pat) {
                    let pos = span.body_start + from + off;
                    findings.push(Finding {
                        rule: Rule::HotPath,
                        file: file.path.clone(),
                        line: file.line_of(pos),
                        text: format!(
                            "allocation/copy in hot-path fn `{}`: `{}`",
                            span.name,
                            pat.trim_end_matches('(')
                        ),
                    });
                    from += off + pat.len();
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn corpus(name: &str) -> SourceFile {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("corpus")
            .join(name);
        SourceFile::load(&path).expect("corpus file readable")
    }

    #[test]
    fn corpus_hotpath_allocations_detected() {
        let findings = run(&[corpus("bad_hotpath_clone.rs")]);
        let texts: Vec<&str> = findings.iter().map(|f| f.text.as_str()).collect();
        assert!(
            texts.iter().filter(|t| t.contains("`step`")).count() >= 3,
            "clone, Vec::new and format! in the marked fn must all fire: {texts:?}"
        );
        assert!(
            !texts.iter().any(|t| t.contains("`cold`")),
            "unmarked fns are not hot-path: {texts:?}"
        );
    }

    #[test]
    fn unmarked_fns_are_exempt() {
        let src = "fn busy() { let v = vec![1, 2]; let _ = v.clone(); }\n";
        assert!(run(&[SourceFile::from_source("x.rs", src)]).is_empty());
    }

    #[test]
    fn marked_fn_without_allocations_is_clean() {
        let src = "// analyze: hot-path\nfn lean(&mut self) { self.n += 1; }\n";
        assert!(run(&[SourceFile::from_source("x.rs", src)]).is_empty());
    }
}
