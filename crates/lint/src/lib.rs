#![forbid(unsafe_code)]
//! Static analysis for the FractOS source tree (`fractos-analyze`).
//!
//! The simulation's headline invariant is bit-identical replay, and its
//! concurrency story rests on a small set of conventions that rustc does
//! not check: a canonical lock acquisition order over [`Shared`] handles,
//! a single registry for wire-protocol code points, and allocation-free
//! hot paths in the engine core. This crate checks all of them from
//! source text, with no dependency on rustc internals or external crates
//! (the build environment is offline).
//!
//! Four passes:
//!
//! * **hazards** — the original determinism lint: wall-clock reads,
//!   `thread_local!`, ambient randomness, hash-order iteration and
//!   `unwrap()`/`expect(` in product paths (see [`passes::hazards`]).
//! * **lock-order** — builds an inter-procedural *may-hold-while-
//!   acquiring* graph over `Shared<T>` borrow/lock call sites and denies
//!   cycles and same-class nesting (see [`passes::lockorder`]). The
//!   runtime complement is the `lockdep` feature of `fractos-sim`.
//! * **wire-conf** — checks the `fractos_core::wire::codes` registry
//!   against every encode/decode site: every code handled or explicitly
//!   rejected at every decode fn, no literal tag bytes, no dead or
//!   duplicate code points (see [`passes::wireconf`]).
//! * **hot-path** — denies allocation/copy idioms inside functions
//!   marked `// analyze: hot-path` (see [`passes::hotpath`]).
//!
//! `#[cfg(test)]` modules are exempt everywhere. Justified exceptions
//! live in `crates/lint/allowlist.txt`, one per line with a reason;
//! entries that no longer match any finding are *stale* and fail the
//! full run, so the allowlist cannot rot. All diagnostics are emitted in
//! a deterministic order (sorted by file, line, rule, text), so running
//! the tool twice produces byte-identical output.
//!
//! Two binaries share this library: `fractos-lint` (the original
//! hazards-only entry point, kept for CI compatibility) and
//! `fractos-analyze` (all passes plus allowlist hygiene).
//!
//! [`Shared`]: ../fractos_sim/shared/index.html

use std::fmt;
use std::path::{Path, PathBuf};

pub mod passes;

/// Product crates scanned (shims and this tool are excluded: the shims
/// intentionally wrap wall-clock APIs behind a stable interface, and the
/// analyzer's own sources spell the hazard patterns out).
pub const PRODUCT_CRATES: &[&str] = &[
    "cap",
    "core",
    "net",
    "sim",
    "devices",
    "services",
    "baselines",
    "obs",
    "bench",
];

/// A diagnostic rule identifier. `as_str` names are what the allowlist
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    Wallclock,
    ThreadLocal,
    AmbientRand,
    HashIter,
    Unwrap,
    LockOrder,
    WireConf,
    HotPath,
}

impl Rule {
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::Wallclock => "wallclock",
            Rule::ThreadLocal => "thread-local",
            Rule::AmbientRand => "ambient-rand",
            Rule::HashIter => "hash-iter",
            Rule::Unwrap => "unwrap",
            Rule::LockOrder => "lock-order",
            Rule::WireConf => "wire-conf",
            Rule::HotPath => "hot-path",
        }
    }

    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "wallclock" => Some(Rule::Wallclock),
            "thread-local" => Some(Rule::ThreadLocal),
            "ambient-rand" => Some(Rule::AmbientRand),
            "hash-iter" => Some(Rule::HashIter),
            "unwrap" => Some(Rule::Unwrap),
            "lock-order" => Some(Rule::LockOrder),
            "wire-conf" => Some(Rule::WireConf),
            "hot-path" => Some(Rule::HotPath),
            _ => None,
        }
    }
}

/// One diagnostic, anchored to one line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: PathBuf,
    pub line: usize,
    pub text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.as_str(),
            self.text.trim()
        )
    }
}

/// One allowlist entry: `rule|path-suffix|substring-or-*|reason`.
pub struct AllowEntry {
    pub rule: Rule,
    pub path_suffix: String,
    pub needle: String,
    /// The reason is for humans reading the file; parsing enforces that
    /// it is present.
    pub reason: String,
    /// 1-based line in allowlist.txt, for stale-entry diagnostics.
    pub line: usize,
}

impl AllowEntry {
    pub fn matches(&self, finding: &Finding) -> bool {
        self.rule == finding.rule
            && finding.file.to_string_lossy().ends_with(&self.path_suffix)
            && (self.needle == "*" || finding.text.contains(&self.needle))
    }
}

pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '|').collect();
        let [rule, path, needle, reason] = parts[..] else {
            return Err(format!(
                "allowlist line {}: expected `rule|path-suffix|substring-or-*|reason`",
                i + 1
            ));
        };
        let Some(rule) = Rule::parse(rule.trim()) else {
            return Err(format!("allowlist line {}: unknown rule `{rule}`", i + 1));
        };
        if reason.trim().is_empty() {
            return Err(format!(
                "allowlist line {}: every exception needs a reason",
                i + 1
            ));
        }
        entries.push(AllowEntry {
            rule,
            path_suffix: path.trim().to_string(),
            needle: needle.trim().to_string(),
            reason: reason.trim().to_string(),
            line: i + 1,
        });
    }
    Ok(entries)
}

/// Blanks comments, string literals and char literals from `src`,
/// preserving line structure and byte offsets, so rules never fire on
/// prose or messages and masked positions map 1:1 onto raw positions.
pub fn mask_source(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = |k: usize| bytes.get(i + k).copied().unwrap_or(0);
        match st {
            St::Code => match b {
                b'/' if next(1) == b'/' => {
                    st = St::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'/' if next(1) == b'*' => {
                    st = St::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'"' => {
                    st = St::Str;
                    out.push(b' ');
                    i += 1;
                }
                b'r' if next(1) == b'"' || (next(1) == b'#') => {
                    // Possible raw string r"..." / r#"..."#; count hashes.
                    let mut hashes = 0;
                    while next(1 + hashes) == b'#' {
                        hashes += 1;
                    }
                    if next(1 + hashes) == b'"' {
                        st = St::RawStr(hashes);
                        out.resize(out.len() + 2 + hashes, b' ');
                        i += 2 + hashes;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                }
                b'\'' => {
                    // Char literal or lifetime. A lifetime ('a, 'static) has
                    // no closing quote within a couple of chars.
                    let is_char = next(1) == b'\\'
                        || next(2) == b'\''
                        || (next(1) != 0 && next(2) != 0 && next(3) == b'\'' && next(1) == b'\\');
                    if is_char {
                        st = St::Char;
                        out.push(b' ');
                        i += 1;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                }
                _ => {
                    out.push(b);
                    i += 1;
                }
            },
            St::LineComment => {
                if b == b'\n' {
                    st = St::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if b == b'/' && next(1) == b'*' {
                    st = St::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'*' && next(1) == b'/' {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            St::Str => {
                if b == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    st = St::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if b == b'"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if next(1 + k) != b'#' {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = St::Code;
                        out.resize(out.len() + 1 + hashes, b' ');
                        i += 1 + hashes;
                        continue;
                    }
                }
                out.push(if b == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
            St::Char => {
                if b == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'\'' {
                    st = St::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Marks, per line, whether it sits inside a `#[cfg(test)]`-gated item
/// (the standard in-file unit-test module). Operates on masked source so
/// braces in strings/comments don't skew the depth tracking.
pub fn test_region_lines(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            // The gated item starts at the next `{` and ends when its
            // brace closes.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                in_test[j] = true;
                for b in lines[j].bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// The identifier ending just before byte `pos` of `line`, if any.
pub fn ident_before(line: &str, pos: usize) -> Option<String> {
    let head = &line.as_bytes()[..pos];
    let end = head
        .iter()
        .rposition(|b| b.is_ascii_alphanumeric() || *b == b'_')?
        + 1;
    let start = head[..end]
        .iter()
        .rposition(|b| !(b.is_ascii_alphanumeric() || *b == b'_'))
        .map_or(0, |p| p + 1);
    if start == end {
        return None;
    }
    Some(String::from_utf8_lossy(&head[start..end]).into_owned())
}

/// A product source file with the derived views every pass needs.
pub struct SourceFile {
    pub path: PathBuf,
    pub raw: String,
    /// [`mask_source`] of `raw`: byte-offset-compatible, prose blanked.
    pub masked: String,
    /// Per-line `#[cfg(test)]` membership, from [`test_region_lines`].
    pub in_test: Vec<bool>,
    /// Byte offset of the start of each (0-based) line in `masked`.
    line_starts: Vec<usize>,
}

impl SourceFile {
    pub fn from_source(path: impl Into<PathBuf>, raw: &str) -> SourceFile {
        let masked = mask_source(raw);
        let in_test = test_region_lines(&masked);
        let mut line_starts = vec![0];
        for (i, b) in masked.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile {
            path: path.into(),
            raw: raw.to_string(),
            masked,
            in_test,
            line_starts,
        }
    }

    pub fn load(path: &Path) -> Result<SourceFile, String> {
        let raw =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Ok(SourceFile::from_source(path, &raw))
    }

    /// 1-based line number containing byte offset `pos` of `masked`.
    pub fn line_of(&self, pos: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= pos)
    }

    /// Whether the (1-based) line sits in a `#[cfg(test)]` region.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.in_test
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Whether an `// analyze: <marker>` comment sits in the attribute /
    /// doc-comment block immediately above the (1-based) `sig_line`.
    pub fn marker_above(&self, sig_line: usize, marker: &str) -> bool {
        let lines: Vec<&str> = self.raw.lines().collect();
        let mut i = sig_line.saturating_sub(1); // index of the fn line
        while i > 0 {
            i -= 1;
            let t = lines.get(i).map(|l| l.trim()).unwrap_or("");
            if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") {
                if t.contains(marker) {
                    return true;
                }
            } else {
                return false;
            }
        }
        false
    }
}

/// One `fn` item found in masked source: its name, the line of the `fn`
/// keyword, and the byte span of its `{ .. }` body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    pub sig_line: usize,
    pub body_start: usize,
    pub body_end: usize,
}

/// Extracts every `fn` item (including nested and trait-default fns;
/// bodiless trait declarations are skipped) from masked source. Works on
/// token shape only: the `fn` keyword, the following identifier, then
/// the first top-level `{` (a `;` first means no body).
pub fn fn_spans(file: &SourceFile) -> Vec<FnSpan> {
    let b = file.masked.as_bytes();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 2 < b.len() {
        if b[i] == b'f'
            && b[i + 1] == b'n'
            && (i == 0 || !is_ident(b[i - 1]))
            && b[i + 2].is_ascii_whitespace()
        {
            let mut j = i + 2;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < b.len() && is_ident(b[j]) {
                j += 1;
            }
            if j == name_start {
                i += 2;
                continue;
            }
            let name = file.masked[name_start..j].to_string();
            // Find the body `{` or a `;` (no body), skipping the
            // signature. Parens/brackets in the signature can't contain
            // braces (no default arguments in Rust).
            let mut k = j;
            let mut body_start = None;
            while k < b.len() {
                match b[k] {
                    b'{' => {
                        body_start = Some(k);
                        break;
                    }
                    b';' => break,
                    _ => k += 1,
                }
            }
            if let Some(start) = body_start {
                let mut depth = 0i32;
                let mut end = start;
                while end < b.len() {
                    match b[end] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    end += 1;
                }
                spans.push(FnSpan {
                    name,
                    sig_line: file.line_of(i),
                    body_start: start,
                    body_end: (end + 1).min(b.len()),
                });
            }
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// The innermost function span containing byte `pos`, if any.
pub fn enclosing_fn(spans: &[FnSpan], pos: usize) -> Option<&FnSpan> {
    spans
        .iter()
        .filter(|s| s.body_start < pos && pos < s.body_end)
        .min_by_key(|s| s.body_end - s.body_start)
}

pub fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

pub fn workspace_root() -> PathBuf {
    // crates/lint/ -> workspace root. CARGO_MANIFEST_DIR is compiled in,
    // so `cargo run -p fractos-lint` works from any cwd.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Loads every product-crate source file under `root`, sorted by path.
pub fn load_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    for krate in PRODUCT_CRATES {
        walk_rs_files(&root.join("crates").join(krate).join("src"), &mut paths);
    }
    if paths.is_empty() {
        return Err(format!(
            "no sources found under {} — wrong root?",
            root.display()
        ));
    }
    paths.iter().map(|p| SourceFile::load(p)).collect()
}

/// An analysis pass identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    Hazards,
    LockOrder,
    WireConf,
    HotPath,
}

impl Pass {
    pub const ALL: &[Pass] = &[
        Pass::Hazards,
        Pass::LockOrder,
        Pass::WireConf,
        Pass::HotPath,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            Pass::Hazards => "hazards",
            Pass::LockOrder => "lock-order",
            Pass::WireConf => "wire-conf",
            Pass::HotPath => "hot-path",
        }
    }

    pub fn parse(s: &str) -> Option<Pass> {
        match s {
            "hazards" => Some(Pass::Hazards),
            "lock-order" => Some(Pass::LockOrder),
            "wire-conf" => Some(Pass::WireConf),
            "hot-path" => Some(Pass::HotPath),
            _ => None,
        }
    }

    pub fn run(self, files: &[SourceFile]) -> Vec<Finding> {
        match self {
            Pass::Hazards => passes::hazards::run(files),
            Pass::LockOrder => passes::lockorder::run(files),
            Pass::WireConf => passes::wireconf::run(files),
            Pass::HotPath => passes::hotpath::run(files),
        }
    }
}

/// The result of one analysis run.
pub struct Analysis {
    /// Number of source files scanned.
    pub files: usize,
    /// Unsuppressed findings, sorted by (file, line, rule, text).
    pub reported: Vec<Finding>,
    /// Count of findings suppressed by the allowlist.
    pub suppressed: usize,
    /// Stale-allowlist diagnostics (entries that matched nothing), one
    /// formatted line each. Populated only when `check_stale` was set.
    pub stale: Vec<String>,
}

/// Runs `passes` over the product sources under `root`, applying the
/// allowlist at `crates/lint/allowlist.txt`.
///
/// With `check_stale` set (only meaningful when *all* passes run, since
/// an entry for a skipped pass trivially matches nothing), allowlist
/// entries that suppressed no finding are reported in
/// [`Analysis::stale`] so the exception list cannot outlive the code it
/// excuses.
pub fn analyze(root: &Path, passes: &[Pass], check_stale: bool) -> Result<Analysis, String> {
    let allow_path = root.join("crates/lint/allowlist.txt");
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let allowlist = parse_allowlist(&allow_text)?;
    let files = load_sources(root)?;

    let mut findings = Vec::new();
    for pass in passes {
        findings.extend(pass.run(&files));
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule.as_str(), &a.text).cmp(&(
            &b.file,
            b.line,
            b.rule.as_str(),
            &b.text,
        ))
    });

    let mut hits = vec![0usize; allowlist.len()];
    let mut reported = Vec::new();
    let mut suppressed = 0;
    for finding in findings {
        match allowlist.iter().position(|a| a.matches(&finding)) {
            Some(i) => {
                hits[i] += 1;
                suppressed += 1;
            }
            None => reported.push(finding),
        }
    }

    let mut stale = Vec::new();
    if check_stale {
        for (entry, &n) in allowlist.iter().zip(&hits) {
            if n == 0 {
                stale.push(format!(
                    "crates/lint/allowlist.txt:{}: stale allowlist entry `{}|{}|{}` suppresses nothing — remove it",
                    entry.line,
                    entry.rule.as_str(),
                    entry.path_suffix,
                    entry.needle
                ));
            }
        }
    }

    Ok(Analysis {
        files: files.len(),
        reported,
        suppressed,
        stale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked() {
        let src = "// Instant::now()\nfn f() -> &'static str { \"thread_rng()\" }\n";
        let masked = mask_source(src);
        assert!(!masked.contains("Instant"));
        assert!(!masked.contains("thread_rng"));
        assert_eq!(masked.len(), src.len(), "masking must preserve offsets");
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "fn f() -> &'static str { r#\"SystemTime::now()\"# }\n";
        assert!(!mask_source(src).contains("SystemTime"));
    }

    #[test]
    fn allowlist_suppresses_with_reason_only() {
        assert!(parse_allowlist("unwrap|net/src/fabric.rs|checked_add|overflow guard").is_ok());
        assert!(parse_allowlist("unwrap|net/src/fabric.rs|checked_add|").is_err());
        assert!(parse_allowlist("nosuch|a.rs|*|why").is_err());
        assert!(parse_allowlist("# comment\n\n").unwrap().is_empty());
        let new_rules = "lock-order|sim/src/x.rs|*|why\nwire-conf|a.rs|*|why\nhot-path|b.rs|*|why";
        assert_eq!(parse_allowlist(new_rules).unwrap().len(), 3);
    }

    #[test]
    fn allowlist_matches_by_rule_path_and_needle() {
        let entries =
            parse_allowlist("unwrap|fabric.rs|checked_add|overflow guard").expect("parses");
        let hit = Finding {
            rule: Rule::Unwrap,
            file: PathBuf::from("/w/crates/net/src/fabric.rs"),
            line: 71,
            text: ".checked_add(occ).expect(..)".into(),
        };
        let miss_rule = Finding {
            rule: Rule::Wallclock,
            file: hit.file.clone(),
            line: 71,
            text: hit.text.clone(),
        };
        let miss_text = Finding {
            rule: Rule::Unwrap,
            file: hit.file.clone(),
            line: 90,
            text: "other.unwrap()".into(),
        };
        assert!(entries[0].matches(&hit));
        assert!(!entries[0].matches(&miss_rule));
        assert!(!entries[0].matches(&miss_text));
    }

    #[test]
    fn fn_spans_find_bodies_and_skip_declarations() {
        let src = "trait T {\n    fn decl(&self) -> u32;\n    fn with_default(&self) -> u32 { 1 }\n}\nfn top(x: fn(u32) -> u32) -> u32 {\n    fn nested() -> u32 { 2 }\n    x(nested())\n}\n";
        let file = SourceFile::from_source("x.rs", src);
        let spans = fn_spans(&file);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["with_default", "top", "nested"]);
        let top = spans.iter().find(|s| s.name == "top").unwrap();
        let nested = spans.iter().find(|s| s.name == "nested").unwrap();
        assert!(top.body_start < nested.body_start && nested.body_end < top.body_end);
        let inner_pos = nested.body_start + 1;
        assert_eq!(enclosing_fn(&spans, inner_pos).unwrap().name, "nested");
    }

    #[test]
    fn markers_attach_through_doc_comments_and_attributes() {
        let src = "// analyze: hot-path\n/// Docs.\n#[inline]\nfn hot() {}\n\nfn cold() {}\n";
        let file = SourceFile::from_source("x.rs", src);
        let spans = fn_spans(&file);
        let hot = spans.iter().find(|s| s.name == "hot").unwrap();
        let cold = spans.iter().find(|s| s.name == "cold").unwrap();
        assert!(file.marker_above(hot.sig_line, "analyze: hot-path"));
        assert!(!file.marker_above(cold.sig_line, "analyze: hot-path"));
    }

    #[test]
    fn line_of_maps_offsets_to_lines() {
        let file = SourceFile::from_source("x.rs", "a\nbb\nccc\n");
        assert_eq!(file.line_of(0), 1);
        assert_eq!(file.line_of(2), 2);
        assert_eq!(file.line_of(5), 3);
    }

    #[test]
    fn analysis_runs_clean_over_this_repository() {
        // The repo-level guarantee CI enforces: all four passes, zero
        // unallowlisted findings, zero stale allowlist entries.
        let root = workspace_root();
        let analysis = analyze(&root, Pass::ALL, true).expect("analysis runs");
        assert!(
            analysis.reported.is_empty(),
            "unallowlisted findings:\n{}",
            analysis
                .reported
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            analysis.stale.is_empty(),
            "stale allowlist entries:\n{}",
            analysis.stale.join("\n")
        );
    }

    #[test]
    fn analysis_is_deterministic_across_runs() {
        let root = workspace_root();
        let render = |a: &Analysis| {
            let mut s = String::new();
            for f in &a.reported {
                s.push_str(&f.to_string());
                s.push('\n');
            }
            for l in &a.stale {
                s.push_str(l);
                s.push('\n');
            }
            s
        };
        let a = analyze(&root, Pass::ALL, true).expect("first run");
        let b = analyze(&root, Pass::ALL, true).expect("second run");
        assert_eq!(render(&a), render(&b), "output must be byte-identical");
        assert_eq!(a.suppressed, b.suppressed);
        assert_eq!(a.files, b.files);
    }
}
