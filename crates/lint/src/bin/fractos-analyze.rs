#![forbid(unsafe_code)]
//! `fractos-analyze` — the full static-analysis suite.
//!
//! Runs all four passes (hazards, lock-order, wire-conf, hot-path) over
//! the product crates, applies `crates/lint/allowlist.txt`, and — when
//! the full pass set runs — reports *stale* allowlist entries (entries
//! that suppressed nothing) as failures, so the exception list cannot
//! outlive the code it excuses.
//!
//! Output is deterministic: findings sorted by (file, line, rule, text),
//! no timestamps — running the tool twice produces byte-identical
//! output, which CI asserts.
//!
//! Usage: `fractos-analyze [--deny] [--root PATH] [--pass NAME]...`
//! (`--pass` may repeat to run a subset; stale checking only happens
//! with the full set).

use std::path::PathBuf;
use std::process::ExitCode;

use fractos_lint::{analyze, workspace_root, Pass};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny = false;
    let mut root = workspace_root();
    let mut passes: Vec<Pass> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--pass" => match it.next().and_then(|s| Pass::parse(s)) {
                Some(p) => {
                    if !passes.contains(&p) {
                        passes.push(p);
                    }
                }
                None => {
                    eprintln!("--pass needs one of: hazards, lock-order, wire-conf, hot-path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "unknown flag `{other}` \
                     (usage: fractos-analyze [--deny] [--root PATH] [--pass NAME]...)"
                );
                return ExitCode::from(2);
            }
        }
    }
    if passes.is_empty() {
        passes = Pass::ALL.to_vec();
    }
    let full = Pass::ALL.iter().all(|p| passes.contains(p));

    let analysis = match analyze(&root, &passes, full) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fractos-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    for finding in &analysis.reported {
        println!("{finding}");
    }
    for stale in &analysis.stale {
        println!("{stale}");
    }
    let pass_names: Vec<&str> = passes.iter().map(|p| p.as_str()).collect();
    println!(
        "fractos-analyze: {} file(s), {} finding(s), {} allowlisted, {} stale allowlist \
         entr{} [passes: {}]{}",
        analysis.files,
        analysis.reported.len(),
        analysis.suppressed,
        analysis.stale.len(),
        if analysis.stale.len() == 1 {
            "y"
        } else {
            "ies"
        },
        pass_names.join(" "),
        if deny { " [--deny]" } else { "" }
    );
    if deny && (!analysis.reported.is_empty() || !analysis.stale.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
