#![forbid(unsafe_code)]
//! `fractos-lint` — the original hazards-only entry point.
//!
//! Runs only the determinism/hazard pass (wallclock, thread-local,
//! ambient-rand, hash-iter, unwrap) with the shared allowlist; kept so
//! existing CI invocations and muscle memory continue to work. The full
//! four-pass tool is `fractos-analyze`.

use std::path::PathBuf;
use std::process::ExitCode;

use fractos_lint::{analyze, workspace_root, Pass};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny = false;
    let mut root = workspace_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}` (usage: fractos-lint [--deny] [--root PATH])");
                return ExitCode::from(2);
            }
        }
    }
    let analysis = match analyze(&root, &[Pass::Hazards], false) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fractos-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for finding in &analysis.reported {
        println!("{finding}");
    }
    println!(
        "fractos-lint: {} file(s), {} finding(s), {} allowlisted{}",
        analysis.files,
        analysis.reported.len(),
        analysis.suppressed,
        if deny { " [--deny]" } else { "" }
    );
    if deny && !analysis.reported.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
