#![forbid(unsafe_code)]
//! Determinism & hazard lint for the FractOS source tree.
//!
//! The simulation's headline invariant is bit-identical replay: the same
//! seed must produce the same traces, counters and latency anchors on
//! every run and on both runtime backends. A handful of innocuous-looking
//! Rust idioms silently break that invariant — wall-clock reads, ambient
//! randomness, iteration over `RandomState`-hashed maps — and `unwrap()`
//! in product paths turns typed failures the OS layer is supposed to
//! *translate* (§3.6) into process aborts. This binary scans the product
//! crates' sources for those hazards, with no dependency on rustc
//! internals or external crates (the build environment is offline).
//!
//! Rules:
//!
//! * `wallclock` — `Instant::now` / `SystemTime` read the host clock; all
//!   simulation time must flow from the virtual clock.
//! * `thread-local` — `thread_local!` state diverges across the sharded
//!   backend's workers.
//! * `ambient-rand` — `thread_rng` / `rand::random` / `from_entropy` /
//!   `OsRng` seed from the environment; randomness must come from the
//!   seeded deterministic RNG.
//! * `hash-iter` — iterating a `HashMap`/`HashSet` observes hasher order,
//!   which differs per process; iterated maps must be `BTreeMap`s.
//! * `unwrap` — `.unwrap()` / `.expect(` outside tests panics instead of
//!   returning a typed `FosError`/`CapError`.
//!
//! `#[cfg(test)]` modules are exempt. Justified exceptions live in
//! `crates/lint/allowlist.txt`, one per line with a reason. Run with
//! `--deny` (CI does) to exit non-zero on any unallowlisted finding.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Product crates scanned (shims and this tool are excluded: the shims
/// intentionally wrap wall-clock APIs behind a stable interface, and the
/// lint's own sources spell the hazard patterns out).
const PRODUCT_CRATES: &[&str] = &[
    "cap",
    "core",
    "net",
    "sim",
    "devices",
    "services",
    "baselines",
    "obs",
    "bench",
];

/// A lint rule identifier. `as_str` names are what the allowlist uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    Wallclock,
    ThreadLocal,
    AmbientRand,
    HashIter,
    Unwrap,
}

impl Rule {
    fn as_str(self) -> &'static str {
        match self {
            Rule::Wallclock => "wallclock",
            Rule::ThreadLocal => "thread-local",
            Rule::AmbientRand => "ambient-rand",
            Rule::HashIter => "hash-iter",
            Rule::Unwrap => "unwrap",
        }
    }

    fn from_str(s: &str) -> Option<Rule> {
        match s {
            "wallclock" => Some(Rule::Wallclock),
            "thread-local" => Some(Rule::ThreadLocal),
            "ambient-rand" => Some(Rule::AmbientRand),
            "hash-iter" => Some(Rule::HashIter),
            "unwrap" => Some(Rule::Unwrap),
            _ => None,
        }
    }
}

/// One hazard found in one line.
#[derive(Debug)]
struct Finding {
    rule: Rule,
    file: PathBuf,
    line: usize,
    text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.as_str(),
            self.text.trim()
        )
    }
}

/// One allowlist entry: `rule|path-suffix|substring-or-*|reason`.
struct AllowEntry {
    rule: Rule,
    path_suffix: String,
    needle: String,
    #[allow(dead_code)] // the reason is for humans reading the file
    reason: String,
}

impl AllowEntry {
    fn matches(&self, finding: &Finding) -> bool {
        self.rule == finding.rule
            && finding.file.to_string_lossy().ends_with(&self.path_suffix)
            && (self.needle == "*" || finding.text.contains(&self.needle))
    }
}

fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '|').collect();
        let [rule, path, needle, reason] = parts[..] else {
            return Err(format!(
                "allowlist line {}: expected `rule|path-suffix|substring-or-*|reason`",
                i + 1
            ));
        };
        let Some(rule) = Rule::from_str(rule.trim()) else {
            return Err(format!("allowlist line {}: unknown rule `{rule}`", i + 1));
        };
        if reason.trim().is_empty() {
            return Err(format!(
                "allowlist line {}: every exception needs a reason",
                i + 1
            ));
        }
        entries.push(AllowEntry {
            rule,
            path_suffix: path.trim().to_string(),
            needle: needle.trim().to_string(),
            reason: reason.trim().to_string(),
        });
    }
    Ok(entries)
}

/// Blanks comments, string literals and char literals from `src`,
/// preserving line structure, so rules never fire on prose or messages.
fn mask_source(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = |k: usize| bytes.get(i + k).copied().unwrap_or(0);
        match st {
            St::Code => match b {
                b'/' if next(1) == b'/' => {
                    st = St::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'/' if next(1) == b'*' => {
                    st = St::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'"' => {
                    st = St::Str;
                    out.push(b' ');
                    i += 1;
                }
                b'r' if next(1) == b'"' || (next(1) == b'#') => {
                    // Possible raw string r"..." / r#"..."#; count hashes.
                    let mut hashes = 0;
                    while next(1 + hashes) == b'#' {
                        hashes += 1;
                    }
                    if next(1 + hashes) == b'"' {
                        st = St::RawStr(hashes);
                        out.resize(out.len() + 2 + hashes, b' ');
                        i += 2 + hashes;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                }
                b'\'' => {
                    // Char literal or lifetime. A lifetime ('a, 'static) has
                    // no closing quote within a couple of chars.
                    let is_char = next(1) == b'\\'
                        || next(2) == b'\''
                        || (next(1) != 0 && next(2) != 0 && next(3) == b'\'' && next(1) == b'\\');
                    if is_char {
                        st = St::Char;
                        out.push(b' ');
                        i += 1;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                }
                _ => {
                    out.push(b);
                    i += 1;
                }
            },
            St::LineComment => {
                if b == b'\n' {
                    st = St::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if b == b'/' && next(1) == b'*' {
                    st = St::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'*' && next(1) == b'/' {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            St::Str => {
                if b == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    st = St::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if b == b'"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if next(1 + k) != b'#' {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = St::Code;
                        out.resize(out.len() + 1 + hashes, b' ');
                        i += 1 + hashes;
                        continue;
                    }
                }
                out.push(if b == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
            St::Char => {
                if b == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'\'' {
                    st = St::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Marks, per line, whether it sits inside a `#[cfg(test)]`-gated item
/// (the standard in-file unit-test module). Operates on masked source so
/// braces in strings/comments don't skew the depth tracking.
fn test_region_lines(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            // The gated item starts at the next `{` and ends when its
            // brace closes.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                in_test[j] = true;
                for b in lines[j].bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

fn ident_before(line: &str, pos: usize) -> Option<String> {
    let head = &line.as_bytes()[..pos];
    let end = head
        .iter()
        .rposition(|b| b.is_ascii_alphanumeric() || *b == b'_')?
        + 1;
    let start = head[..end]
        .iter()
        .rposition(|b| !(b.is_ascii_alphanumeric() || *b == b'_'))
        .map_or(0, |p| p + 1);
    if start == end {
        return None;
    }
    Some(String::from_utf8_lossy(&head[start..end]).into_owned())
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type or
/// initializer anywhere in the (masked) file: struct fields and bindings
/// (`name: HashMap<..>`), plus `let name = HashMap::new()` forms.
fn hashed_idents(masked: &str) -> Vec<String> {
    let mut idents = Vec::new();
    for line in masked.lines() {
        for pat in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(off) = line[from..].find(pat) {
                let pos = from + off;
                let before = line[..pos].trim_end();
                if let Some(head) = before.strip_suffix(':') {
                    // `name: HashMap<..>` (field, binding or signature).
                    if let Some(id) = ident_before(head, head.len()) {
                        push_unique(&mut idents, id);
                    }
                } else if let Some(head) = before.strip_suffix('=') {
                    // `let name = HashMap::new()` / `name = HashSet::new()`.
                    if let Some(id) = ident_before(head, head.len()) {
                        push_unique(&mut idents, id);
                    }
                }
                from = pos + pat.len();
            }
        }
    }
    idents
}

fn push_unique(v: &mut Vec<String>, s: String) {
    if s != "let" && s != "mut" && !v.contains(&s) {
        v.push(s);
    }
}

/// Iteration methods whose order observes hasher state.
const ORDER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];

fn scan_file(path: &Path, src: &str) -> Vec<Finding> {
    let masked = mask_source(src);
    let in_test = test_region_lines(&masked);
    let hashed = hashed_idents(&masked);
    let mut findings = Vec::new();
    let mut push = |rule: Rule, lineno: usize, text: &str| {
        findings.push(Finding {
            rule,
            file: path.to_path_buf(),
            line: lineno + 1,
            text: text.to_string(),
        });
    };
    for (n, line) in masked.lines().enumerate() {
        if in_test.get(n).copied().unwrap_or(false) {
            continue;
        }
        if line.contains("Instant::now") || line.contains("SystemTime") {
            push(Rule::Wallclock, n, line);
        }
        if line.contains("thread_local!") {
            push(Rule::ThreadLocal, n, line);
        }
        if ["thread_rng", "rand::random", "from_entropy", "OsRng"]
            .iter()
            .any(|p| line.contains(p))
        {
            push(Rule::AmbientRand, n, line);
        }
        if line.contains(".unwrap()") || line.contains(".expect(") {
            push(Rule::Unwrap, n, line);
        }
        // hash-iter: method calls on known hashed idents, and `for .. in`
        // over them.
        for m in ORDER_METHODS {
            let mut from = 0;
            while let Some(off) = line[from..].find(m) {
                let pos = from + off;
                if let Some(id) = ident_before(line, pos) {
                    if hashed.contains(&id) {
                        push(Rule::HashIter, n, line);
                    }
                }
                from = pos + m.len();
            }
        }
        if let Some(pos) = line.find(" in ") {
            let tail = line[pos + 4..].trim_start().trim_start_matches(['&', '*']);
            let id: String = tail
                .bytes()
                .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
                .map(|b| b as char)
                .collect();
            if !id.is_empty()
                && hashed.contains(&id)
                && line.trim_start().starts_with("for ")
                && !ORDER_METHODS.iter().any(|m| line.contains(m))
            {
                push(Rule::HashIter, n, line);
            }
        }
    }
    // A line matching several rules is reported once per rule; dedup exact
    // repeats from overlapping method hits.
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.file == b.file);
    findings
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/lint/ -> workspace root. CARGO_MANIFEST_DIR is compiled in,
    // so `cargo run -p fractos-lint` works from any cwd.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run(root: &Path, deny: bool) -> Result<usize, String> {
    let allow_path = root.join("crates/lint/allowlist.txt");
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let allowlist = parse_allowlist(&allow_text)?;

    let mut files = Vec::new();
    for krate in PRODUCT_CRATES {
        walk_rs_files(&root.join("crates").join(krate).join("src"), &mut files);
    }
    if files.is_empty() {
        return Err(format!(
            "no sources found under {} — wrong root?",
            root.display()
        ));
    }

    let mut reported = 0;
    let mut suppressed = 0;
    for file in &files {
        let src =
            std::fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
        for finding in scan_file(file, &src) {
            if allowlist.iter().any(|a| a.matches(&finding)) {
                suppressed += 1;
            } else {
                println!("{finding}");
                reported += 1;
            }
        }
    }
    println!(
        "fractos-lint: {} file(s), {} finding(s), {} allowlisted{}",
        files.len(),
        reported,
        suppressed,
        if deny { " [--deny]" } else { "" }
    );
    Ok(reported)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny = false;
    let mut root = workspace_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}` (usage: fractos-lint [--deny] [--root PATH])");
                return ExitCode::from(2);
            }
        }
    }
    match run(&root, deny) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) if deny => ExitCode::FAILURE,
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fractos-lint: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(name: &str) -> (PathBuf, String) {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("corpus")
            .join(name);
        let src = std::fs::read_to_string(&path).expect("corpus file readable");
        (path, src)
    }

    fn rules_fired(name: &str) -> Vec<Rule> {
        let (path, src) = corpus(name);
        scan_file(&path, &src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn corpus_wallclock_detected() {
        assert!(rules_fired("bad_wallclock.rs").contains(&Rule::Wallclock));
    }

    #[test]
    fn corpus_wallclock_sampler_detected() {
        let fired = rules_fired("bad_wallclock_sampler.rs");
        assert!(
            fired.iter().filter(|r| **r == Rule::Wallclock).count() >= 2,
            "both the SystemTime stamp and the Instant cadence must fire: {fired:?}"
        );
    }

    #[test]
    fn corpus_thread_local_detected() {
        assert!(rules_fired("bad_thread_local.rs").contains(&Rule::ThreadLocal));
    }

    #[test]
    fn corpus_ambient_rand_detected() {
        assert!(rules_fired("bad_rand.rs").contains(&Rule::AmbientRand));
    }

    #[test]
    fn corpus_hash_iter_detected() {
        let fired = rules_fired("bad_hash_iter.rs");
        assert!(
            fired.iter().filter(|r| **r == Rule::HashIter).count() >= 2,
            "both the method-call and for-loop forms must fire: {fired:?}"
        );
    }

    #[test]
    fn corpus_unwrap_detected() {
        assert!(rules_fired("bad_unwrap.rs").contains(&Rule::Unwrap));
    }

    #[test]
    fn corpus_clean_file_passes() {
        assert!(rules_fired("ok_clean.rs").is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = r#"
// Instant::now() in a comment is fine.
/* SystemTime in a block comment too. */
fn f() -> &'static str {
    "thread_rng() inside a string literal"
}
"#;
        assert!(scan_file(Path::new("x.rs"), src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = r#"
fn product() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u32> = Some(1);
        x.unwrap();
    }
}
"#;
        assert!(scan_file(Path::new("x.rs"), src).is_empty());
    }

    #[test]
    fn unwrap_outside_test_module_fires() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let fired: Vec<Rule> = scan_file(Path::new("x.rs"), src)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(fired, vec![Rule::Unwrap]);
    }

    #[test]
    fn allowlist_suppresses_with_reason_only() {
        assert!(parse_allowlist("unwrap|net/src/fabric.rs|checked_add|overflow guard").is_ok());
        assert!(parse_allowlist("unwrap|net/src/fabric.rs|checked_add|").is_err());
        assert!(parse_allowlist("nosuch|a.rs|*|why").is_err());
        assert!(parse_allowlist("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn allowlist_matches_by_rule_path_and_needle() {
        let entries =
            parse_allowlist("unwrap|fabric.rs|checked_add|overflow guard").expect("parses");
        let hit = Finding {
            rule: Rule::Unwrap,
            file: PathBuf::from("/w/crates/net/src/fabric.rs"),
            line: 71,
            text: ".checked_add(occ).expect(..)".into(),
        };
        let miss_rule = Finding {
            rule: Rule::Wallclock,
            file: hit.file.clone(),
            line: 71,
            text: hit.text.clone(),
        };
        let miss_text = Finding {
            rule: Rule::Unwrap,
            file: hit.file.clone(),
            line: 90,
            text: "other.unwrap()".into(),
        };
        assert!(entries[0].matches(&hit));
        assert!(!entries[0].matches(&miss_rule));
        assert!(!entries[0].matches(&miss_text));
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "fn f() -> &'static str { r#\"SystemTime::now()\"# }\n";
        assert!(scan_file(Path::new("x.rs"), src).is_empty());
    }

    #[test]
    fn hashed_ident_collection_sees_fields_and_lets() {
        let masked =
            "struct S { procs: HashMap<u32, u32> }\nfn f() { let seen = HashSet::new(); }\n";
        let ids = hashed_idents(masked);
        assert!(ids.contains(&"procs".to_string()));
        assert!(ids.contains(&"seen".to_string()));
    }

    #[test]
    fn lint_runs_clean_over_this_repository() {
        // The repo-level guarantee CI enforces: zero unallowlisted findings.
        let root = workspace_root();
        let n = run(&root, true).expect("lint runs");
        assert_eq!(n, 0, "unallowlisted hazards in product sources");
    }
}
