//! Known-bad corpus: panicking error handling in product paths. Not
//! compiled — scanned by the lint's self-tests to prove the `unwrap`
//! rule fires.

fn lookup(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn message(v: Option<u32>) -> u32 {
    v.expect("value must be present")
}
