//! Known-bad corpus: a telemetry sampler stamping points with the wall
//! clock instead of virtual time. Not compiled — scanned by the lint's
//! self-tests to prove the `wallclock` rule catches exactly the mistake
//! the telemetry plane's design forbids: every series must be keyed by
//! deterministic `SimTime`, never by the host's clock, or exports stop
//! replaying byte-identically.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct WallClockSampler {
    points: Vec<(u128, u64)>,
    started: Option<Instant>,
}

impl WallClockSampler {
    fn sample(&mut self, value: u64) {
        // Wrong: window boundaries derived from the host clock drift
        // between runs and between backends.
        let t = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_nanos();
        self.points.push((t, value));
    }

    fn elapsed_ns(&self) -> u128 {
        // Wrong for the same reason: sampling cadence must come from the
        // simulator, not a monotonic host timer.
        self.started.map_or(0, |s| s.elapsed().as_nanos())
    }
}
