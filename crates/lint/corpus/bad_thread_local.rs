//! Known-bad corpus: thread-local state. Not compiled — scanned by the
//! lint's self-tests to prove the `thread-local` rule fires.

use std::cell::Cell;

thread_local! {
    static COUNTER: Cell<u64> = Cell::new(0);
}

fn bump() -> u64 {
    COUNTER.with(|c| {
        c.set(c.get() + 1);
        c.get()
    })
}
