// Known-bad corpus for the wire-conf pass: a miniature registry with a
// duplicate value in one group, a dead code point, and a mint-only
// group. Checked against `bad_wire_unhandled.rs`. Never compiled — the
// analyzer reads it as text.

pub const XX_PING: u8 = 0;
pub const XX_PONG: u8 = 1;
/// Duplicate of XX_PONG — the registry hygiene check must flag this.
pub const XX_DATA: u8 = 1;
/// Referenced nowhere — the dead-code-point check must flag this.
pub const XX_DEAD: u8 = 3;

// analyze: group YY mint-only
pub const YY_MARK: u8 = 9;
