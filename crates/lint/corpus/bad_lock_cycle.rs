// Known-bad corpus for the lock-order pass: an ABBA ordering across two
// functions (a classic deadlock precursor) plus a same-class nesting
// (which self-deadlocks under Mutex semantics). Never compiled — the
// analyzer reads it as text.

struct Pair {
    alpha: Shared<u32>,
    beta: Shared<u32>,
}

impl Pair {
    fn forward(&self) {
        let ga = self.alpha.borrow();
        let gb = self.beta.borrow_mut();
        let _ = (*ga, *gb);
    }

    fn backward(&self) {
        let gb = self.beta.borrow();
        let ga = self.alpha.borrow_mut();
        let _ = (*ga, *gb);
    }

    fn reenter(&self) {
        let g1 = self.alpha.borrow();
        let g2 = self.alpha.borrow();
        let _ = (*g1, *g2);
    }
}
