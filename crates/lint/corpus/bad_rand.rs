//! Known-bad corpus: ambient randomness. Not compiled — scanned by the
//! lint's self-tests to prove the `ambient-rand` rule fires.

fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn seed_from_os() -> u64 {
    let mut rng = SmallRng::from_entropy();
    rng.gen()
}

fn direct() -> u8 {
    rand::random()
}
