//! Known-good corpus: deterministic, typed-error idioms. The lint must
//! report nothing here. Mentions of Instant::now or thread_rng in prose
//! (like this comment) and in strings must not fire either.

use std::collections::BTreeMap;

fn sweep(map: &BTreeMap<u64, u64>) -> u64 {
    map.values().sum()
}

fn lookup(v: Option<u32>) -> Result<u32, &'static str> {
    v.ok_or("missing")
}

fn describe() -> &'static str {
    "never call Instant::now() or rand::thread_rng() in product code"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
