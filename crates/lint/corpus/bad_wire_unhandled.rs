// Known-bad corpus for the wire-conf pass, paired with
// `bad_wire_registry.rs`: a decode fn that handles only part of a group,
// a decode fn with no catch-all rejection, and an encoder call with a
// literal magic byte. Never compiled — the analyzer reads it as text.

fn encode_all(e: &mut Encoder) {
    e.u8(codes::XX_PING);
    e.u8(codes::XX_PONG);
    e.u8(codes::XX_DATA);
    e.u8(codes::YY_MARK);
    e.u8(7); // literal wire value — must be flagged
}

fn decode_any(d: &mut Decoder) -> Result<Msg, DecodeError> {
    match d.u8()? {
        codes::XX_PING => Ok(Msg::Ping),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn decode_loose(d: &mut Decoder) -> Msg {
    match d.u8() {
        codes::XX_PONG => Msg::Pong,
        codes::XX_DATA => Msg::Data,
        codes::XX_PING => Msg::Ping,
    }
}
