// Known-bad corpus for the lock-order pass: the forward edge exists only
// through a call (hold `gamma`, call a helper that acquires `delta`), so
// detecting the cycle requires the inter-procedural summary fixpoint.
// Never compiled — the analyzer reads it as text.

struct Calls {
    gamma: Shared<u32>,
    delta: Shared<u32>,
}

impl Calls {
    fn helper_acquires_delta(&self) {
        let g = self.delta.borrow_mut();
        let _ = *g;
    }

    fn holds_gamma_across_call(&self) {
        let g = self.gamma.borrow();
        self.helper_acquires_delta();
        let _ = *g;
    }

    fn inverse_direct(&self) {
        let gd = self.delta.borrow();
        let gg = self.gamma.borrow();
        let _ = (*gd, *gg);
    }
}
