//! Known-bad corpus: iteration over hashed maps. Not compiled — scanned
//! by the lint's self-tests to prove the `hash-iter` rule fires on both
//! the method-call and the for-loop forms.

use std::collections::{HashMap, HashSet};

struct Stats {
    counters: HashMap<String, u64>,
}

fn dump(stats: &Stats) -> Vec<u64> {
    // Hasher order leaks straight into the output vector.
    stats.counters.values().copied().collect()
}

fn sweep() {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(1);
    for v in &seen {
        drop(v);
    }
}
