//! Known-bad corpus: wall-clock reads. Not compiled — scanned by the
//! lint's self-tests to prove the `wallclock` rule fires.

use std::time::{Instant, SystemTime};

fn elapsed_ns() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}

fn epoch() -> SystemTime {
    SystemTime::now()
}
