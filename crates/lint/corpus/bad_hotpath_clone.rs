// Known-bad corpus for the hot-path pass: a marked function full of
// allocation/copy idioms, next to an unmarked one that may allocate
// freely. Never compiled — the analyzer reads it as text.

// analyze: hot-path
fn step(&mut self) {
    let v = self.buf.clone();
    let mut out = Vec::new();
    out.extend(v.to_vec());
    let label = format!("event-{}", out.len());
    self.last = label;
}

fn cold(&mut self) {
    // Not marked: clones here are fine.
    let _ = self.buf.clone();
    let _ = vec![1, 2, 3];
}
