//! rCUDA-style transparent GPU remoting (the Fig 9 / §6.5 comparator).
//!
//! rCUDA interposes CUDA driver calls and forwards each one to a daemon on
//! the GPU node (§6.3: "rCUDA accesses remote GPUs transparently by
//! interposing CUDA driver calls, whereas FractOS GPU service uses a single
//! roundtrip Request invocation per kernel invocation"). One kernel
//! execution therefore costs several network round trips — memcpy
//! host-to-device, kernel launch, synchronize, memcpy device-to-host — and
//! all data staged through the client's host memory.

use std::collections::HashMap;
use std::sync::Arc;

use fractos_devices::{GpuDevice, GpuParams, Kernel};
use fractos_net::{Endpoint, Fabric, TrafficClass};
use fractos_sim::{Actor, Ctx, Msg, Shared, SimDuration, SimTime};

use crate::raw::{raw_send, Peer};

/// Per-driver-call daemon processing overhead: request parsing, transport,
/// and the CUDA driver call itself. rCUDA's forwarding path (interposition,
/// (de)marshalling, socket handling) costs markedly more per call than a
/// native driver call — the reason Fig 9 shows it well above FractOS's
/// single-round-trip invocation.
pub const DAEMON_CALL_OVERHEAD: SimDuration = SimDuration::from_micros(8);

/// Driver calls forwarded by the interposed CUDA library.
pub enum DriverCall {
    /// Copy bytes into device memory at a device offset.
    MemcpyH2D {
        /// Destination offset in the daemon's device buffer.
        offset: u64,
        /// The actual bytes.
        data: Vec<u8>,
        /// Reply routing: `(peer, token)`.
        reply: (Peer, u64),
    },
    /// Launch a kernel.
    Launch {
        /// Kernel id.
        kernel: u64,
        /// Kernel parameters.
        params: Vec<u64>,
        /// Input extent in device memory.
        input: (u64, u64),
        /// Output offset in device memory.
        out_offset: u64,
        /// Reply routing.
        reply: (Peer, u64),
    },
    /// Wait for the device to go idle.
    Synchronize {
        /// Reply routing.
        reply: (Peer, u64),
    },
    /// Copy bytes out of device memory.
    MemcpyD2H {
        /// Source offset.
        offset: u64,
        /// Byte count.
        len: u64,
        /// Reply routing.
        reply: (Peer, u64),
    },
}

/// The daemon's reply to a driver call.
pub struct DriverReply {
    /// Echoed token.
    pub token: u64,
    /// Data for `MemcpyD2H`, empty otherwise.
    pub data: Vec<u8>,
}

/// The rCUDA daemon on the GPU node.
pub struct RcudaServer {
    /// Where the daemon runs (the GPU node's host CPU).
    pub endpoint: Endpoint,
    fabric: Shared<Fabric>,
    /// The daemon handles driver calls serially (single dispatch thread —
    /// the throughput bottleneck the paper observes in Fig 13).
    busy_until: SimTime,
    device: GpuDevice,
    kernels: HashMap<u64, Arc<dyn Kernel>>,
    /// Simulated device memory (one flat buffer).
    dev_mem: Vec<u8>,
    /// Completion time of the last launched kernel.
    kernel_done_at: SimTime,
    /// Deferred kernel effect: `(input extent, params, kernel, out offset)`.
    pending_launch: Option<(u64, u64, Vec<u64>, u64, u64)>,
    /// Calls served (tests).
    pub calls: u64,
}

impl RcudaServer {
    /// Creates a daemon with `dev_mem_size` bytes of device memory.
    pub fn new(
        endpoint: Endpoint,
        fabric: Shared<Fabric>,
        params: GpuParams,
        dev_mem_size: u64,
    ) -> Self {
        RcudaServer {
            endpoint,
            fabric,
            busy_until: SimTime::ZERO,
            device: GpuDevice::new(params),
            kernels: HashMap::new(),
            dev_mem: vec![0; dev_mem_size as usize],
            kernel_done_at: SimTime::ZERO,
            pending_launch: None,
            calls: 0,
        }
    }

    /// Registers a kernel.
    pub fn with_kernel(mut self, id: u64, kernel: impl Kernel) -> Self {
        self.kernels.insert(id, Arc::new(kernel));
        self
    }

    /// Serial-daemon processing: returns the delay until `cost` of work
    /// completes, queueing behind earlier calls.
    fn charge(&mut self, now: SimTime, cost: SimDuration) -> SimDuration {
        let start = self.busy_until.max(now);
        let done = start + cost;
        self.busy_until = done;
        done.duration_since(now)
    }

    fn reply(
        &self,
        ctx: &mut Ctx<'_>,
        to: (Peer, u64),
        payload: u64,
        extra: SimDuration,
        data: Vec<u8>,
    ) {
        let fabric = self.fabric.clone();
        raw_send(
            ctx,
            &fabric,
            self.endpoint,
            to.0,
            payload,
            if payload > 256 {
                TrafficClass::Data
            } else {
                TrafficClass::Control
            },
            extra,
            DriverReply { token: to.1, data },
        );
    }

    /// Applies a finished launch's computation to device memory.
    fn retire_launch(&mut self) {
        if let Some((in_off, in_len, params, kernel, out_off)) = self.pending_launch.take() {
            if let Some(k) = self.kernels.get(&kernel) {
                let input = &self.dev_mem[in_off as usize..(in_off + in_len) as usize];
                let out = k.run(input, &params);
                let end = (out_off as usize + out.len()).min(self.dev_mem.len());
                let n = end - out_off as usize;
                self.dev_mem[out_off as usize..end].copy_from_slice(&out[..n]);
            }
        }
    }
}

impl Actor for RcudaServer {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let Ok(call) = msg.downcast::<DriverCall>() else {
            return;
        };
        let call = *call;
        self.calls += 1;
        match call {
            DriverCall::MemcpyH2D {
                offset,
                data,
                reply,
            } => {
                let end = (offset as usize + data.len()).min(self.dev_mem.len());
                self.dev_mem[offset as usize..end].copy_from_slice(&data[..end - offset as usize]);
                // H2D also crosses the daemon's PCIe to the device; the
                // fabric already charged the network, add the PCIe copy.
                let pcie = SimDuration::from_secs_f64(
                    data.len() as f64 / self.fabric.borrow().params().pcie_bandwidth,
                );
                let extra = self.charge(ctx.now(), DAEMON_CALL_OVERHEAD + pcie);
                self.reply(ctx, reply, 0, extra, Vec::new());
            }
            DriverCall::Launch {
                kernel,
                params,
                input,
                out_offset,
                reply,
            } => {
                let items = self
                    .kernels
                    .get(&kernel)
                    .map_or(1, |k| k.items(input.1, &params));
                let delay = self.device.execute(ctx.now(), items);
                self.kernel_done_at = ctx.now() + delay;
                self.pending_launch = Some((input.0, input.1, params, kernel, out_offset));
                // Launch returns immediately (asynchronous in CUDA).
                let extra = self.charge(ctx.now(), DAEMON_CALL_OVERHEAD);
                self.reply(ctx, reply, 0, extra, Vec::new());
            }
            DriverCall::Synchronize { reply } => {
                let wait = self.kernel_done_at.saturating_duration_since(ctx.now());
                self.retire_launch();
                let extra = self.charge(ctx.now(), DAEMON_CALL_OVERHEAD) + wait;
                self.reply(ctx, reply, 0, extra, Vec::new());
            }
            DriverCall::MemcpyD2H { offset, len, reply } => {
                let end = (offset + len).min(self.dev_mem.len() as u64);
                let data = self.dev_mem[offset as usize..end as usize].to_vec();
                let pcie = SimDuration::from_secs_f64(
                    len as f64 / self.fabric.borrow().params().pcie_bandwidth,
                );
                let extra = self.charge(ctx.now(), DAEMON_CALL_OVERHEAD + pcie);
                self.reply(ctx, reply, len, extra, data);
            }
        }
    }
}

/// Client-side helper that sequences driver calls with continuations keyed
/// by token; embed it in baseline frontends.
pub struct RcudaClient {
    /// The client's endpoint.
    pub endpoint: Endpoint,
    /// The daemon.
    pub server: Peer,
    fabric: Shared<Fabric>,
    next_token: u64,
}

impl RcudaClient {
    /// Creates the client half.
    pub fn new(endpoint: Endpoint, server: Peer, fabric: Shared<Fabric>) -> Self {
        RcudaClient {
            endpoint,
            server,
            fabric,
            next_token: 0,
        }
    }

    /// Issues one driver call; the reply comes back to `ctx.self_id()` as a
    /// [`DriverReply`] with the returned token.
    pub fn call(
        &mut self,
        ctx: &mut Ctx<'_>,
        build: impl FnOnce((Peer, u64)) -> DriverCall,
    ) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        let me = Peer {
            actor: ctx.self_id(),
            endpoint: self.endpoint,
        };
        let call = build((me, token));
        let (size, class) = match &call {
            DriverCall::MemcpyH2D { data, .. } => (data.len() as u64, TrafficClass::Data),
            DriverCall::Launch { .. } => (64, TrafficClass::Control),
            DriverCall::Synchronize { .. } => (16, TrafficClass::Control),
            DriverCall::MemcpyD2H { .. } => (32, TrafficClass::Control),
        };
        let fabric = self.fabric.clone();
        raw_send(
            ctx,
            &fabric,
            self.endpoint,
            self.server,
            size,
            class,
            SimDuration::ZERO,
            call,
        );
        token
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_runtime;
    use fractos_devices::XorKernel;
    use fractos_net::{NetParams, NodeId, Topology};
    use fractos_sim::RuntimeExt;

    /// A driver that runs the canonical verify sequence and checks data.
    struct Driver {
        client: RcudaClient,
        phase: u64,
        tokens: HashMap<u64, u64>,
        pub result: Vec<u8>,
        pub done: bool,
    }

    struct Go;

    impl Actor for Driver {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            if msg.downcast_ref::<Go>().is_some() {
                let t = self.client.call(ctx, |reply| DriverCall::MemcpyH2D {
                    offset: 0,
                    data: vec![0x0F; 32],
                    reply,
                });
                self.tokens.insert(t, 0);
                return;
            }
            let reply = msg.downcast::<DriverReply>().expect("reply");
            let phase = self.tokens.remove(&reply.token).expect("known token");
            match phase {
                0 => {
                    let t = self.client.call(ctx, |reply| DriverCall::Launch {
                        kernel: 1,
                        params: vec![1],
                        input: (0, 32),
                        out_offset: 64,
                        reply,
                    });
                    self.tokens.insert(t, 1);
                }
                1 => {
                    let t = self
                        .client
                        .call(ctx, |reply| DriverCall::Synchronize { reply });
                    self.tokens.insert(t, 2);
                }
                2 => {
                    let t = self.client.call(ctx, |reply| DriverCall::MemcpyD2H {
                        offset: 64,
                        len: 32,
                        reply,
                    });
                    self.tokens.insert(t, 3);
                }
                3 => {
                    self.result = reply.data;
                    self.done = true;
                }
                _ => unreachable!(),
            }
            let _ = self.phase;
        }
    }

    #[test]
    fn rcuda_sequence_computes_and_takes_four_round_trips() {
        let mut sim = paper_runtime(5);
        let fabric = Shared::named(
            "fabric",
            Fabric::new(Topology::paper_testbed(), NetParams::paper()),
        );
        let server_ep = Endpoint::cpu(NodeId(1));
        let server = sim.add_actor_on(
            1,
            "rcuda",
            Box::new(
                RcudaServer::new(server_ep, fabric.clone(), GpuParams::default(), 1024)
                    .with_kernel(1, XorKernel(0xFF)),
            ),
        );
        let client_ep = Endpoint::cpu(NodeId(2));
        let driver = sim.add_actor_on(
            2,
            "driver",
            Box::new(Driver {
                client: RcudaClient::new(
                    client_ep,
                    Peer {
                        actor: server,
                        endpoint: server_ep,
                    },
                    fabric.clone(),
                ),
                phase: 0,
                tokens: HashMap::new(),
                result: Vec::new(),
                done: false,
            }),
        );
        sim.post(SimDuration::ZERO, driver, Go);
        sim.run();
        sim.with_actor::<Driver, _>(driver, |d| {
            assert!(d.done);
            assert_eq!(d.result, vec![0xF0; 32]);
        });
        sim.with_actor::<RcudaServer, _>(server, |s| assert_eq!(s.calls, 4));
        // Four round trips cross the network (eight messages).
        assert_eq!(fabric.borrow().stats().network_msgs(), 8);
    }
}
