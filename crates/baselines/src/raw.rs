//! Infrastructure for non-FractOS baseline actors.
//!
//! The paper's comparators (ibv ping-pong, rCUDA, NFS, NVMe-oF) are not
//! FractOS programs: they speak their own wire protocols. They are modelled
//! as plain simulation actors that exchange messages over the same fabric —
//! paying their own protocol costs and nothing of FractOS's.

use fractos_net::{Endpoint, Fabric, TrafficClass};
use fractos_sim::{Actor, ActorId, Ctx, Msg, Shared, SimDuration, SimTime};

/// A remote party a raw actor can message: its actor and fabric endpoint.
#[derive(Debug, Clone, Copy)]
pub struct Peer {
    /// The simulation actor.
    pub actor: ActorId,
    /// Where it sits on the fabric.
    pub endpoint: Endpoint,
}

/// Sends `msg` from `src` to `peer` with fabric-modelled latency and
/// traffic accounting, plus `extra` processing delay.
#[allow(clippy::too_many_arguments)] // a transport primitive, not an API to shrink
pub fn raw_send<M: Send + 'static>(
    ctx: &mut Ctx<'_>,
    fabric: &Shared<Fabric>,
    src: Endpoint,
    peer: Peer,
    payload: u64,
    class: TrafficClass,
    extra: SimDuration,
    msg: M,
) {
    let delay = fabric
        .borrow_mut()
        .send(ctx.now(), ctx.rng(), src, peer.endpoint, payload, class);
    ctx.send_after(delay + extra, peer.actor, msg);
}

/// The `ibv_rc_pingpong` baseline of Table 3: a server echoing small
/// messages.
pub struct PingPongServer {
    /// Where the server runs (host CPU or SmartNIC).
    pub endpoint: Endpoint,
    fabric: Shared<Fabric>,
}

/// Ping message carrying the reply peer.
pub struct Ping(pub Peer);

/// Pong reply.
pub struct Pong;

impl PingPongServer {
    /// Creates the server.
    pub fn new(endpoint: Endpoint, fabric: Shared<Fabric>) -> Self {
        PingPongServer { endpoint, fabric }
    }
}

impl Actor for PingPongServer {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let Ok(ping) = msg.downcast::<Ping>() else {
            return;
        };
        let fabric = self.fabric.clone();
        raw_send(
            ctx,
            &fabric,
            self.endpoint,
            ping.0,
            0,
            TrafficClass::Control,
            SimDuration::ZERO,
            Pong,
        );
    }
}

/// The ping-pong client: issues `count` round trips and records latencies.
pub struct PingPongClient {
    /// Where the client runs.
    pub endpoint: Endpoint,
    /// The server.
    pub server: Peer,
    /// Round trips to perform.
    pub count: u64,
    fabric: Shared<Fabric>,
    sent_at: SimTime,
    /// Completed round-trip latencies.
    pub latencies: Vec<SimDuration>,
    self_peer: Option<Peer>,
}

/// Kick-off message for the client.
pub struct Start;

impl PingPongClient {
    /// Creates the client.
    pub fn new(endpoint: Endpoint, server: Peer, count: u64, fabric: Shared<Fabric>) -> Self {
        PingPongClient {
            endpoint,
            server,
            count,
            fabric,
            sent_at: SimTime::ZERO,
            latencies: Vec::new(),
            self_peer: None,
        }
    }

    fn ping(&mut self, ctx: &mut Ctx<'_>) {
        self.sent_at = ctx.now();
        let me = Peer {
            actor: ctx.self_id(),
            endpoint: self.endpoint,
        };
        self.self_peer = Some(me);
        let fabric = self.fabric.clone();
        raw_send(
            ctx,
            &fabric,
            self.endpoint,
            self.server,
            0,
            TrafficClass::Control,
            SimDuration::ZERO,
            Ping(me),
        );
    }
}

impl Actor for PingPongClient {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        if msg.downcast_ref::<Start>().is_some() {
            self.ping(ctx);
            return;
        }
        if msg.downcast::<Pong>().is_ok() {
            self.latencies.push(ctx.now().duration_since(self.sent_at));
            if (self.latencies.len() as u64) < self.count {
                self.ping(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_runtime;
    use fractos_net::{NetParams, NodeId, Topology};
    use fractos_sim::RuntimeExt;

    #[test]
    fn raw_loopback_matches_table3() {
        let mut sim = paper_runtime(1);
        let fabric = Shared::named(
            "fabric",
            Fabric::new(Topology::paper_testbed(), NetParams::paper()),
        );
        let server_ep = Endpoint::cpu(NodeId(0));
        let server = sim.add_actor_on(
            0,
            "pp-server",
            Box::new(PingPongServer::new(server_ep, fabric.clone())),
        );
        let client = sim.add_actor_on(
            0,
            "pp-client",
            Box::new(PingPongClient::new(
                Endpoint::cpu(NodeId(0)),
                Peer {
                    actor: server,
                    endpoint: server_ep,
                },
                100,
                fabric.clone(),
            )),
        );
        sim.post(SimDuration::ZERO, client, Start);
        sim.run();
        sim.with_actor::<PingPongClient, _>(client, |c| {
            assert_eq!(c.latencies.len(), 100);
            let mean = c.latencies.iter().map(|d| d.as_micros_f64()).sum::<f64>() / 100.0;
            assert!((mean - 2.42).abs() < 0.1, "loopback RTT {mean:.3} µs");
        });
    }

    #[test]
    fn raw_loopback_snic_matches_table3() {
        let mut sim = paper_runtime(1);
        let fabric = Shared::named(
            "fabric",
            Fabric::new(Topology::paper_testbed(), NetParams::paper()),
        );
        let server_ep = Endpoint::snic(NodeId(0));
        let server = sim.add_actor_on(
            0,
            "pp-server",
            Box::new(PingPongServer::new(server_ep, fabric.clone())),
        );
        let client = sim.add_actor_on(
            0,
            "pp-client",
            Box::new(PingPongClient::new(
                Endpoint::cpu(NodeId(0)),
                Peer {
                    actor: server,
                    endpoint: server_ep,
                },
                50,
                fabric.clone(),
            )),
        );
        sim.post(SimDuration::ZERO, client, Start);
        sim.run();
        sim.with_actor::<PingPongClient, _>(client, |c| {
            let mean = c.latencies.iter().map(|d| d.as_micros_f64()).sum::<f64>()
                / c.latencies.len() as f64;
            assert!((mean - 3.68).abs() < 0.1, "sNIC loopback RTT {mean:.3} µs");
        });
    }
}
