//! Centralized pipeline drivers for the composition experiment (Fig 8).
//!
//! Both drivers run against the same FractOS
//! [`PipelineStage`](fractos_services::pipeline::PipelineStage) services as
//! the distributed chain driver, but keep the application centralized:
//!
//! * [`StarDriver`] — centralized application *and* data ("star"): the
//!   client copies the data to each stage and receives it back, stage by
//!   stage (e.g. rCUDA-style designs, Fig 1 top-left);
//! * [`FastStarDriver`] — centralized control, direct data ("fast-star"):
//!   stages forward data directly to the next stage's buffer, but control
//!   returns to the client after every hop (e.g. LegoOS-style designs,
//!   Fig 1 bottom-left).

use fractos_cap::{Cid, Perms};
use fractos_core::prelude::*;
use fractos_core::types::Syscall;
use fractos_devices::proto::imm;
use fractos_services::pipeline::TAG_PIPE_REPLY;
use fractos_sim::{SimDuration, SimTime};

/// Common handle-fetching state for centralized drivers.
struct Handles {
    stage_reqs: Vec<Cid>,
    stage_bufs: Vec<Cid>,
    client_buf: Option<Cid>,
}

impl Handles {
    fn new() -> Self {
        Handles {
            stage_reqs: Vec::new(),
            stage_bufs: Vec::new(),
            client_buf: None,
        }
    }
}

/// The fully centralized (star) driver.
pub struct StarDriver {
    /// Number of stages.
    pub stages: usize,
    /// Bytes streamed per iteration.
    pub size: u64,
    /// Iterations to run.
    pub iterations: u64,
    handles: Handles,
    current_stage: usize,
    started_at: SimTime,
    remaining: u64,
    /// Completed iteration latencies.
    pub latencies: Vec<SimDuration>,
}

impl StarDriver {
    /// Creates the driver.
    pub fn new(stages: usize, size: u64, iterations: u64) -> Self {
        StarDriver {
            stages,
            size,
            iterations,
            handles: Handles::new(),
            current_stage: 0,
            started_at: SimTime::ZERO,
            remaining: iterations,
            latencies: Vec::new(),
        }
    }

    fn fetch(&mut self, i: usize, fos: &Fos<Self>) {
        if i == self.stages {
            let size = self.size;
            let addr = fos.mem_alloc(size);
            fos.memory_create(addr, size, Perms::RW, |s: &mut Self, res, fos| {
                s.handles.client_buf = Some(res.cid());
                s.iterate(fos);
            });
            return;
        }
        fos.call(
            Syscall::KvGet {
                key: format!("pipe.{i}.req"),
            },
            move |s: &mut Self, res, fos| {
                s.handles.stage_reqs.push(res.cid());
                fos.call(
                    Syscall::KvGet {
                        key: format!("pipe.{i}.buf"),
                    },
                    move |s: &mut Self, res, fos| {
                        s.handles.stage_bufs.push(res.cid());
                        s.fetch(i + 1, fos);
                    },
                );
            },
        );
    }

    fn iterate(&mut self, fos: &Fos<Self>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        self.started_at = fos.now();
        self.current_stage = 0;
        self.hop(fos);
    }

    /// One star hop: copy data to the stage, invoke it with the client as
    /// destination, wait for its completion invoke.
    fn hop(&mut self, fos: &Fos<Self>) {
        let i = self.current_stage;
        if i == self.stages {
            self.latencies
                .push(fos.now().duration_since(self.started_at));
            self.iterate(fos);
            return;
        }
        let client_buf = self.handles.client_buf.expect("allocated");
        let stage_buf = self.handles.stage_bufs[i];
        let stage_req = self.handles.stage_reqs[i];
        let size = self.size;
        // Data transfer 1: client → stage.
        fos.call(
            Syscall::MemoryDiminish {
                cid: stage_buf,
                offset: 0,
                size,
                drop_perms: Perms::NONE,
            },
            move |_s: &mut Self, res, fos| {
                let SyscallResult::NewCid(stage_view) = res else {
                    return;
                };
                fos.memory_copy(client_buf, stage_view, move |_s: &mut Self, res, fos| {
                    fos.call_ignore(Syscall::CapRevoke { cid: stage_view });
                    debug_assert_eq!(res, SyscallResult::Ok);
                    // Control: invoke the stage; data transfer 2 happens
                    // inside it (stage → client).
                    fos.request_create_new(
                        TAG_PIPE_REPLY,
                        vec![],
                        vec![],
                        move |_s: &mut Self, res, fos| {
                            let reply = res.cid();
                            fos.request_derive(
                                stage_req,
                                vec![imm(size)],
                                vec![client_buf, reply],
                                |_s, res, fos| {
                                    fos.request_invoke(res.cid(), |_, res, _| {
                                        debug_assert!(res.is_ok())
                                    });
                                },
                            );
                        },
                    );
                });
            },
        );
    }
}

impl Service for StarDriver {
    fn on_start(&mut self, fos: &Fos<Self>) {
        self.fetch(0, fos);
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        if req.tag != TAG_PIPE_REPLY {
            return;
        }
        self.current_stage += 1;
        self.hop(fos);
    }
}

/// The centralized-control, direct-data (fast-star) driver.
pub struct FastStarDriver {
    /// Number of stages.
    pub stages: usize,
    /// Bytes streamed per iteration.
    pub size: u64,
    /// Iterations to run.
    pub iterations: u64,
    handles: Handles,
    current_stage: usize,
    started_at: SimTime,
    remaining: u64,
    /// Completed iteration latencies.
    pub latencies: Vec<SimDuration>,
}

impl FastStarDriver {
    /// Creates the driver.
    pub fn new(stages: usize, size: u64, iterations: u64) -> Self {
        FastStarDriver {
            stages,
            size,
            iterations,
            handles: Handles::new(),
            current_stage: 0,
            started_at: SimTime::ZERO,
            remaining: iterations,
            latencies: Vec::new(),
        }
    }

    fn fetch(&mut self, i: usize, fos: &Fos<Self>) {
        if i == self.stages {
            let size = self.size;
            let addr = fos.mem_alloc(size);
            fos.memory_create(addr, size, Perms::RW, |s: &mut Self, res, fos| {
                s.handles.client_buf = Some(res.cid());
                s.iterate(fos);
            });
            return;
        }
        fos.call(
            Syscall::KvGet {
                key: format!("pipe.{i}.req"),
            },
            move |s: &mut Self, res, fos| {
                s.handles.stage_reqs.push(res.cid());
                fos.call(
                    Syscall::KvGet {
                        key: format!("pipe.{i}.buf"),
                    },
                    move |s: &mut Self, res, fos| {
                        s.handles.stage_bufs.push(res.cid());
                        s.fetch(i + 1, fos);
                    },
                );
            },
        );
    }

    fn iterate(&mut self, fos: &Fos<Self>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        self.started_at = fos.now();
        self.current_stage = 0;
        // Seed: data into stage 0's buffer (one transfer).
        let client_buf = self.handles.client_buf.expect("allocated");
        let stage0 = self.handles.stage_bufs[0];
        let size = self.size;
        fos.call(
            Syscall::MemoryDiminish {
                cid: stage0,
                offset: 0,
                size,
                drop_perms: Perms::NONE,
            },
            move |_s: &mut Self, res, fos| {
                let SyscallResult::NewCid(view) = res else {
                    return;
                };
                fos.memory_copy(client_buf, view, move |s: &mut Self, res, fos| {
                    fos.call_ignore(Syscall::CapRevoke { cid: view });
                    debug_assert_eq!(res, SyscallResult::Ok);
                    s.hop(fos);
                });
            },
        );
    }

    /// One fast-star hop: invoke stage `i`, destination = stage `i+1`'s
    /// buffer (or client sink), control back to us.
    fn hop(&mut self, fos: &Fos<Self>) {
        let i = self.current_stage;
        if i == self.stages {
            self.latencies
                .push(fos.now().duration_since(self.started_at));
            self.iterate(fos);
            return;
        }
        let dst = if i + 1 == self.stages {
            self.handles.client_buf.expect("allocated")
        } else {
            self.handles.stage_bufs[i + 1]
        };
        let stage_req = self.handles.stage_reqs[i];
        let size = self.size;
        fos.request_create_new(
            TAG_PIPE_REPLY,
            vec![],
            vec![],
            move |_s: &mut Self, res, fos| {
                let reply = res.cid();
                fos.request_derive(
                    stage_req,
                    vec![imm(size)],
                    vec![dst, reply],
                    |_s, res, fos| {
                        fos.request_invoke(res.cid(), |_, res, _| debug_assert!(res.is_ok()));
                    },
                );
            },
        );
    }
}

impl Service for FastStarDriver {
    fn on_start(&mut self, fos: &Fos<Self>) {
        self.fetch(0, fos);
    }

    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>) {
        if req.tag != TAG_PIPE_REPLY {
            return;
        }
        self.current_stage += 1;
        self.hop(fos);
    }
}
