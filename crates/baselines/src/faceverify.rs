//! The §6.5 baseline face-verification stack: frontend + NFS + NVMe-oF +
//! rCUDA, all centralized through the frontend (star topology).
//!
//! Per request the frontend (1) fetches the reference images over NFS
//! (which may in turn fetch from the NVMe-oF target), (2) ships query and
//! reference images to the remote GPU via an rCUDA host-to-device copy,
//! (3) launches and synchronizes the kernel, (4) copies the distances back,
//! and (5) answers the client. Data crosses the network three times
//! (NVMe-oF, NFS, rCUDA) versus FractOS's single NVMe→GPU transfer.

use std::collections::HashMap;

use fractos_net::{Endpoint, Fabric, TrafficClass};
use fractos_services::matcher::{synth_face, MATCH_THRESHOLD};
use fractos_services::FvSample;
use fractos_sim::{Actor, Ctx, Msg, Shared, SimDuration, SimTime};

use crate::raw::{raw_send, Peer};
use crate::rcuda::{DriverCall, DriverReply, RcudaClient};
use crate::storage::{NfsOp, NfsReply, NFS_CLIENT_OVERHEAD};

/// Client → frontend request.
pub struct VerifyReq {
    /// Images per batch.
    pub batch: u64,
    /// First identity of the contiguous window.
    pub first_id: u64,
    /// Query images, `batch × img` bytes.
    pub queries: Vec<u8>,
    /// Reply routing.
    pub reply: (Peer, u64),
}

/// Frontend → client reply with per-pair distances.
pub struct VerifyReply {
    /// Echoed token.
    pub token: u64,
    /// One distance byte per pair.
    pub distances: Vec<u8>,
}

/// Extra small driver-call round trips per kernel execution, modelling the
/// chatter a transparently interposed CUDA runtime forwards besides the
/// four essential calls (context queries, stream state, attribute reads —
/// the reason the paper's Fig 9 shows rCUDA well above FractOS's single
/// round trip per invocation).
pub const INTERPOSITION_CALLS: u64 = 8;

enum Phase {
    NfsRead,
    H2d,
    Chatter(u64),
    Launch,
    Sync,
    D2h,
    /// Write the distances back through NFS (Fig 2's output path).
    NfsWrite,
}

struct ReqState {
    batch: u64,
    img: u64,
    /// Byte offset of the reference images in the exported DB file.
    db_offset: u64,
    queries: Vec<u8>,
    db: Vec<u8>,
    /// Distances held while the optional output write completes.
    distances: Vec<u8>,
    reply: (Peer, u64),
    phase: Phase,
}

/// The baseline frontend actor.
pub struct BaselineFrontend {
    /// Where the frontend runs.
    pub endpoint: Endpoint,
    fabric: Shared<Fabric>,
    /// The NFS server.
    pub nfs: Peer,
    rcuda: RcudaClient,
    /// Bytes per image.
    pub img: u64,
    /// When set, results are written back through NFS before replying
    /// (the full Fig 2 star: steps 6–7 through the filesys node).
    pub store_results: bool,
    reqs: HashMap<u64, ReqState>,
    next_req: u64,
    /// Maps an outstanding NFS/rCUDA token to its request.
    token_to_req: HashMap<u64, u64>,
    nfs_token: u64,
    /// Served requests (tests).
    pub served: u64,
}

impl BaselineFrontend {
    /// Creates the frontend.
    pub fn new(
        endpoint: Endpoint,
        fabric: Shared<Fabric>,
        nfs: Peer,
        rcuda_server: Peer,
        img: u64,
    ) -> Self {
        BaselineFrontend {
            endpoint,
            fabric: fabric.clone(),
            nfs,
            rcuda: RcudaClient::new(endpoint, rcuda_server, fabric),
            img,
            store_results: false,
            reqs: HashMap::new(),
            next_req: 0,
            token_to_req: HashMap::new(),
            nfs_token: 1 << 32,
            /* NFS tokens live in a disjoint range from rCUDA tokens. */
            served: 0,
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, req_id: u64) {
        let state = self.reqs.get_mut(&req_id).expect("live request");
        let (batch, img) = (state.batch, state.img);
        match state.phase {
            Phase::NfsRead => {
                let offset = state.db_offset;
                let token = self.nfs_token;
                self.nfs_token += 1;
                self.token_to_req.insert(token, req_id);
                let me = Peer {
                    actor: ctx.self_id(),
                    endpoint: self.endpoint,
                };
                let fabric = self.fabric.clone();
                raw_send(
                    ctx,
                    &fabric,
                    self.endpoint,
                    self.nfs,
                    64,
                    TrafficClass::Control,
                    NFS_CLIENT_OVERHEAD,
                    NfsOp::Read {
                        offset,
                        len: batch * img,
                        reply: (me, token),
                    },
                );
            }
            Phase::H2d => {
                // One bulk copy: queries ++ db into device memory.
                let mut data = state.queries.clone();
                data.extend_from_slice(&state.db);
                let token = self.rcuda.call(ctx, |reply| DriverCall::MemcpyH2D {
                    offset: 0,
                    data,
                    reply,
                });
                self.token_to_req.insert(token, req_id);
            }
            Phase::Chatter(_) => {
                // Interposed runtime chatter: a cheap driver call forwarded
                // over the network.
                let token = self
                    .rcuda
                    .call(ctx, |reply| DriverCall::Synchronize { reply });
                self.token_to_req.insert(token, req_id);
            }
            Phase::Launch => {
                let token = self.rcuda.call(ctx, |reply| DriverCall::Launch {
                    kernel: fractos_services::FACE_VERIFY_KERNEL,
                    params: vec![batch, img],
                    input: (0, 2 * batch * img),
                    out_offset: 2 * batch * img,
                    reply,
                });
                self.token_to_req.insert(token, req_id);
            }
            Phase::Sync => {
                let token = self
                    .rcuda
                    .call(ctx, |reply| DriverCall::Synchronize { reply });
                self.token_to_req.insert(token, req_id);
            }
            Phase::D2h => {
                let token = self.rcuda.call(ctx, |reply| DriverCall::MemcpyD2H {
                    offset: 2 * batch * img,
                    len: batch,
                    reply,
                });
                self.token_to_req.insert(token, req_id);
            }
            Phase::NfsWrite => {
                let data = state.distances.clone();
                let token = self.nfs_token;
                self.nfs_token += 1;
                self.token_to_req.insert(token, req_id);
                let me = Peer {
                    actor: ctx.self_id(),
                    endpoint: self.endpoint,
                };
                let fabric = self.fabric.clone();
                raw_send(
                    ctx,
                    &fabric,
                    self.endpoint,
                    self.nfs,
                    data.len() as u64,
                    TrafficClass::Data,
                    crate::storage::NFS_CLIENT_OVERHEAD,
                    NfsOp::Write {
                        // Output region beyond the database.
                        offset: 0,
                        data,
                        reply: (me, token),
                    },
                );
            }
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, req_id: u64, distances: Vec<u8>) {
        let state = self.reqs.remove(&req_id).expect("live");
        self.served += 1;
        let fabric = self.fabric.clone();
        raw_send(
            ctx,
            &fabric,
            self.endpoint,
            state.reply.0,
            state.batch,
            TrafficClass::Control,
            SimDuration::ZERO,
            VerifyReply {
                token: state.reply.1,
                distances,
            },
        );
    }
}

impl Actor for BaselineFrontend {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<VerifyReq>() {
            Err(other) => other,
            Ok(req) => {
                let req = *req;
                let id = self.next_req;
                self.next_req += 1;
                self.reqs.insert(
                    id,
                    ReqState {
                        batch: req.batch,
                        img: self.img,
                        db_offset: req.first_id * self.img,
                        queries: req.queries,
                        db: Vec::new(),
                        distances: Vec::new(),
                        reply: req.reply,
                        phase: Phase::NfsRead,
                    },
                );
                self.step(ctx, id);
                return;
            }
        };
        let msg = match msg.downcast::<NfsReply>() {
            Err(other) => other,
            Ok(reply) => {
                let Some(req_id) = self.token_to_req.remove(&reply.token) else {
                    return;
                };
                let state = self.reqs.get_mut(&req_id).expect("live");
                match state.phase {
                    Phase::NfsRead => {
                        state.db = reply.data;
                        state.phase = Phase::H2d;
                        self.step(ctx, req_id);
                    }
                    Phase::NfsWrite => {
                        let distances = std::mem::take(&mut state.distances);
                        self.finish(ctx, req_id, distances);
                    }
                    _ => unreachable!("NFS reply outside an NFS phase"),
                }
                return;
            }
        };
        if let Ok(reply) = msg.downcast::<DriverReply>() {
            let Some(req_id) = self.token_to_req.remove(&reply.token) else {
                return;
            };
            let state = self.reqs.get_mut(&req_id).expect("live");
            match state.phase {
                Phase::H2d => {
                    state.phase = Phase::Chatter(0);
                    self.step(ctx, req_id);
                }
                Phase::Chatter(k) => {
                    state.phase = if k + 1 < INTERPOSITION_CALLS {
                        Phase::Chatter(k + 1)
                    } else {
                        Phase::Launch
                    };
                    self.step(ctx, req_id);
                }
                Phase::Launch => {
                    state.phase = Phase::Sync;
                    self.step(ctx, req_id);
                }
                Phase::Sync => {
                    state.phase = Phase::D2h;
                    self.step(ctx, req_id);
                }
                Phase::D2h => {
                    if self.store_results {
                        let state = self.reqs.get_mut(&req_id).expect("live");
                        state.distances = reply.data;
                        state.phase = Phase::NfsWrite;
                        self.step(ctx, req_id);
                    } else {
                        self.finish(ctx, req_id, reply.data);
                    }
                }
                Phase::NfsRead | Phase::NfsWrite => {
                    unreachable!("NFS replies carry NfsReply")
                }
            }
        }
    }
}

/// The baseline load client (mirrors `fractos_services::FvClient`).
pub struct BaselineClient {
    /// Where the client runs.
    pub endpoint: Endpoint,
    /// The frontend.
    pub frontend: Peer,
    fabric: Shared<Fabric>,
    /// Bytes per image.
    pub img: u64,
    /// Batch size.
    pub batch: u64,
    /// Total requests.
    pub requests: u64,
    /// Requests kept in flight.
    pub in_flight: u64,
    issued: u64,
    next_token: u64,
    inflight_at: HashMap<u64, SimTime>,
    /// Completed samples.
    pub samples: Vec<FvSample>,
}

/// Kick-off message.
pub struct Start;

impl BaselineClient {
    /// Creates the client.
    pub fn new(
        endpoint: Endpoint,
        frontend: Peer,
        fabric: Shared<Fabric>,
        img: u64,
        batch: u64,
        requests: u64,
        in_flight: u64,
    ) -> Self {
        BaselineClient {
            endpoint,
            frontend,
            fabric,
            img,
            batch,
            requests,
            in_flight: in_flight.max(1),
            issued: 0,
            next_token: 0,
            inflight_at: HashMap::new(),
            samples: Vec::new(),
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        if self.issued >= self.requests {
            return;
        }
        self.issued += 1;
        let token = self.next_token;
        self.next_token += 1;
        // Same scattered id windows as the FractOS client.
        let first_id = (token * 53 + 17) % (256 - self.batch).max(1);
        let mut queries = Vec::with_capacity((self.batch * self.img) as usize);
        for i in 0..self.batch {
            queries.extend(synth_face(first_id + i, self.img as usize, token + 1));
        }
        self.inflight_at.insert(token, ctx.now());
        let me = Peer {
            actor: ctx.self_id(),
            endpoint: self.endpoint,
        };
        let size = queries.len() as u64;
        let fabric = self.fabric.clone();
        raw_send(
            ctx,
            &fabric,
            self.endpoint,
            self.frontend,
            size,
            TrafficClass::Data,
            SimDuration::ZERO,
            VerifyReq {
                batch: self.batch,
                first_id,
                queries,
                reply: (me, token),
            },
        );
    }
}

/// Handles of a deployed baseline stack.
#[derive(Debug, Clone, Copy)]
pub struct BaselineDeployment {
    /// The NVMe-oF target actor (storage node).
    pub target: fractos_sim::ActorId,
    /// The NFS server actor (GPU node's host CPU).
    pub nfs: fractos_sim::ActorId,
    /// The rCUDA daemon actor (GPU node's host CPU).
    pub rcuda: fractos_sim::ActorId,
    /// The frontend actor (frontend node).
    pub frontend: fractos_sim::ActorId,
    /// Frontend peer handle for clients.
    pub frontend_peer: Peer,
}

/// Deploys the §6.5 baseline stack on the paper's 3-node layout: NVMe-oF
/// target on node 0, NFS server and rCUDA daemon on node 1's host CPU,
/// frontend on node 2. The database (`db_count` synthetic faces of `img`
/// bytes) is pre-populated on the target, mirroring the FractOS loader.
pub fn deploy_baseline(
    sim: &mut dyn fractos_sim::Runtime,
    fabric: &Shared<Fabric>,
    img: u64,
    db_count: u64,
) -> BaselineDeployment {
    use fractos_devices::{GpuParams, NvmeParams};
    use fractos_net::NodeId;

    let target_ep = Endpoint::cpu(NodeId(0));
    let mut target_actor = crate::storage::NvmeOfTarget::new(
        target_ep,
        fabric.clone(),
        NvmeParams::default(),
        db_count * img,
    );
    {
        let (dev, ns) = target_actor.device_mut();
        let mut data = Vec::with_capacity((db_count * img) as usize);
        for id in 0..db_count {
            data.extend(synth_face(id, img as usize, 0));
        }
        dev.write(ns, 0, &data).expect("db fits the namespace");
    }
    let target = sim.add_actor_on(0, "nvmeof-target", Box::new(target_actor));

    let nfs_ep = Endpoint::cpu(NodeId(1));
    let nfs = sim.add_actor_on(
        1,
        "nfs-server",
        Box::new(crate::storage::NfsServer::new(
            nfs_ep,
            fabric.clone(),
            Peer {
                actor: target,
                endpoint: target_ep,
            },
        )),
    );

    let rcuda_ep = Endpoint::cpu(NodeId(1));
    let rcuda = sim.add_actor_on(
        1,
        "rcuda-daemon",
        Box::new(
            crate::rcuda::RcudaServer::new(rcuda_ep, fabric.clone(), GpuParams::default(), 4 << 20)
                .with_kernel(
                    fractos_services::FACE_VERIFY_KERNEL,
                    fractos_services::FaceVerifyKernel,
                ),
        ),
    );

    let frontend_ep = Endpoint::cpu(NodeId(2));
    let frontend = sim.add_actor_on(
        2,
        "baseline-frontend",
        Box::new(BaselineFrontend::new(
            frontend_ep,
            fabric.clone(),
            Peer {
                actor: nfs,
                endpoint: nfs_ep,
            },
            Peer {
                actor: rcuda,
                endpoint: rcuda_ep,
            },
            img,
        )),
    );

    BaselineDeployment {
        target,
        nfs,
        rcuda,
        frontend,
        frontend_peer: Peer {
            actor: frontend,
            endpoint: frontend_ep,
        },
    }
}

impl Actor for BaselineClient {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        if msg.downcast_ref::<Start>().is_some() {
            for _ in 0..self.in_flight.min(self.requests) {
                self.issue(ctx);
            }
            return;
        }
        if let Ok(reply) = msg.downcast::<VerifyReply>() {
            let issued = self
                .inflight_at
                .remove(&reply.token)
                .unwrap_or(SimTime::ZERO);
            let all_matched =
                !reply.distances.is_empty() && reply.distances.iter().all(|&d| d < MATCH_THRESHOLD);
            self.samples.push(FvSample {
                issued,
                completed: ctx.now(),
                all_matched,
            });
            self.issue(ctx);
        }
    }
}
