//! Analytic "local" baselines: the same devices attached to the client's
//! own PCIe bus, with no network involved (Fig 9 "Local GPU", Fig 10
//! "Local Baseline").

use fractos_devices::{GpuParams, NvmeParams};
use fractos_net::NetParams;
use fractos_sim::SimDuration;

/// Latency of one face-verification execution on a *local* GPU: PCIe
/// host-to-device copy of queries + references, kernel execution, PCIe
/// copy of the distances back.
pub fn local_gpu_latency(
    gpu: &GpuParams,
    net: &NetParams,
    batch: u64,
    img_bytes: u64,
) -> SimDuration {
    let h2d = SimDuration::from_secs_f64((2 * batch * img_bytes) as f64 / net.pcie_bandwidth);
    let d2h = SimDuration::from_secs_f64(batch as f64 / net.pcie_bandwidth);
    let kernel = gpu.launch_overhead + gpu.per_item * batch;
    // Two driver submissions over local PCIe.
    net.pcie_hop * 4 + h2d + kernel + d2h
}

/// Steady-state throughput (requests/second) of a local GPU serving
/// back-to-back batches: the kernel is the bottleneck.
pub fn local_gpu_throughput(gpu: &GpuParams, batch: u64) -> f64 {
    let per_req = gpu.launch_overhead + gpu.per_item * batch;
    1.0 / per_req.as_secs_f64()
}

/// Latency of a random read from a *local* NVMe device: device service time
/// plus the PCIe transfer.
pub fn local_block_read_latency(nvme: &NvmeParams, net: &NetParams, size: u64) -> SimDuration {
    let device = nvme.read_latency + SimDuration::from_secs_f64(size as f64 / nvme.read_bandwidth);
    let pcie = SimDuration::from_secs_f64(size as f64 / net.pcie_bandwidth);
    net.pcie_hop * 2 + device + pcie
}

/// Latency of a random write to a local NVMe device (SLC-cache absorbed).
pub fn local_block_write_latency(nvme: &NvmeParams, net: &NetParams, size: u64) -> SimDuration {
    let device =
        nvme.write_latency + SimDuration::from_secs_f64(size as f64 / nvme.write_bandwidth);
    let pcie = SimDuration::from_secs_f64(size as f64 / net.pcie_bandwidth);
    net.pcie_hop * 2 + device + pcie
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_gpu_is_dominated_by_kernel_for_big_batches() {
        let gpu = GpuParams::default();
        let net = NetParams::paper();
        let l1 = local_gpu_latency(&gpu, &net, 1, 4096);
        let l64 = local_gpu_latency(&gpu, &net, 64, 4096);
        assert!(l64 > l1 * 20, "batches scale compute: {l1} vs {l64}");
        // Kernel time should dominate transfers for a 64-image batch.
        let kernel = gpu.launch_overhead + gpu.per_item * 64;
        assert!(l64.as_secs_f64() < kernel.as_secs_f64() * 1.5);
    }

    #[test]
    fn local_block_read_is_roughly_device_latency() {
        let nvme = NvmeParams::default();
        let net = NetParams::paper();
        let l = local_block_read_latency(&nvme, &net, 4096);
        let us = l.as_micros_f64();
        assert!((68.0..75.0).contains(&us), "local 4 KiB read {us:.1} µs");
        // Writes absorbed by the SLC cache are faster.
        assert!(local_block_write_latency(&nvme, &net, 4096) < l);
    }

    #[test]
    fn local_gpu_throughput_inverse_of_kernel_time() {
        let gpu = GpuParams::default();
        let t = local_gpu_throughput(&gpu, 1024);
        let per_req = (gpu.launch_overhead + gpu.per_item * 1024).as_secs_f64();
        assert!((t * per_req - 1.0).abs() < 1e-9);
    }
}
