//! The baseline storage stack: NVMe-over-Fabrics target, Linux-style page
//! cache, and an NFS/ext4-style file server (§6.4, §6.5 comparators).
//!
//! Fig 10's "Disaggregated Baseline" is an in-kernel NVMe-oF block stack
//! whose page cache absorbs writes and read-ahead accelerates sequential
//! reads; §6.5's baseline is a frontend fetching files via NFS from a
//! server whose ext4 is backed by NVMe-oF. Both are modelled here as raw
//! actors on the fabric.

use std::collections::{HashMap, VecDeque};

use fractos_devices::{BlockOp, NvmeDevice, NvmeParams};
use fractos_net::{Endpoint, Fabric, TrafficClass};
use fractos_sim::{Actor, Ctx, Msg, Shared, SimDuration, SimTime};

use crate::raw::{raw_send, Peer};

/// In-kernel processing overhead per NVMe-oF target operation.
pub const NVMEOF_TARGET_OVERHEAD: SimDuration = SimDuration::from_micros(3);

/// Processing overhead per NFS server operation (RPC decode, VFS walk,
/// ext4, RPC encode — the in-kernel NFS path costs considerably more per
/// operation than an RDMA verb).
pub const NFS_SERVER_OVERHEAD: SimDuration = SimDuration::from_micros(15);

/// Client-side kernel NFS stack cost per operation (syscall, RPC encode,
/// completion handling at the frontend).
pub const NFS_CLIENT_OVERHEAD: SimDuration = SimDuration::from_micros(10);

/// Page size of the cache model.
pub const PAGE_SIZE: u64 = 4096;

/// Pages prefetched ahead on a sequential read streak.
pub const READAHEAD_PAGES: u64 = 32;

/// NVMe-oF wire operations.
pub enum NvmeOfOp {
    /// Read `len` bytes at `offset`.
    Read {
        /// Byte offset on the namespace.
        offset: u64,
        /// Length.
        len: u64,
        /// Reply routing.
        reply: (Peer, u64),
    },
    /// Write bytes at `offset`.
    Write {
        /// Byte offset on the namespace.
        offset: u64,
        /// The data.
        data: Vec<u8>,
        /// Reply routing.
        reply: (Peer, u64),
    },
}

/// NVMe-oF completion.
pub struct NvmeOfCompletion {
    /// Echoed token.
    pub token: u64,
    /// Data for reads.
    pub data: Vec<u8>,
}

/// The NVMe-oF target: one namespace over the NVMe device model.
pub struct NvmeOfTarget {
    /// Where the target runs.
    pub endpoint: Endpoint,
    fabric: Shared<Fabric>,
    device: NvmeDevice,
    namespace: u64,
    /// Operations served (tests).
    pub ops_served: u64,
}

impl NvmeOfTarget {
    /// Creates a target with a namespace of `size` bytes.
    pub fn new(endpoint: Endpoint, fabric: Shared<Fabric>, params: NvmeParams, size: u64) -> Self {
        let mut device = NvmeDevice::new(params);
        let namespace = device.create_volume(size);
        NvmeOfTarget {
            endpoint,
            fabric,
            device,
            namespace,
            ops_served: 0,
        }
    }

    /// Direct access to the namespace contents (harness pre-population).
    pub fn device_mut(&mut self) -> (&mut NvmeDevice, u64) {
        (&mut self.device, self.namespace)
    }
}

impl Actor for NvmeOfTarget {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let Ok(op) = msg.downcast::<NvmeOfOp>() else {
            return;
        };
        let op = *op;
        self.ops_served += 1;
        match op {
            NvmeOfOp::Read { offset, len, reply } => {
                let delay = self.device.service_time(ctx.now(), BlockOp::Read, len);
                let data = self
                    .device
                    .read(self.namespace, offset, len)
                    .unwrap_or_default();
                let fabric = self.fabric.clone();
                raw_send(
                    ctx,
                    &fabric,
                    self.endpoint,
                    reply.0,
                    data.len() as u64,
                    TrafficClass::Data,
                    delay + NVMEOF_TARGET_OVERHEAD,
                    NvmeOfCompletion {
                        token: reply.1,
                        data,
                    },
                );
            }
            NvmeOfOp::Write {
                offset,
                data,
                reply,
            } => {
                let delay = self
                    .device
                    .service_time(ctx.now(), BlockOp::Write, data.len() as u64);
                let _ = self.device.write(self.namespace, offset, &data);
                let fabric = self.fabric.clone();
                raw_send(
                    ctx,
                    &fabric,
                    self.endpoint,
                    reply.0,
                    0,
                    TrafficClass::Control,
                    delay + NVMEOF_TARGET_OVERHEAD,
                    NvmeOfCompletion {
                        token: reply.1,
                        data: Vec::new(),
                    },
                );
            }
        }
    }
}

/// A Linux-style page cache: write absorption and sequential read-ahead.
pub struct PageCache {
    pages: HashMap<u64, Vec<u8>>,
    /// Last page read, to detect sequential streaks.
    last_page: Option<u64>,
    /// Pages already requested from the backend (read-ahead in flight).
    prefetching: HashMap<u64, bool>,
    /// Cache hits / misses (tests and the Fig 10 discussion).
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl Default for PageCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PageCache {
    /// An empty cache.
    pub fn new() -> Self {
        PageCache {
            pages: HashMap::new(),
            last_page: None,
            prefetching: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Whether the byte range is fully cached.
    pub fn covers(&self, offset: u64, len: u64) -> bool {
        let first = offset / PAGE_SIZE;
        let last = (offset + len.max(1) - 1) / PAGE_SIZE;
        (first..=last).all(|p| self.pages.contains_key(&p))
    }

    /// Reads a cached range.
    ///
    /// # Panics
    ///
    /// Panics if the range is not covered; check [`PageCache::covers`].
    pub fn read(&self, offset: u64, len: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = offset;
        while pos < offset + len {
            let page = pos / PAGE_SIZE;
            let off = (pos % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize) - off).min((offset + len - pos) as usize);
            let data = self.pages.get(&page).expect("range not cached");
            out.extend_from_slice(&data[off..off + take]);
            pos += take as u64;
        }
        out
    }

    /// Installs backend data covering `[offset, offset+data.len())`
    /// (page-aligned).
    pub fn fill(&mut self, offset: u64, data: &[u8]) {
        debug_assert_eq!(offset % PAGE_SIZE, 0);
        for (i, chunk) in data.chunks(PAGE_SIZE as usize).enumerate() {
            let page = offset / PAGE_SIZE + i as u64;
            let mut v = chunk.to_vec();
            v.resize(PAGE_SIZE as usize, 0);
            self.pages.insert(page, v);
            self.prefetching.remove(&page);
        }
    }

    /// Writes through the cache (dirty pages modelled as instantly clean —
    /// write-back happens off the measured path).
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let page = abs / PAGE_SIZE;
            let off = (abs % PAGE_SIZE) as usize;
            let take = (PAGE_SIZE as usize - off).min(data.len() - pos);
            let entry = self
                .pages
                .entry(page)
                .or_insert_with(|| vec![0; PAGE_SIZE as usize]);
            entry[off..off + take].copy_from_slice(&data[pos..pos + take]);
            pos += take;
        }
    }

    /// Records a read access and returns the page-aligned extent the server
    /// should fetch (including read-ahead), or `None` on a full hit.
    pub fn plan_fetch(&mut self, offset: u64, len: u64) -> Option<(u64, u64)> {
        let first = offset / PAGE_SIZE;
        let last = (offset + len.max(1) - 1) / PAGE_SIZE;
        let sequential =
            self.last_page == Some(first.wrapping_sub(1)) || self.last_page == Some(first);
        self.last_page = Some(last);
        if self.covers(offset, len) {
            self.hits += 1;
            return None;
        }
        self.misses += 1;
        let ahead = if sequential { READAHEAD_PAGES } else { 0 };
        let start = first * PAGE_SIZE;
        let pages = last - first + 1 + ahead;
        Some((start, pages * PAGE_SIZE))
    }
}

/// NFS wire operations (one big file namespace, like the paper's DB file).
pub enum NfsOp {
    /// Read `len` bytes at `offset` of the exported file.
    Read {
        /// Byte offset.
        offset: u64,
        /// Length.
        len: u64,
        /// Reply routing.
        reply: (Peer, u64),
    },
    /// Write bytes.
    Write {
        /// Byte offset.
        offset: u64,
        /// Data.
        data: Vec<u8>,
        /// Reply routing.
        reply: (Peer, u64),
    },
}

/// NFS reply.
pub struct NfsReply {
    /// Echoed token.
    pub token: u64,
    /// Data for reads.
    pub data: Vec<u8>,
}

enum ServerPending {
    Read {
        offset: u64,
        len: u64,
        reply: (Peer, u64),
    },
}

/// The NFS/ext4 file server, backed by an NVMe-oF namespace through the
/// page cache.
pub struct NfsServer {
    /// Where the server runs.
    pub endpoint: Endpoint,
    fabric: Shared<Fabric>,
    /// The backing NVMe-oF target.
    pub target: Peer,
    /// The page cache ("Linux cache on the FS-service node", §6.4).
    pub cache: PageCache,
    next_token: u64,
    pending: HashMap<u64, ServerPending>,
    /// Queued same-extent requests to retry after a fill lands.
    retry: VecDeque<(NfsOp, SimTime)>,
    /// Requests served (tests).
    pub served: u64,
}

impl NfsServer {
    /// Creates the server.
    pub fn new(endpoint: Endpoint, fabric: Shared<Fabric>, target: Peer) -> Self {
        NfsServer {
            endpoint,
            fabric,
            target,
            cache: PageCache::new(),
            next_token: 0,
            pending: HashMap::new(),
            retry: VecDeque::new(),
            served: 0,
        }
    }

    fn reply_read(&mut self, ctx: &mut Ctx<'_>, offset: u64, len: u64, reply: (Peer, u64)) {
        self.served += 1;
        let data = self.cache.read(offset, len);
        let fabric = self.fabric.clone();
        raw_send(
            ctx,
            &fabric,
            self.endpoint,
            reply.0,
            len,
            TrafficClass::Data,
            NFS_SERVER_OVERHEAD,
            NfsReply {
                token: reply.1,
                data,
            },
        );
    }

    fn fetch(&mut self, ctx: &mut Ctx<'_>, start: u64, len: u64, pending: ServerPending) {
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, pending);
        let me = Peer {
            actor: ctx.self_id(),
            endpoint: self.endpoint,
        };
        let fabric = self.fabric.clone();
        raw_send(
            ctx,
            &fabric,
            self.endpoint,
            self.target,
            48,
            TrafficClass::Control,
            NFS_SERVER_OVERHEAD,
            NvmeOfOp::Read {
                offset: start,
                len,
                reply: (me, token),
            },
        );
    }
}

impl Actor for NfsServer {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<NfsOp>() {
            Err(other) => other,
            Ok(op) => {
                self.handle_op(*op, ctx);
                return;
            }
        };
        if let Ok(done) = msg.downcast::<NvmeOfCompletion>() {
            let Some(pending) = self.pending.remove(&done.token) else {
                // Write-back ack.
                return;
            };
            match pending {
                ServerPending::Read { offset, len, reply } => {
                    // Install the fetched pages, then serve from cache.
                    let start = offset / PAGE_SIZE * PAGE_SIZE;
                    self.cache.fill(start, &done.data);
                    self.reply_read(ctx, offset, len, reply);
                }
            }
        }
        let _ = &self.retry;
    }
}

impl NfsServer {
    fn handle_op(&mut self, op: NfsOp, ctx: &mut Ctx<'_>) {
        {
            match op {
                NfsOp::Read { offset, len, reply } => match self.cache.plan_fetch(offset, len) {
                    None => self.reply_read(ctx, offset, len, reply),
                    Some((start, flen)) => {
                        self.fetch(ctx, start, flen, ServerPending::Read { offset, len, reply })
                    }
                },
                NfsOp::Write {
                    offset,
                    data,
                    reply,
                } => {
                    // ext4 + page cache absorb the write; write-back to the
                    // target happens off the measured path.
                    self.served += 1;
                    self.cache.write(offset, &data);
                    let me_fabric = self.fabric.clone();
                    // Background write-back (fire and forget).
                    let me = Peer {
                        actor: ctx.self_id(),
                        endpoint: self.endpoint,
                    };
                    let wb_token = self.next_token;
                    self.next_token += 1;
                    raw_send(
                        ctx,
                        &me_fabric,
                        self.endpoint,
                        self.target,
                        data.len() as u64,
                        TrafficClass::Data,
                        SimDuration::from_millis(5), // delayed write-back
                        NvmeOfOp::Write {
                            offset,
                            data,
                            reply: (me, wb_token),
                        },
                    );
                    raw_send(
                        ctx,
                        &me_fabric,
                        self.endpoint,
                        reply.0,
                        0,
                        TrafficClass::Control,
                        NFS_SERVER_OVERHEAD,
                        NfsReply {
                            token: reply.1,
                            data: Vec::new(),
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_roundtrip_and_coverage() {
        let mut c = PageCache::new();
        assert!(!c.covers(0, 10));
        c.fill(0, &[7; 8192]);
        assert!(c.covers(0, 8192));
        assert!(c.covers(4000, 200));
        assert_eq!(c.read(4000, 200), vec![7; 200]);
        assert!(!c.covers(8192, 1));
    }

    #[test]
    fn cache_write_then_read() {
        let mut c = PageCache::new();
        c.write(100, b"abc");
        assert!(c.covers(100, 3));
        assert_eq!(c.read(100, 3), b"abc");
    }

    #[test]
    fn plan_fetch_hit_miss_and_readahead() {
        let mut c = PageCache::new();
        // Random first access: no read-ahead.
        let (start, len) = c.plan_fetch(PAGE_SIZE * 10, 100).unwrap();
        assert_eq!((start, len), (PAGE_SIZE * 10, PAGE_SIZE));
        c.fill(start, &vec![0; len as usize]);
        assert!(c.plan_fetch(PAGE_SIZE * 10, 100).is_none(), "now cached");
        // Sequential follow-up: read-ahead kicks in.
        let (_, len) = c.plan_fetch(PAGE_SIZE * 11, PAGE_SIZE).unwrap();
        assert!(len > PAGE_SIZE, "read-ahead extends the fetch: {len}");
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn unaligned_multi_page_reads() {
        let mut c = PageCache::new();
        let mut data = vec![0u8; 3 * PAGE_SIZE as usize];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 256) as u8;
        }
        c.fill(0, &data);
        let got = c.read(PAGE_SIZE - 10, 20);
        assert_eq!(
            got,
            data[(PAGE_SIZE - 10) as usize..(PAGE_SIZE + 10) as usize]
        );
    }
}
