#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Comparator systems for the FractOS evaluation (§6).
//!
//! The paper measures FractOS against the disaggregation technologies that
//! exist today. This crate implements them:
//!
//! * [`raw`] — infrastructure for non-FractOS actors plus the
//!   `ibv_rc_pingpong` loopback baseline (Table 3);
//! * [`rcuda`] — rCUDA-style transparent GPU remoting: every interposed
//!   CUDA driver call is one network round trip (Figs 9, 12, 13);
//! * [`storage`] — NVMe-over-Fabrics target, Linux-style page cache, and an
//!   NFS/ext4 file server (Figs 10–13);
//! * [`faceverify`] — the §6.5 baseline application: frontend + NFS +
//!   NVMe-oF + rCUDA in a star topology;
//! * [`pipeline`] — the star and fast-star drivers of the composition
//!   experiment (Fig 8), run against the same FractOS pipeline stages;
//! * [`local`] — analytic local-device baselines (Figs 9, 10).
//!
//! The raw baselines deliberately do *not* use FractOS: they are plain
//! simulation actors on the same fabric, paying their own protocol costs.

use fractos_net::{NetParams, Topology};
use fractos_sim::{runtime_from_env, Runtime, RuntimeConfig};

/// Builds a paper-testbed-shaped runtime on the backend selected by the
/// `FRACTOS_RUNTIME` environment variable (single-threaded when unset).
///
/// The lookahead window is derived from the paper fabric's minimum
/// inter-node latency, so the sharded backend is safe for any workload on
/// [`Topology::paper_testbed`].
pub fn paper_runtime(seed: u64) -> Box<dyn Runtime> {
    let topology = Topology::paper_testbed();
    let params = NetParams::paper();
    let config = RuntimeConfig::new(seed, topology.len(), params.conservative_lookahead());
    runtime_from_env(&config)
}

pub mod faceverify;
pub mod local;
pub mod pipeline;
pub mod raw;
pub mod rcuda;
pub mod storage;

pub use faceverify::{BaselineClient, BaselineFrontend, VerifyReply, VerifyReq};
pub use local::{
    local_block_read_latency, local_block_write_latency, local_gpu_latency, local_gpu_throughput,
};
pub use pipeline::{FastStarDriver, StarDriver};
pub use raw::{Peer, PingPongClient, PingPongServer};
pub use rcuda::{RcudaClient, RcudaServer};
pub use storage::{NfsServer, NvmeOfTarget, PageCache};
