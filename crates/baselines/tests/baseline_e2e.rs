//! End-to-end tests of the baseline systems, plus the headline
//! FractOS-vs-baseline comparisons the paper reports (§6.5).

use fractos_baselines::faceverify::{deploy_baseline, BaselineClient, Start};
use fractos_baselines::paper_runtime;
use fractos_baselines::pipeline::{FastStarDriver, StarDriver};
use fractos_baselines::Peer;
use fractos_core::prelude::*;
use fractos_net::{Fabric, NetParams, NodeId, Topology};
use fractos_services::deploy::deploy_faceverify;
use fractos_services::faceverify::FvClient;
use fractos_services::pipeline::{ChainDriver, PipelineStage};
use fractos_services::FvConfig;
use fractos_sim::{Runtime, RuntimeExt, Shared, SimDuration};

const IMG: u64 = 4096;

/// Runs the baseline app and returns (mean latency µs, network bytes,
/// network msgs, all matched).
fn run_baseline(batch: u64, requests: u64, in_flight: u64) -> (f64, u64, u64, bool) {
    let mut sim = paper_runtime(61);
    let fabric = Shared::new(Fabric::new(Topology::paper_testbed(), NetParams::paper()));
    let dep = deploy_baseline(sim.as_mut(), &fabric, IMG, 256);
    let client_ep = fractos_net::Endpoint::cpu(NodeId(2));
    let client = sim.add_actor_on(
        2,
        "client",
        Box::new(BaselineClient::new(
            client_ep,
            dep.frontend_peer,
            fabric.clone(),
            IMG,
            batch,
            requests,
            in_flight,
        )),
    );
    sim.post(SimDuration::ZERO, client, Start);
    sim.run();
    sim.with_actor::<BaselineClient, _>(client, |c| {
        assert_eq!(c.samples.len() as u64, requests);
        let mean = c
            .samples
            .iter()
            .map(|s| s.latency().as_micros_f64())
            .sum::<f64>()
            / c.samples.len() as f64;
        let matched = c.samples.iter().all(|s| s.all_matched);
        let stats = fabric.borrow().stats().clone();
        (mean, stats.network_bytes(), stats.network_msgs(), matched)
    })
}

/// Runs the FractOS app and returns the same tuple (traffic counted from
/// after deployment, like the baseline's steady state).
fn run_fractos(batch: u64, requests: u64, in_flight: u64) -> (f64, u64, u64, bool) {
    let mut tb = Testbed::paper(61);
    let ctrls = tb.controllers_per_node(false);
    let _dep = deploy_faceverify(&mut tb, &ctrls, FvConfig::default(), 256);
    tb.reset_traffic();
    let client = tb.add_process(
        "client",
        cpu(2),
        ctrls[2],
        FvClient::new(IMG, batch, requests, in_flight),
    );
    tb.start_process(client);
    tb.run();
    let (mean, matched) = tb.with_service::<FvClient, _>(client, |c| {
        assert_eq!(c.samples.len() as u64, requests);
        let mean = c
            .samples
            .iter()
            .map(|s| s.latency().as_micros_f64())
            .sum::<f64>()
            / c.samples.len() as f64;
        (mean, c.samples.iter().all(|s| s.all_matched))
    });
    let stats = tb.traffic();
    (mean, stats.network_bytes(), stats.network_msgs(), matched)
}

#[test]
fn baseline_app_is_correct_but_slower_than_fractos() {
    let (base_lat, base_bytes, _base_msgs, base_ok) = run_baseline(8, 10, 1);
    let (fos_lat, fos_bytes, _fos_msgs, fos_ok) = run_fractos(8, 10, 1);
    assert!(base_ok, "baseline results must be correct");
    assert!(fos_ok, "FractOS results must be correct");
    assert!(
        fos_lat < base_lat,
        "FractOS must be faster: {fos_lat:.1} vs {base_lat:.1} µs"
    );
    // §6 headline: 47% faster and 3× less traffic. Our calibrated models
    // preserve the *shape* (FractOS wins on both axes at every batch size);
    // the factors land lower because this baseline is idealized relative to
    // real NFS/rCUDA deployments. The headline bench reports the measured
    // factors; here we gate on the ordering with margin.
    assert!(
        base_lat / fos_lat > 1.15,
        "speedup shape: baseline {base_lat:.1} µs vs FractOS {fos_lat:.1} µs"
    );
    assert!(
        base_bytes as f64 / fos_bytes as f64 > 1.8,
        "traffic shape: baseline {base_bytes} B vs FractOS {fos_bytes} B"
    );
}

#[test]
fn star_vs_faststar_vs_chain_ordering() {
    // The Fig 8 ordering: star > fast-star > chain for a data-heavy
    // pipeline.
    let stages = 4usize;
    let size = 64 * 1024u64;
    let iterations = 5u64;

    let run = |which: u8| -> f64 {
        let mut tb = Testbed::paper(71);
        let ctrls = tb.controllers_per_node(false);
        for i in 0..stages {
            let node = (i % 3) as u32;
            let p = tb.add_process(
                &format!("stage{i}"),
                cpu(node),
                ctrls[node as usize],
                PipelineStage::new(i, size),
            );
            tb.start_process(p);
            tb.run();
        }
        match which {
            0 => {
                let d = tb.add_process(
                    "star",
                    cpu(0),
                    ctrls[0],
                    StarDriver::new(stages, size, iterations),
                );
                tb.start_process(d);
                tb.run();
                tb.with_service::<StarDriver, _>(d, |s| {
                    assert_eq!(s.latencies.len() as u64, iterations);
                    s.latencies.iter().map(|l| l.as_micros_f64()).sum::<f64>() / iterations as f64
                })
            }
            1 => {
                let d = tb.add_process(
                    "faststar",
                    cpu(0),
                    ctrls[0],
                    FastStarDriver::new(stages, size, iterations),
                );
                tb.start_process(d);
                tb.run();
                tb.with_service::<FastStarDriver, _>(d, |s| {
                    assert_eq!(s.latencies.len() as u64, iterations);
                    s.latencies.iter().map(|l| l.as_micros_f64()).sum::<f64>() / iterations as f64
                })
            }
            _ => {
                let d = tb.add_process(
                    "chain",
                    cpu(0),
                    ctrls[0],
                    ChainDriver::new(stages, size, iterations),
                );
                tb.start_process(d);
                tb.run();
                tb.with_service::<ChainDriver, _>(d, |s| {
                    assert_eq!(s.latencies.len() as u64, iterations);
                    s.latencies.iter().map(|l| l.as_micros_f64()).sum::<f64>() / iterations as f64
                })
            }
        }
    };

    let star = run(0);
    let faststar = run(1);
    let chain = run(2);
    assert!(
        star > faststar && faststar > chain,
        "Fig 8 ordering violated: star {star:.1}, fast-star {faststar:.1}, chain {chain:.1} µs"
    );
}

#[test]
fn baseline_throughput_improves_with_in_flight() {
    let mut sim = paper_runtime(62);
    let fabric = Shared::new(Fabric::new(Topology::paper_testbed(), NetParams::paper()));
    let dep = deploy_baseline(sim.as_mut(), &fabric, IMG, 256);
    let client_ep = fractos_net::Endpoint::cpu(NodeId(2));
    let mk = |sim: &mut dyn Runtime, in_flight| {
        sim.add_actor_on(
            2,
            "client",
            Box::new(BaselineClient::new(
                client_ep,
                dep.frontend_peer,
                fabric.clone(),
                IMG,
                8,
                12,
                in_flight,
            )),
        )
    };
    let seq = mk(sim.as_mut(), 1);
    sim.post(SimDuration::ZERO, seq, Start);
    let t0 = sim.now();
    sim.run();
    let span_seq = sim.now().duration_since(t0);

    let pipe = mk(sim.as_mut(), 4);
    sim.post(SimDuration::ZERO, pipe, Start);
    let t1 = sim.now();
    sim.run();
    let span_pipe = sim.now().duration_since(t1);
    assert!(
        span_pipe.as_secs_f64() < span_seq.as_secs_f64(),
        "pipelining helps the baseline too: {span_seq} vs {span_pipe}"
    );
    let _ = Peer {
        actor: dep.frontend,
        endpoint: client_ep,
    };
}
