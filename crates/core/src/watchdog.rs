//! The external failure-detection service (§3.6).
//!
//! The paper delegates node/Controller failure detection to "an external
//! monitoring service such as Zookeeper". This actor implements that role
//! inside the simulation: it pings every Controller on a fixed period over
//! the fabric, and after `missed_limit` consecutive unanswered pings it
//! declares the Controller failed and notifies all surviving peers, which
//! then run the §3.6 failure translation (fail the dead Controller's
//! Processes, fail pending operations, treat its capabilities as revoked).

use std::collections::BTreeMap;

use fractos_cap::ControllerAddr;
use fractos_net::{Endpoint, Fabric, SendOutcome, TrafficClass};
use fractos_sim::{Actor, ActorId, Ctx, Msg, Shared, SimDuration, SimTime, SpanKind, TraceCtx};

use crate::directory::Directory;
use crate::messages::CtrlMsg;

/// Default ping period.
pub const PING_PERIOD: SimDuration = SimDuration::from_micros(200);

/// Consecutive missed pings before a Controller is declared dead.
pub const MISSED_LIMIT: u32 = 3;

/// Messages handled by the watchdog.
#[derive(Debug)]
pub enum WatchdogMsg {
    /// Periodic self-timer.
    Tick,
    /// A Controller answered ping `seq`.
    Pong {
        /// The answering Controller.
        from: ControllerAddr,
        /// The ping sequence number.
        seq: u64,
    },
}

/// The watchdog actor.
pub struct WatchdogActor {
    endpoint: Endpoint,
    dir: Shared<Directory>,
    fabric: Shared<Fabric>,
    period: SimDuration,
    missed_limit: u32,
    seq: u64,
    /// Outstanding ping sequence per Controller.
    outstanding: BTreeMap<ControllerAddr, u64>,
    misses: BTreeMap<ControllerAddr, u32>,
    /// When the current run of consecutive misses started (the detection
    /// window for recovery attribution); cleared by a pong.
    first_miss_at: BTreeMap<ControllerAddr, SimTime>,
    declared_dead: BTreeMap<ControllerAddr, bool>,
    /// Failures detected so far (tests).
    pub detected: Vec<ControllerAddr>,
    /// Timestamped death declarations: `(subject, first miss, declared)`.
    /// The interval is the detect phase of the recovery timeline.
    pub declared: Vec<(ControllerAddr, SimTime, SimTime)>,
    /// Declared-dead Controllers later observed answering again (healed
    /// partitions, §3.6 false positives) (tests).
    pub recovered: Vec<ControllerAddr>,
    /// Timestamped verdict withdrawals.
    pub recovered_at: Vec<(ControllerAddr, SimTime)>,
}

impl WatchdogActor {
    /// Creates a watchdog at `endpoint` with default timing.
    pub fn new(endpoint: Endpoint, dir: Shared<Directory>, fabric: Shared<Fabric>) -> Self {
        WatchdogActor {
            endpoint,
            dir,
            fabric,
            period: PING_PERIOD,
            missed_limit: MISSED_LIMIT,
            seq: 0,
            outstanding: BTreeMap::new(),
            misses: BTreeMap::new(),
            first_miss_at: BTreeMap::new(),
            declared_dead: BTreeMap::new(),
            detected: Vec::new(),
            declared: Vec::new(),
            recovered: Vec::new(),
            recovered_at: Vec::new(),
        }
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let ctrls: Vec<(ControllerAddr, ActorId, Endpoint)> = {
            let dir = self.dir.borrow();
            dir.all_ctrls()
                .into_iter()
                .filter_map(|a| dir.ctrl(a).map(|e| (a, e.actor, e.endpoint)))
                .collect()
        };
        self.seq += 1;
        let me = ctx.self_id();
        for (addr, actor, ep) in ctrls {
            let dead = self.declared_dead.get(&addr).copied().unwrap_or(false);
            // Unanswered previous ping counts as a miss (not while declared
            // dead — then we only probe for recovery).
            if !dead && self.outstanding.contains_key(&addr) {
                let m = self.misses.entry(addr).or_insert(0);
                *m += 1;
                self.first_miss_at.entry(addr).or_insert(ctx.now());
                if *m >= self.missed_limit {
                    self.declare_dead(ctx, addr);
                    continue;
                }
            }
            if !dead {
                self.outstanding.insert(addr, self.seq);
            }
            // Pings ride the droppable control plane: a partitioned (or
            // crashed) Controller misses them, which IS the detection
            // signal. Declared-dead Controllers keep being probed so a
            // healed partition is noticed.
            let outcome = self.fabric.borrow_mut().try_send(
                ctx.now(),
                ctx.rng(),
                self.endpoint,
                ep,
                16,
                TrafficClass::Control,
            );
            if let SendOutcome::Delivered(delay) = outcome {
                ctx.send_after(
                    delay,
                    actor,
                    CtrlMsg::Ping {
                        watchdog: me,
                        watchdog_ep: self.endpoint,
                        seq: self.seq,
                    },
                );
            }
        }
        ctx.schedule_self(self.period, WatchdogMsg::Tick);
    }

    fn declare_dead(&mut self, ctx: &mut Ctx<'_>, dead: ControllerAddr) {
        self.declared_dead.insert(dead, true);
        self.outstanding.remove(&dead);
        self.misses.remove(&dead);
        let first_miss = self.first_miss_at.remove(&dead).unwrap_or(ctx.now());
        self.detected.push(dead);
        self.declared.push((dead, first_miss, ctx.now()));
        // Escalate to the directory: bump the death epoch and install the
        // standing verdict that drives failover routing. Survivors treat
        // every capability minted before this epoch as revoked (§3.6).
        self.dir.borrow_mut().declare_ctrl_dead(dead);
        if ctx.spans_enabled() {
            let detect = ctx.span(
                SpanKind::Recovery,
                "detect",
                TraceCtx::NONE,
                first_miss,
                ctx.now(),
            );
            ctx.span(SpanKind::Recovery, "declare", detect, ctx.now(), ctx.now());
        }
        self.broadcast(ctx, dead, true);
    }

    fn declare_recovered(&mut self, ctx: &mut Ctx<'_>, peer: ControllerAddr) {
        self.declared_dead.insert(peer, false);
        self.outstanding.remove(&peer);
        self.misses.insert(peer, 0);
        self.first_miss_at.remove(&peer);
        self.recovered.push(peer);
        self.recovered_at.push((peer, ctx.now()));
        self.dir.borrow_mut().declare_ctrl_recovered(peer);
        self.broadcast(ctx, peer, false);
    }

    /// Notifies every other Controller of a verdict about `subject`.
    /// Verdict broadcasts model an out-of-band management network (the
    /// external Zookeeper-like service), so they are not droppable.
    fn broadcast(&mut self, ctx: &mut Ctx<'_>, subject: ControllerAddr, failed: bool) {
        let peers: Vec<(ActorId, Endpoint)> = {
            let dir = self.dir.borrow();
            dir.all_ctrls()
                .into_iter()
                .filter(|&a| a != subject)
                .filter_map(|a| dir.ctrl(a).map(|e| (e.actor, e.endpoint)))
                .collect()
        };
        for (actor, ep) in peers {
            let delay = self.fabric.borrow_mut().send(
                ctx.now(),
                ctx.rng(),
                self.endpoint,
                ep,
                24,
                TrafficClass::Control,
            );
            let msg = if failed {
                CtrlMsg::PeerFailed { peer: subject }
            } else {
                CtrlMsg::PeerRecovered { peer: subject }
            };
            ctx.send_after(delay, actor, msg);
        }
    }
}

impl Actor for WatchdogActor {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        // A message of any other type is a harness wiring bug; dropping it
        // is safer than unwinding mid-event.
        let Ok(msg) = msg.downcast::<WatchdogMsg>() else {
            return;
        };
        let msg = *msg;
        match msg {
            WatchdogMsg::Tick => self.tick(ctx),
            WatchdogMsg::Pong { from, seq } => {
                if self.declared_dead.get(&from).copied().unwrap_or(false) {
                    // A declared-dead Controller answered a recovery probe:
                    // the outage was a partition that healed, not a crash
                    // (a crashed Controller's dead-gate never pongs).
                    self.declare_recovered(ctx, from);
                } else if self.outstanding.get(&from) == Some(&seq) {
                    self.outstanding.remove(&from);
                    self.misses.insert(from, 0);
                    self.first_miss_at.remove(&from);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractos_net::{ComputeDomain, NetParams, NodeId, Topology};
    use fractos_sim::{ActorId, Sim, SimTime};

    /// A minimal Controller stand-in: answers pings while `alive` and
    /// records the verdict broadcasts it receives. Exercising the
    /// watchdog against a stub isolates its timing from the real
    /// Controller's dead-gate, which integration tests already cover.
    struct StubCtrl {
        addr: ControllerAddr,
        endpoint: Endpoint,
        fabric: Shared<Fabric>,
        alive: Shared<bool>,
        peer_failed: Vec<ControllerAddr>,
        peer_recovered: Vec<ControllerAddr>,
    }

    impl Actor for StubCtrl {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            let Ok(msg) = msg.downcast::<CtrlMsg>() else {
                return;
            };
            match *msg {
                CtrlMsg::Ping {
                    watchdog,
                    watchdog_ep,
                    seq,
                } => {
                    if !*self.alive.borrow() {
                        return;
                    }
                    let outcome = self.fabric.borrow_mut().try_send(
                        ctx.now(),
                        ctx.rng(),
                        self.endpoint,
                        watchdog_ep,
                        16,
                        TrafficClass::Control,
                    );
                    if let SendOutcome::Delivered(delay) = outcome {
                        let from = self.addr;
                        ctx.send_after(delay, watchdog, WatchdogMsg::Pong { from, seq });
                    }
                }
                CtrlMsg::PeerFailed { peer } => self.peer_failed.push(peer),
                CtrlMsg::PeerRecovered { peer } => self.peer_recovered.push(peer),
                _ => {}
            }
        }
    }

    struct Harness {
        sim: Sim,
        dir: Shared<Directory>,
        wd: ActorId,
        ctrls: Vec<(ControllerAddr, ActorId, Shared<bool>)>,
    }

    /// Two stub Controllers on distinct nodes plus a watchdog on node 0.
    fn harness() -> Harness {
        let mut sim = Sim::new(7);
        let dir = Shared::named("dir", Directory::new());
        let fabric = Shared::named(
            "fabric",
            Fabric::new(Topology::paper_testbed(), NetParams::paper()),
        );
        let mut ctrls = Vec::new();
        for node in [1usize, 2] {
            let endpoint = Endpoint::cpu(NodeId(node as u32));
            let addr = dir.borrow_mut().register_ctrl(
                ActorId::from_raw(0),
                endpoint,
                ComputeDomain::HostCpu,
            );
            let alive = Shared::named("state", true);
            let actor = sim.add_actor_on(
                node,
                format!("stub{node}"),
                Box::new(StubCtrl {
                    addr,
                    endpoint,
                    fabric: fabric.clone(),
                    alive: alive.clone(),
                    peer_failed: Vec::new(),
                    peer_recovered: Vec::new(),
                }),
            );
            dir.borrow_mut().set_ctrl_actor(addr, actor);
            ctrls.push((addr, actor, alive));
        }
        let wd_actor = WatchdogActor::new(Endpoint::cpu(NodeId(0)), dir.clone(), fabric);
        let wd = sim.add_actor_on(0, "watchdog", Box::new(wd_actor));
        sim.post(SimDuration::ZERO, wd, WatchdogMsg::Tick);
        Harness {
            sim,
            dir,
            wd,
            ctrls,
        }
    }

    fn us(n: u64) -> SimTime {
        SimTime::from_nanos(n * 1_000)
    }

    #[test]
    fn answered_pings_never_declare() {
        let mut h = harness();
        h.sim.run_until(us(5_000));
        h.sim.with_actor::<WatchdogActor, _>(h.wd, |w| {
            assert!(w.detected.is_empty(), "live Controllers declared dead");
            assert!(w.declared.is_empty());
        });
    }

    #[test]
    fn silence_declares_after_exactly_missed_limit_periods() {
        let mut h = harness();
        let (dead, _, alive) = h.ctrls[0].clone();
        *alive.borrow_mut() = false;
        h.sim.run_until(us(5_000));
        let (subject, first_miss, declared) = h
            .sim
            .with_actor::<WatchdogActor, _>(h.wd, |w| *w.declared.first().expect("never declared"));
        assert_eq!(subject, dead);
        // The first ping (tick 1, t=0) goes unanswered; the miss is
        // charged when tick 2 finds it outstanding, and the run reaches
        // MISSED_LIMIT exactly `MISSED_LIMIT - 1` periods later.
        assert_eq!(first_miss, us(0) + PING_PERIOD);
        assert_eq!(
            declared,
            first_miss + PING_PERIOD * (MISSED_LIMIT - 1) as u64
        );
    }

    #[test]
    fn declare_dead_escalates_to_directory_and_peers() {
        let mut h = harness();
        let (dead, _, alive) = h.ctrls[0].clone();
        let (survivor_addr, survivor, _) = h.ctrls[1].clone();
        *alive.borrow_mut() = false;
        h.sim.run_until(us(5_000));
        // Directory escalation: epoch bump plus the standing verdict that
        // drives failover routing.
        assert!(h.dir.borrow().is_declared_dead(dead));
        assert!(h.dir.borrow().death_epoch(dead) > 0);
        assert_eq!(h.dir.borrow().death_epoch(survivor_addr), 0);
        // Survivors hear the (non-droppable) verdict broadcast.
        h.sim.with_actor::<StubCtrl, _>(survivor, |s| {
            assert_eq!(s.peer_failed, vec![dead]);
            assert!(s.peer_recovered.is_empty());
        });
    }

    #[test]
    fn stale_pong_is_not_liveness() {
        let mut h = harness();
        let (dead, _, alive) = h.ctrls[0].clone();
        *alive.borrow_mut() = false;
        // A pong echoing a sequence the watchdog never sent outstanding
        // must not clear the miss run (e.g. a delayed duplicate).
        h.sim.post(
            SimDuration::from_micros(50),
            h.wd,
            WatchdogMsg::Pong {
                from: dead,
                seq: 999,
            },
        );
        h.sim.run_until(us(5_000));
        h.sim.with_actor::<WatchdogActor, _>(h.wd, |w| {
            assert_eq!(w.detected, vec![dead], "stale pong suppressed detection");
        });
    }

    #[test]
    fn pong_resets_a_partial_miss_run() {
        let mut h = harness();
        let (_, _, alive) = h.ctrls[0].clone();
        // Miss two pings (one short of MISSED_LIMIT = 3: the t=0 ping is
        // charged at the 200 µs tick, the t=200 ping at the 400 µs tick),
        // then answer the t=400 ping: the run resets before the 600 µs
        // tick could charge the third miss, so no declaration happens.
        *alive.borrow_mut() = false;
        h.sim.run_until(us(300));
        *alive.borrow_mut() = true;
        h.sim.run_until(us(5_000));
        h.sim.with_actor::<WatchdogActor, _>(h.wd, |w| {
            assert!(
                w.detected.is_empty(),
                "a recovered miss run still declared: {:?}",
                w.declared
            );
        });
    }

    #[test]
    fn healed_partition_withdraws_the_verdict() {
        let mut h = harness();
        let (dead, _, alive) = h.ctrls[0].clone();
        let (_, survivor, _) = h.ctrls[1].clone();
        *alive.borrow_mut() = false;
        h.sim.run_until(us(2_000));
        assert!(h.dir.borrow().is_declared_dead(dead));
        let epoch = h.dir.borrow().death_epoch(dead);
        // The "outage" was a partition: the Controller answers the next
        // recovery probe and the watchdog withdraws the verdict.
        *alive.borrow_mut() = true;
        h.sim.run_until(us(5_000));
        h.sim.with_actor::<WatchdogActor, _>(h.wd, |w| {
            assert_eq!(w.recovered, vec![dead]);
            let (_, at) = *w.recovered_at.first().expect("no recovery timestamp");
            assert!(at >= us(2_000));
        });
        assert!(!h.dir.borrow().is_declared_dead(dead));
        // The death epoch stays burned: capabilities minted before it
        // remain revoked even though the Controller is routable again.
        assert_eq!(h.dir.borrow().death_epoch(dead), epoch);
        h.sim.with_actor::<StubCtrl, _>(survivor, |s| {
            assert_eq!(s.peer_failed, vec![dead]);
            assert_eq!(s.peer_recovered, vec![dead]);
        });
    }

    #[test]
    fn crashed_node_never_recovers_through_the_dead_gate() {
        let mut h = harness();
        let (dead, _, alive) = h.ctrls[0].clone();
        *alive.borrow_mut() = false;
        h.sim.run_until(us(10_000));
        // A crash-stop Controller (dead-gate: never pongs) stays declared;
        // only a real answer — impossible here — withdraws the verdict.
        h.sim.with_actor::<WatchdogActor, _>(h.wd, |w| {
            assert_eq!(w.detected, vec![dead]);
            assert!(w.recovered.is_empty());
        });
        assert!(h.dir.borrow().is_declared_dead(dead));
    }
}
