//! The external failure-detection service (§3.6).
//!
//! The paper delegates node/Controller failure detection to "an external
//! monitoring service such as Zookeeper". This actor implements that role
//! inside the simulation: it pings every Controller on a fixed period over
//! the fabric, and after `missed_limit` consecutive unanswered pings it
//! declares the Controller failed and notifies all surviving peers, which
//! then run the §3.6 failure translation (fail the dead Controller's
//! Processes, fail pending operations, treat its capabilities as revoked).

use std::collections::BTreeMap;

use fractos_cap::ControllerAddr;
use fractos_net::{Endpoint, Fabric, SendOutcome, TrafficClass};
use fractos_sim::{Actor, ActorId, Ctx, Msg, Shared, SimDuration};

use crate::directory::Directory;
use crate::messages::CtrlMsg;

/// Default ping period.
pub const PING_PERIOD: SimDuration = SimDuration::from_micros(200);

/// Consecutive missed pings before a Controller is declared dead.
pub const MISSED_LIMIT: u32 = 3;

/// Messages handled by the watchdog.
#[derive(Debug)]
pub enum WatchdogMsg {
    /// Periodic self-timer.
    Tick,
    /// A Controller answered ping `seq`.
    Pong {
        /// The answering Controller.
        from: ControllerAddr,
        /// The ping sequence number.
        seq: u64,
    },
}

/// The watchdog actor.
pub struct WatchdogActor {
    endpoint: Endpoint,
    dir: Shared<Directory>,
    fabric: Shared<Fabric>,
    period: SimDuration,
    missed_limit: u32,
    seq: u64,
    /// Outstanding ping sequence per Controller.
    outstanding: BTreeMap<ControllerAddr, u64>,
    misses: BTreeMap<ControllerAddr, u32>,
    declared_dead: BTreeMap<ControllerAddr, bool>,
    /// Failures detected so far (tests).
    pub detected: Vec<ControllerAddr>,
    /// Declared-dead Controllers later observed answering again (healed
    /// partitions, §3.6 false positives) (tests).
    pub recovered: Vec<ControllerAddr>,
}

impl WatchdogActor {
    /// Creates a watchdog at `endpoint` with default timing.
    pub fn new(endpoint: Endpoint, dir: Shared<Directory>, fabric: Shared<Fabric>) -> Self {
        WatchdogActor {
            endpoint,
            dir,
            fabric,
            period: PING_PERIOD,
            missed_limit: MISSED_LIMIT,
            seq: 0,
            outstanding: BTreeMap::new(),
            misses: BTreeMap::new(),
            declared_dead: BTreeMap::new(),
            detected: Vec::new(),
            recovered: Vec::new(),
        }
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let ctrls: Vec<(ControllerAddr, ActorId, Endpoint)> = {
            let dir = self.dir.borrow();
            dir.all_ctrls()
                .into_iter()
                .filter_map(|a| dir.ctrl(a).map(|e| (a, e.actor, e.endpoint)))
                .collect()
        };
        self.seq += 1;
        let me = ctx.self_id();
        for (addr, actor, ep) in ctrls {
            let dead = self.declared_dead.get(&addr).copied().unwrap_or(false);
            // Unanswered previous ping counts as a miss (not while declared
            // dead — then we only probe for recovery).
            if !dead && self.outstanding.contains_key(&addr) {
                let m = self.misses.entry(addr).or_insert(0);
                *m += 1;
                if *m >= self.missed_limit {
                    self.declare_dead(ctx, addr);
                    continue;
                }
            }
            if !dead {
                self.outstanding.insert(addr, self.seq);
            }
            // Pings ride the droppable control plane: a partitioned (or
            // crashed) Controller misses them, which IS the detection
            // signal. Declared-dead Controllers keep being probed so a
            // healed partition is noticed.
            let outcome = self.fabric.borrow_mut().try_send(
                ctx.now(),
                ctx.rng(),
                self.endpoint,
                ep,
                16,
                TrafficClass::Control,
            );
            if let SendOutcome::Delivered(delay) = outcome {
                ctx.send_after(
                    delay,
                    actor,
                    CtrlMsg::Ping {
                        watchdog: me,
                        watchdog_ep: self.endpoint,
                        seq: self.seq,
                    },
                );
            }
        }
        ctx.schedule_self(self.period, WatchdogMsg::Tick);
    }

    fn declare_dead(&mut self, ctx: &mut Ctx<'_>, dead: ControllerAddr) {
        self.declared_dead.insert(dead, true);
        self.outstanding.remove(&dead);
        self.misses.remove(&dead);
        self.detected.push(dead);
        self.broadcast(ctx, dead, true);
    }

    fn declare_recovered(&mut self, ctx: &mut Ctx<'_>, peer: ControllerAddr) {
        self.declared_dead.insert(peer, false);
        self.outstanding.remove(&peer);
        self.misses.insert(peer, 0);
        self.recovered.push(peer);
        self.broadcast(ctx, peer, false);
    }

    /// Notifies every other Controller of a verdict about `subject`.
    /// Verdict broadcasts model an out-of-band management network (the
    /// external Zookeeper-like service), so they are not droppable.
    fn broadcast(&mut self, ctx: &mut Ctx<'_>, subject: ControllerAddr, failed: bool) {
        let peers: Vec<(ActorId, Endpoint)> = {
            let dir = self.dir.borrow();
            dir.all_ctrls()
                .into_iter()
                .filter(|&a| a != subject)
                .filter_map(|a| dir.ctrl(a).map(|e| (e.actor, e.endpoint)))
                .collect()
        };
        for (actor, ep) in peers {
            let delay = self.fabric.borrow_mut().send(
                ctx.now(),
                ctx.rng(),
                self.endpoint,
                ep,
                24,
                TrafficClass::Control,
            );
            let msg = if failed {
                CtrlMsg::PeerFailed { peer: subject }
            } else {
                CtrlMsg::PeerRecovered { peer: subject }
            };
            ctx.send_after(delay, actor, msg);
        }
    }
}

impl Actor for WatchdogActor {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        // A message of any other type is a harness wiring bug; dropping it
        // is safer than unwinding mid-event.
        let Ok(msg) = msg.downcast::<WatchdogMsg>() else {
            return;
        };
        let msg = *msg;
        match msg {
            WatchdogMsg::Tick => self.tick(ctx),
            WatchdogMsg::Pong { from, seq } => {
                if self.declared_dead.get(&from).copied().unwrap_or(false) {
                    // A declared-dead Controller answered a recovery probe:
                    // the outage was a partition that healed, not a crash
                    // (a crashed Controller's dead-gate never pongs).
                    self.declare_recovered(ctx, from);
                } else if self.outstanding.get(&from) == Some(&seq) {
                    self.outstanding.remove(&from);
                    self.misses.insert(from, 0);
                }
            }
        }
    }
}
