//! Hand-rolled wire codec.
//!
//! FractOS Controllers exchange serialized syscalls, Requests and
//! capabilities over RoCE queue pairs. The codec here is a compact
//! little-endian format with two jobs: (1) provide faithful *sizes* so the
//! fabric's traffic accounting and serialization delays reflect what a real
//! deployment would put on the wire, and (2) prove by round-trip tests that
//! the protocol is actually serializable (no in-memory-only shortcuts).

use fractos_cap::{CapRef, Cid, ControllerAddr, Epoch, ObjectId, Perms};
use fractos_net::{Endpoint, Location, NodeId};

use crate::types::{
    Arg, CapArg, FosError, IncomingRequest, MemoryDesc, RequestDesc, Syscall, SyscallResult,
};

pub mod codes;

/// Buffer-writing half of the codec.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("blob too large"));
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Buffer-reading half of the codec.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Errors raised while decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An enum discriminant had no known meaning.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Trailing bytes remained after the top-level value.
    TrailingBytes,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated message"),
            DecodeError::BadTag(t) => write!(f, "unknown discriminant {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Whether all bytes have been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.bytes()?).map_err(|_| DecodeError::BadUtf8)
    }
}

/// Types that can be written to and read from the wire.
pub trait Wire: Sized {
    /// Serializes `self` into the encoder.
    fn encode(&self, e: &mut Encoder);
    /// Deserializes a value.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Serialized size in bytes.
    fn wire_size(&self) -> u64 {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.len() as u64
    }

    /// Serializes to a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.finish()
    }

    /// Deserializes from a complete buffer, rejecting trailing bytes.
    fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(buf);
        let v = Self::decode(&mut d)?;
        if d.is_done() {
            Ok(v)
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

impl Wire for CapRef {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.ctrl.0);
        e.u64(self.epoch.0);
        e.u64(self.object.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(CapRef {
            ctrl: ControllerAddr(d.u32()?),
            epoch: Epoch(d.u64()?),
            object: ObjectId(d.u64()?),
        })
    }
}

/// Trace-context header extension: 16 bytes, two little-endian `u64`s
/// (trace id, parent span id).
///
/// Carried *out of band* next to the message header — analogous to an RDMA
/// immediate or an optional header TLV — so it is deliberately excluded
/// from every `wire_size` used for traffic accounting: per-link byte
/// counters are identical whether or not span recording is enabled. The
/// codec exists to pin the format (and prove serializability) for a real
/// deployment.
impl Wire for fractos_sim::TraceCtx {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.trace);
        e.u64(self.span);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(fractos_sim::TraceCtx {
            trace: d.u64()?,
            span: d.u64()?,
        })
    }
}

impl Wire for Endpoint {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.node.0);
        match self.loc {
            Location::HostCpu => e.u8(codes::LOC_HOST_CPU),
            Location::SmartNic => e.u8(codes::LOC_SMART_NIC),
            Location::Gpu(n) => {
                e.u8(codes::LOC_GPU);
                e.u8(n);
            }
            Location::Nvme(n) => {
                e.u8(codes::LOC_NVME);
                e.u8(n);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let node = NodeId(d.u32()?);
        let loc = match d.u8()? {
            codes::LOC_HOST_CPU => Location::HostCpu,
            codes::LOC_SMART_NIC => Location::SmartNic,
            codes::LOC_GPU => Location::Gpu(d.u8()?),
            codes::LOC_NVME => Location::Nvme(d.u8()?),
            t => return Err(DecodeError::BadTag(t)),
        };
        Ok(Endpoint { node, loc })
    }
}

impl Wire for MemoryDesc {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.proc.0);
        self.location.encode(e);
        e.u64(self.addr);
        e.u64(self.view_off);
        e.u64(self.size);
        e.u8(self.perms.bits());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(MemoryDesc {
            proc: crate::types::ProcId(d.u32()?),
            location: Endpoint::decode(d)?,
            addr: d.u64()?,
            view_off: d.u64()?,
            size: d.u64()?,
            perms: Perms::from_bits(d.u8()?),
        })
    }
}

impl Wire for CapArg {
    fn encode(&self, e: &mut Encoder) {
        self.cap.encode(e);
        match &self.mem {
            None => e.u8(codes::OPT_NONE),
            Some(m) => {
                e.u8(codes::OPT_SOME);
                m.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let cap = CapRef::decode(d)?;
        let mem = match d.u8()? {
            codes::OPT_NONE => None,
            codes::OPT_SOME => Some(MemoryDesc::decode(d)?),
            t => return Err(DecodeError::BadTag(t)),
        };
        Ok(CapArg { cap, mem })
    }
}

impl Wire for Arg {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Arg::Imm(b) => {
                e.u8(codes::ARG_IMM);
                e.bytes(b);
            }
            Arg::Cap(c) => {
                e.u8(codes::ARG_CAP);
                c.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            codes::ARG_IMM => Ok(Arg::Imm(d.bytes()?.into())),
            codes::ARG_CAP => Ok(Arg::Cap(CapArg::decode(d)?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl Wire for RequestDesc {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.provider.0);
        e.u64(self.tag);
        e.u32(self.args.len() as u32);
        for a in &self.args {
            a.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let provider = crate::types::ProcId(d.u32()?);
        let tag = d.u64()?;
        let n = d.u32()? as usize;
        let mut args = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            args.push(Arg::decode(d)?);
        }
        Ok(RequestDesc {
            provider,
            tag,
            args,
        })
    }
}

impl Wire for Perms {
    fn encode(&self, e: &mut Encoder) {
        e.u8(self.bits());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Perms::from_bits(d.u8()?))
    }
}

impl Wire for Cid {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Cid(d.u32()?))
    }
}

impl Wire for Syscall {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Syscall::Null => e.u8(codes::SC_NULL),
            Syscall::MemoryCreate { addr, size, perms } => {
                e.u8(codes::SC_MEMORY_CREATE);
                e.u64(*addr);
                e.u64(*size);
                perms.encode(e);
            }
            Syscall::MemoryDiminish {
                cid,
                offset,
                size,
                drop_perms,
            } => {
                e.u8(codes::SC_MEMORY_DIMINISH);
                cid.encode(e);
                e.u64(*offset);
                e.u64(*size);
                drop_perms.encode(e);
            }
            Syscall::MemoryCopy { src, dst } => {
                e.u8(codes::SC_MEMORY_COPY);
                src.encode(e);
                dst.encode(e);
            }
            Syscall::RequestCreate {
                base,
                tag,
                imms,
                caps,
            } => {
                e.u8(codes::SC_REQUEST_CREATE);
                match base {
                    None => e.u8(codes::OPT_NONE),
                    Some(b) => {
                        e.u8(codes::OPT_SOME);
                        b.encode(e);
                    }
                }
                e.u64(*tag);
                e.u32(imms.len() as u32);
                for imm in imms {
                    e.bytes(imm);
                }
                e.u32(caps.len() as u32);
                for c in caps {
                    c.encode(e);
                }
            }
            Syscall::RequestInvoke { cid } => {
                e.u8(codes::SC_REQUEST_INVOKE);
                cid.encode(e);
            }
            Syscall::CapCreateRevtree { cid } => {
                e.u8(codes::SC_CAP_CREATE_REVTREE);
                cid.encode(e);
            }
            Syscall::CapRevoke { cid } => {
                e.u8(codes::SC_CAP_REVOKE);
                cid.encode(e);
            }
            Syscall::MonitorDelegate { cid, callback_id } => {
                e.u8(codes::SC_MONITOR_DELEGATE);
                cid.encode(e);
                e.u64(*callback_id);
            }
            Syscall::MonitorReceive { cid, callback_id } => {
                e.u8(codes::SC_MONITOR_RECEIVE);
                cid.encode(e);
                e.u64(*callback_id);
            }
            Syscall::KvPut { key, cid } => {
                e.u8(codes::SC_KV_PUT);
                e.str(key);
                cid.encode(e);
            }
            Syscall::KvGet { key } => {
                e.u8(codes::SC_KV_GET);
                e.str(key);
            }
            Syscall::MemoryStat { cid } => {
                e.u8(codes::SC_MEMORY_STAT);
                cid.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            codes::SC_NULL => Syscall::Null,
            codes::SC_MEMORY_CREATE => Syscall::MemoryCreate {
                addr: d.u64()?,
                size: d.u64()?,
                perms: Perms::decode(d)?,
            },
            codes::SC_MEMORY_DIMINISH => Syscall::MemoryDiminish {
                cid: Cid::decode(d)?,
                offset: d.u64()?,
                size: d.u64()?,
                drop_perms: Perms::decode(d)?,
            },
            codes::SC_MEMORY_COPY => Syscall::MemoryCopy {
                src: Cid::decode(d)?,
                dst: Cid::decode(d)?,
            },
            codes::SC_REQUEST_CREATE => {
                let base = match d.u8()? {
                    codes::OPT_NONE => None,
                    codes::OPT_SOME => Some(Cid::decode(d)?),
                    t => return Err(DecodeError::BadTag(t)),
                };
                let tag = d.u64()?;
                let n = d.u32()? as usize;
                let mut imms = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    imms.push(d.bytes()?.into());
                }
                let m = d.u32()? as usize;
                let mut caps = Vec::with_capacity(m.min(1024));
                for _ in 0..m {
                    caps.push(Cid::decode(d)?);
                }
                Syscall::RequestCreate {
                    base,
                    tag,
                    imms,
                    caps,
                }
            }
            codes::SC_REQUEST_INVOKE => Syscall::RequestInvoke {
                cid: Cid::decode(d)?,
            },
            codes::SC_CAP_CREATE_REVTREE => Syscall::CapCreateRevtree {
                cid: Cid::decode(d)?,
            },
            codes::SC_CAP_REVOKE => Syscall::CapRevoke {
                cid: Cid::decode(d)?,
            },
            codes::SC_MONITOR_DELEGATE => Syscall::MonitorDelegate {
                cid: Cid::decode(d)?,
                callback_id: d.u64()?,
            },
            codes::SC_MONITOR_RECEIVE => Syscall::MonitorReceive {
                cid: Cid::decode(d)?,
                callback_id: d.u64()?,
            },
            codes::SC_KV_PUT => Syscall::KvPut {
                key: d.str()?,
                cid: Cid::decode(d)?,
            },
            codes::SC_KV_GET => Syscall::KvGet { key: d.str()? },
            codes::SC_MEMORY_STAT => Syscall::MemoryStat {
                cid: Cid::decode(d)?,
            },
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

impl Wire for FosError {
    fn encode(&self, e: &mut Encoder) {
        // Errors serialize to a compact code; capability sub-errors keep
        // enough detail for the caller to react.
        let code: u8 = match self {
            FosError::Cap(_) => codes::FOS_CAP,
            FosError::WrongObjectKind => codes::FOS_WRONG_OBJECT_KIND,
            FosError::OutOfBounds => codes::FOS_OUT_OF_BOUNDS,
            FosError::PermissionDenied => codes::FOS_PERMISSION_DENIED,
            FosError::SizeMismatch => codes::FOS_SIZE_MISMATCH,
            FosError::NoSuchKey => codes::FOS_NO_SUCH_KEY,
            FosError::ControllerUnreachable => codes::FOS_CONTROLLER_UNREACHABLE,
            FosError::ProcessFailed => codes::FOS_PROCESS_FAILED,
            FosError::Topology(_) => codes::FOS_TOPOLOGY,
            FosError::WindowInvalid => codes::FOS_WINDOW_INVALID,
            FosError::IntegrityViolation => codes::FOS_INTEGRITY_VIOLATION,
            FosError::Verify(_) => codes::FOS_VERIFY,
        };
        e.u8(code);
        if let FosError::Cap(c) = self {
            use fractos_cap::CapError;
            let (sub, obj): (u8, u64) = match c {
                CapError::NoSuchObject(o) => (codes::CAPE_NO_SUCH_OBJECT, o.0),
                CapError::Revoked(o) => (codes::CAPE_REVOKED, o.0),
                CapError::StaleEpoch(o) => (codes::CAPE_STALE_EPOCH, o.0),
                CapError::BadCid(c) => (codes::CAPE_BAD_CID, c.0 as u64),
                CapError::SpaceExhausted => (codes::CAPE_SPACE_EXHAUSTED, 0),
                CapError::PermissionDenied => (codes::CAPE_PERMISSION_DENIED, 0),
                CapError::HasChildren(o) => (codes::CAPE_HAS_CHILDREN, o.0),
                CapError::AlreadyMonitored(o) => (codes::CAPE_ALREADY_MONITORED, o.0),
            };
            e.u8(sub);
            e.u64(obj);
        }
        if let FosError::Verify(v) = self {
            use crate::verify::VerifyErrorKind as K;
            let (kind, perms): (u8, u8) = match v.kind {
                K::DanglingCap => (codes::VK_DANGLING_CAP, 0),
                K::RevokedCap => (codes::VK_REVOKED_CAP, 0),
                K::StaleEpoch => (codes::VK_STALE_EPOCH, 0),
                K::CyclicContinuation => (codes::VK_CYCLIC_CONTINUATION, 0),
                K::PrivilegeEscalation => (codes::VK_PRIVILEGE_ESCALATION, 0),
                K::RefinementViolation => (codes::VK_REFINEMENT_VIOLATION, 0),
                K::MissingPerm(p) => (codes::VK_MISSING_PERM, p.bits()),
                K::WrongObjectKind => (codes::VK_WRONG_OBJECT_KIND, 0),
            };
            e.u8(kind);
            e.u8(perms);
            e.u32(v.path.0.len() as u32);
            for step in &v.path.0 {
                e.u64(step.object.0);
                match step.arg {
                    Some(a) => {
                        e.u8(codes::OPT_SOME);
                        e.u32(a);
                    }
                    None => e.u8(codes::OPT_NONE),
                }
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        use fractos_cap::CapError;
        Ok(match d.u8()? {
            codes::FOS_CAP => {
                let sub = d.u8()?;
                let obj = d.u64()?;
                let id = ObjectId(obj);
                FosError::Cap(match sub {
                    codes::CAPE_NO_SUCH_OBJECT => CapError::NoSuchObject(id),
                    codes::CAPE_REVOKED => CapError::Revoked(id),
                    codes::CAPE_STALE_EPOCH => CapError::StaleEpoch(id),
                    codes::CAPE_BAD_CID => CapError::BadCid(Cid(obj as u32)),
                    codes::CAPE_SPACE_EXHAUSTED => CapError::SpaceExhausted,
                    codes::CAPE_PERMISSION_DENIED => CapError::PermissionDenied,
                    codes::CAPE_HAS_CHILDREN => CapError::HasChildren(id),
                    codes::CAPE_ALREADY_MONITORED => CapError::AlreadyMonitored(id),
                    t => return Err(DecodeError::BadTag(t)),
                })
            }
            codes::FOS_WRONG_OBJECT_KIND => FosError::WrongObjectKind,
            codes::FOS_OUT_OF_BOUNDS => FosError::OutOfBounds,
            codes::FOS_PERMISSION_DENIED => FosError::PermissionDenied,
            codes::FOS_SIZE_MISMATCH => FosError::SizeMismatch,
            codes::FOS_NO_SUCH_KEY => FosError::NoSuchKey,
            codes::FOS_CONTROLLER_UNREACHABLE => FosError::ControllerUnreachable,
            codes::FOS_PROCESS_FAILED => FosError::ProcessFailed,
            codes::FOS_TOPOLOGY => {
                FosError::Topology(fractos_net::TopologyError::UnknownNode(NodeId(0)))
            }
            codes::FOS_WINDOW_INVALID => FosError::WindowInvalid,
            codes::FOS_INTEGRITY_VIOLATION => FosError::IntegrityViolation,
            codes::FOS_VERIFY => {
                use crate::verify::{PlanPath, PlanStep, VerifyError, VerifyErrorKind as K};
                let kind = d.u8()?;
                let perms = d.u8()?;
                let kind = match kind {
                    codes::VK_DANGLING_CAP => K::DanglingCap,
                    codes::VK_REVOKED_CAP => K::RevokedCap,
                    codes::VK_STALE_EPOCH => K::StaleEpoch,
                    codes::VK_CYCLIC_CONTINUATION => K::CyclicContinuation,
                    codes::VK_PRIVILEGE_ESCALATION => K::PrivilegeEscalation,
                    codes::VK_REFINEMENT_VIOLATION => K::RefinementViolation,
                    codes::VK_MISSING_PERM => K::MissingPerm(fractos_cap::Perms::from_bits(perms)),
                    codes::VK_WRONG_OBJECT_KIND => K::WrongObjectKind,
                    t => return Err(DecodeError::BadTag(t)),
                };
                let n = d.u32()?;
                let mut steps = Vec::with_capacity(n.min(1024) as usize);
                for _ in 0..n {
                    let object = ObjectId(d.u64()?);
                    let arg = match d.u8()? {
                        codes::OPT_NONE => None,
                        codes::OPT_SOME => Some(d.u32()?),
                        t => return Err(DecodeError::BadTag(t)),
                    };
                    steps.push(PlanStep { object, arg });
                }
                FosError::Verify(VerifyError {
                    kind,
                    path: PlanPath(steps),
                })
            }
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

impl Wire for SyscallResult {
    fn encode(&self, e: &mut Encoder) {
        match self {
            SyscallResult::Ok => e.u8(codes::RES_OK),
            SyscallResult::NewCid(cid) => {
                e.u8(codes::RES_NEW_CID);
                cid.encode(e);
            }
            SyscallResult::Value(v) => {
                e.u8(codes::RES_VALUE);
                e.u64(*v);
            }
            SyscallResult::Stat { addr, off, size } => {
                e.u8(codes::RES_STAT);
                e.u64(*addr);
                e.u64(*off);
                e.u64(*size);
            }
            SyscallResult::Err(err) => {
                e.u8(codes::RES_ERR);
                err.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            codes::RES_OK => SyscallResult::Ok,
            codes::RES_NEW_CID => SyscallResult::NewCid(Cid::decode(d)?),
            codes::RES_ERR => SyscallResult::Err(FosError::decode(d)?),
            codes::RES_VALUE => SyscallResult::Value(d.u64()?),
            codes::RES_STAT => SyscallResult::Stat {
                addr: d.u64()?,
                off: d.u64()?,
                size: d.u64()?,
            },
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

impl Wire for IncomingRequest {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.tag);
        e.u32(self.imms.len() as u32);
        for imm in &self.imms {
            e.bytes(imm);
        }
        e.u32(self.caps.len() as u32);
        for c in &self.caps {
            c.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let tag = d.u64()?;
        let n = d.u32()? as usize;
        let mut imms = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            imms.push(d.bytes()?.into());
        }
        let m = d.u32()? as usize;
        let mut caps = Vec::with_capacity(m.min(1024));
        for _ in 0..m {
            caps.push(Cid::decode(d)?);
        }
        Ok(IncomingRequest { tag, imms, caps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ProcId;

    fn roundtrip<T: Wire + PartialEq + core::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
        assert_eq!(v.wire_size(), bytes.len() as u64);
    }

    #[test]
    fn caprefs_roundtrip() {
        roundtrip(CapRef {
            ctrl: ControllerAddr(3),
            epoch: Epoch(17),
            object: ObjectId(u64::MAX),
        });
    }

    #[test]
    fn trace_ctx_roundtrips_at_fixed_size() {
        roundtrip(fractos_sim::TraceCtx::NONE);
        let ctx = fractos_sim::TraceCtx {
            trace: 0xDEAD_BEEF_0BAD_F00D,
            span: u64::MAX,
        };
        roundtrip(ctx);
        assert_eq!(ctx.wire_size(), 16);
    }

    #[test]
    fn endpoints_roundtrip() {
        for ep in [
            Endpoint::cpu(NodeId(0)),
            Endpoint::snic(NodeId(1)),
            Endpoint::new(NodeId(2), Location::Gpu(3)),
            Endpoint::new(NodeId(2), Location::Nvme(1)),
        ] {
            roundtrip(ep);
        }
    }

    #[test]
    fn syscalls_roundtrip() {
        let all = vec![
            Syscall::Null,
            Syscall::MemoryCreate {
                addr: 0x1000,
                size: 4096,
                perms: Perms::RW,
            },
            Syscall::MemoryDiminish {
                cid: Cid(4),
                offset: 8,
                size: 16,
                drop_perms: Perms::WRITE,
            },
            Syscall::MemoryCopy {
                src: Cid(1),
                dst: Cid(2),
            },
            Syscall::RequestCreate {
                base: Some(Cid(9)),
                tag: 77,
                imms: vec![vec![1, 2, 3].into(), fractos_net::Payload::empty()],
                caps: vec![Cid(1), Cid(5)],
            },
            Syscall::RequestInvoke { cid: Cid(0) },
            Syscall::CapCreateRevtree { cid: Cid(2) },
            Syscall::CapRevoke { cid: Cid(3) },
            Syscall::MonitorDelegate {
                cid: Cid(1),
                callback_id: 123,
            },
            Syscall::MonitorReceive {
                cid: Cid(1),
                callback_id: 456,
            },
            Syscall::KvPut {
                key: "gpu.init".into(),
                cid: Cid(7),
            },
            Syscall::KvGet {
                key: "fs.open".into(),
            },
        ];
        for sc in all {
            roundtrip(sc);
        }
    }

    #[test]
    fn results_roundtrip() {
        roundtrip(SyscallResult::Ok);
        roundtrip(SyscallResult::NewCid(Cid(12)));
        roundtrip(SyscallResult::Err(FosError::NoSuchKey));
        roundtrip(SyscallResult::Err(FosError::Cap(
            fractos_cap::CapError::Revoked(ObjectId(4)),
        )));
    }

    #[test]
    fn request_desc_roundtrips_with_mixed_args() {
        roundtrip(RequestDesc {
            provider: ProcId(2),
            tag: 5,
            args: vec![
                Arg::Imm(vec![0xca, 0xfe].into()),
                Arg::Cap(CapArg {
                    cap: CapRef {
                        ctrl: ControllerAddr(1),
                        epoch: Epoch(0),
                        object: ObjectId(8),
                    },
                    mem: Some(MemoryDesc {
                        proc: ProcId(3),
                        location: Endpoint::gpu(NodeId(1)),
                        addr: 64,
                        view_off: 32,
                        size: 128,
                        perms: Perms::READ,
                    }),
                }),
            ],
        });
    }

    #[test]
    fn incoming_request_roundtrips() {
        roundtrip(IncomingRequest {
            tag: 9,
            imms: vec![vec![1].into(), vec![2, 3].into()],
            caps: vec![Cid(0), Cid(4)],
        });
    }

    #[test]
    fn truncated_buffers_error() {
        let bytes = Syscall::KvGet { key: "abc".into() }.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Syscall::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = SyscallResult::Ok.to_bytes();
        bytes.push(0);
        assert_eq!(
            SyscallResult::from_bytes(&bytes),
            Err(DecodeError::TrailingBytes)
        );
    }

    #[test]
    fn bad_tags_rejected() {
        assert_eq!(Syscall::from_bytes(&[200]), Err(DecodeError::BadTag(200)));
    }
}
