//! Wire codec for the Controller ↔ Controller protocol.
//!
//! Everything Controllers exchange is serializable with the same
//! little-endian format as the syscall surface — the round-trip property
//! tests prove there are no in-memory-only shortcuts in the peer protocol
//! either. [`PeerOp::wire_size`](crate::messages::PeerOp) delegates to
//! these encodings, so traffic accounting uses real sizes.

use fractos_cap::{CapRef, ControllerAddr, Perms};

use crate::messages::{DeriveOp, MonitorKind, PeerOp};
use crate::types::{CapArg, FosError, MonitorCb, ProcId};
use crate::wire::{codes, DecodeError, Decoder, Encoder, Wire};

impl Wire for MonitorKind {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            MonitorKind::Delegate => codes::MON_DELEGATE,
            MonitorKind::Receive => codes::MON_RECEIVE,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            codes::MON_DELEGATE => Ok(MonitorKind::Delegate),
            codes::MON_RECEIVE => Ok(MonitorKind::Receive),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl Wire for MonitorCb {
    fn encode(&self, e: &mut Encoder) {
        match self {
            MonitorCb::DelegateDrained { callback_id } => {
                e.u8(codes::MCB_DELEGATE_DRAINED);
                e.u64(*callback_id);
            }
            MonitorCb::Receive { callback_id } => {
                e.u8(codes::MCB_RECEIVE);
                e.u64(*callback_id);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let tag = d.u8()?;
        let callback_id = d.u64()?;
        match tag {
            codes::MCB_DELEGATE_DRAINED => Ok(MonitorCb::DelegateDrained { callback_id }),
            codes::MCB_RECEIVE => Ok(MonitorCb::Receive { callback_id }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl Wire for DeriveOp {
    fn encode(&self, e: &mut Encoder) {
        match self {
            DeriveOp::Diminish {
                offset,
                size,
                drop_perms,
            } => {
                e.u8(codes::DRV_DIMINISH);
                e.u64(*offset);
                e.u64(*size);
                drop_perms.encode(e);
            }
            DeriveOp::Refine { imms, caps } => {
                e.u8(codes::DRV_REFINE);
                e.u32(imms.len() as u32);
                for imm in imms {
                    e.bytes(imm);
                }
                e.u32(caps.len() as u32);
                for c in caps {
                    c.encode(e);
                }
            }
            DeriveOp::Revtree => e.u8(codes::DRV_REVTREE),
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            codes::DRV_DIMINISH => DeriveOp::Diminish {
                offset: d.u64()?,
                size: d.u64()?,
                drop_perms: Perms::decode(d)?,
            },
            codes::DRV_REFINE => {
                let n = d.u32()? as usize;
                let mut imms = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    imms.push(d.bytes()?.into());
                }
                let m = d.u32()? as usize;
                let mut caps = Vec::with_capacity(m.min(1024));
                for _ in 0..m {
                    caps.push(CapArg::decode(d)?);
                }
                DeriveOp::Refine { imms, caps }
            }
            codes::DRV_REVTREE => DeriveOp::Revtree,
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

fn encode_result_cap(e: &mut Encoder, r: &Result<CapArg, FosError>) {
    match r {
        Ok(c) => {
            e.u8(codes::RESULT_OK);
            c.encode(e);
        }
        Err(err) => {
            e.u8(codes::RESULT_ERR);
            err.encode(e);
        }
    }
}

fn decode_result_cap(d: &mut Decoder<'_>) -> Result<Result<CapArg, FosError>, DecodeError> {
    match d.u8()? {
        codes::RESULT_OK => Ok(Ok(CapArg::decode(d)?)),
        codes::RESULT_ERR => Ok(Err(FosError::decode(d)?)),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn encode_result_unit(e: &mut Encoder, r: &Result<(), FosError>) {
    match r {
        Ok(()) => e.u8(codes::RESULT_OK),
        Err(err) => {
            e.u8(codes::RESULT_ERR);
            err.encode(e);
        }
    }
}

fn decode_result_unit(d: &mut Decoder<'_>) -> Result<Result<(), FosError>, DecodeError> {
    match d.u8()? {
        codes::RESULT_OK => Ok(Ok(())),
        codes::RESULT_ERR => Ok(Err(FosError::decode(d)?)),
        t => Err(DecodeError::BadTag(t)),
    }
}

impl Wire for PeerOp {
    fn encode(&self, e: &mut Encoder) {
        match self {
            PeerOp::Invoke {
                req,
                reply_to,
                token,
            } => {
                e.u8(codes::PEER_INVOKE);
                req.encode(e);
                e.u32(reply_to.0);
                e.u64(*token);
            }
            PeerOp::InvokeAck { token, result } => {
                e.u8(codes::PEER_INVOKE_ACK);
                e.u64(*token);
                encode_result_unit(e, result);
            }
            PeerOp::Derive {
                obj,
                op,
                creator,
                reply_to,
                token,
            } => {
                e.u8(codes::PEER_DERIVE);
                obj.encode(e);
                op.encode(e);
                e.u32(creator.0);
                e.u32(reply_to.0);
                e.u64(*token);
            }
            PeerOp::DeriveAck { token, result } => {
                e.u8(codes::PEER_DERIVE_ACK);
                e.u64(*token);
                encode_result_cap(e, result);
            }
            PeerOp::Delegate {
                obj,
                to,
                reply_to,
                token,
            } => {
                e.u8(codes::PEER_DELEGATE);
                obj.encode(e);
                e.u32(to.0);
                e.u32(reply_to.0);
                e.u64(*token);
            }
            PeerOp::DelegateAck { token, result } => {
                e.u8(codes::PEER_DELEGATE_ACK);
                e.u64(*token);
                encode_result_cap(e, result);
            }
            PeerOp::Revoke {
                obj,
                reply_to,
                token,
            } => {
                e.u8(codes::PEER_REVOKE);
                obj.encode(e);
                e.u32(reply_to.0);
                e.u64(*token);
            }
            PeerOp::RevokeAck { token, result } => {
                e.u8(codes::PEER_REVOKE_ACK);
                e.u64(*token);
                match result {
                    Ok(n) => {
                        e.u8(codes::PEER_INVOKE);
                        e.u64(*n);
                    }
                    Err(err) => {
                        e.u8(codes::PEER_INVOKE_ACK);
                        err.encode(e);
                    }
                }
            }
            PeerOp::Monitor {
                obj,
                kind,
                watcher,
                callback_id,
                reply_to,
                token,
            } => {
                e.u8(codes::PEER_MONITOR);
                obj.encode(e);
                kind.encode(e);
                e.u32(watcher.0);
                e.u64(*callback_id);
                e.u32(reply_to.0);
                e.u64(*token);
            }
            PeerOp::MonitorAck { token, result } => {
                e.u8(codes::PEER_MONITOR_ACK);
                e.u64(*token);
                encode_result_unit(e, result);
            }
            PeerOp::MonitorEvent { proc, cb } => {
                e.u8(codes::PEER_MONITOR_EVENT);
                e.u32(proc.0);
                cb.encode(e);
            }
            PeerOp::Cleanup { objs } => {
                e.u8(codes::PEER_CLEANUP);
                e.u32(objs.len() as u32);
                for o in objs {
                    o.encode(e);
                }
            }
            PeerOp::FailProcess { proc } => {
                e.u8(codes::PEER_FAIL_PROCESS);
                e.u32(proc.0);
            }
            PeerOp::KvPut {
                key,
                cap,
                reply_to,
                token,
            } => {
                e.u8(codes::PEER_KV_PUT);
                e.str(key);
                cap.encode(e);
                e.u32(reply_to.0);
                e.u64(*token);
            }
            PeerOp::KvPutAck { token, result } => {
                e.u8(codes::PEER_KV_PUT_ACK);
                e.u64(*token);
                encode_result_unit(e, result);
            }
            PeerOp::KvGet {
                key,
                to,
                reply_to,
                token,
            } => {
                e.u8(codes::PEER_KV_GET);
                e.str(key);
                e.u32(to.0);
                e.u32(reply_to.0);
                e.u64(*token);
            }
            PeerOp::KvGetAck { token, result } => {
                e.u8(codes::PEER_KV_GET_ACK);
                e.u64(*token);
                encode_result_cap(e, result);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            codes::PEER_INVOKE => PeerOp::Invoke {
                req: CapRef::decode(d)?,
                reply_to: ControllerAddr(d.u32()?),
                token: d.u64()?,
            },
            codes::PEER_INVOKE_ACK => PeerOp::InvokeAck {
                token: d.u64()?,
                result: decode_result_unit(d)?,
            },
            codes::PEER_DERIVE => PeerOp::Derive {
                obj: CapRef::decode(d)?,
                op: DeriveOp::decode(d)?,
                creator: ProcId(d.u32()?),
                reply_to: ControllerAddr(d.u32()?),
                token: d.u64()?,
            },
            codes::PEER_DERIVE_ACK => PeerOp::DeriveAck {
                token: d.u64()?,
                result: decode_result_cap(d)?,
            },
            codes::PEER_DELEGATE => PeerOp::Delegate {
                obj: CapRef::decode(d)?,
                to: ProcId(d.u32()?),
                reply_to: ControllerAddr(d.u32()?),
                token: d.u64()?,
            },
            codes::PEER_DELEGATE_ACK => PeerOp::DelegateAck {
                token: d.u64()?,
                result: decode_result_cap(d)?,
            },
            codes::PEER_REVOKE => PeerOp::Revoke {
                obj: CapRef::decode(d)?,
                reply_to: ControllerAddr(d.u32()?),
                token: d.u64()?,
            },
            codes::PEER_REVOKE_ACK => {
                let token = d.u64()?;
                let result = match d.u8()? {
                    codes::RESULT_OK => Ok(d.u64()?),
                    codes::RESULT_ERR => Err(FosError::decode(d)?),
                    t => return Err(DecodeError::BadTag(t)),
                };
                PeerOp::RevokeAck { token, result }
            }
            codes::PEER_MONITOR => PeerOp::Monitor {
                obj: CapRef::decode(d)?,
                kind: MonitorKind::decode(d)?,
                watcher: ProcId(d.u32()?),
                callback_id: d.u64()?,
                reply_to: ControllerAddr(d.u32()?),
                token: d.u64()?,
            },
            codes::PEER_MONITOR_ACK => PeerOp::MonitorAck {
                token: d.u64()?,
                result: decode_result_unit(d)?,
            },
            codes::PEER_MONITOR_EVENT => PeerOp::MonitorEvent {
                proc: ProcId(d.u32()?),
                cb: MonitorCb::decode(d)?,
            },
            codes::PEER_CLEANUP => {
                let n = d.u32()? as usize;
                let mut objs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    objs.push(CapRef::decode(d)?);
                }
                PeerOp::Cleanup { objs }
            }
            codes::PEER_FAIL_PROCESS => PeerOp::FailProcess {
                proc: ProcId(d.u32()?),
            },
            codes::PEER_KV_PUT => PeerOp::KvPut {
                key: d.str()?,
                cap: CapArg::decode(d)?,
                reply_to: ControllerAddr(d.u32()?),
                token: d.u64()?,
            },
            codes::PEER_KV_PUT_ACK => PeerOp::KvPutAck {
                token: d.u64()?,
                result: decode_result_unit(d)?,
            },
            codes::PEER_KV_GET => PeerOp::KvGet {
                key: d.str()?,
                to: ProcId(d.u32()?),
                reply_to: ControllerAddr(d.u32()?),
                token: d.u64()?,
            },
            codes::PEER_KV_GET_ACK => PeerOp::KvGetAck {
                token: d.u64()?,
                result: decode_result_cap(d)?,
            },
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractos_cap::{Epoch, ObjectId};

    fn cref(n: u64) -> CapRef {
        CapRef {
            ctrl: ControllerAddr(1),
            epoch: Epoch(2),
            object: ObjectId(n),
        }
    }

    #[test]
    fn peer_ops_roundtrip() {
        let ops = vec![
            PeerOp::Invoke {
                req: cref(1),
                reply_to: ControllerAddr(0),
                token: 9,
            },
            PeerOp::InvokeAck {
                token: 9,
                result: Err(FosError::ProcessFailed),
            },
            PeerOp::Derive {
                obj: cref(2),
                op: DeriveOp::Refine {
                    imms: vec![vec![1, 2, 3].into()],
                    caps: vec![CapArg {
                        cap: cref(3),
                        mem: None,
                    }],
                },
                creator: ProcId(4),
                reply_to: ControllerAddr(0),
                token: 10,
            },
            PeerOp::DeriveAck {
                token: 10,
                result: Ok(CapArg {
                    cap: cref(5),
                    mem: None,
                }),
            },
            PeerOp::Delegate {
                obj: cref(6),
                to: ProcId(7),
                reply_to: ControllerAddr(2),
                token: 11,
            },
            PeerOp::Revoke {
                obj: cref(8),
                reply_to: ControllerAddr(0),
                token: 12,
            },
            PeerOp::RevokeAck {
                token: 12,
                result: Ok(17),
            },
            PeerOp::Monitor {
                obj: cref(9),
                kind: MonitorKind::Delegate,
                watcher: ProcId(1),
                callback_id: 99,
                reply_to: ControllerAddr(0),
                token: 13,
            },
            PeerOp::MonitorEvent {
                proc: ProcId(1),
                cb: MonitorCb::Receive { callback_id: 5 },
            },
            PeerOp::Cleanup {
                objs: vec![cref(1), cref(2)],
            },
            PeerOp::FailProcess { proc: ProcId(3) },
            PeerOp::KvPut {
                key: "x.y".into(),
                cap: CapArg {
                    cap: cref(4),
                    mem: None,
                },
                reply_to: ControllerAddr(1),
                token: 14,
            },
            PeerOp::KvGet {
                key: "x.y".into(),
                to: ProcId(5),
                reply_to: ControllerAddr(1),
                token: 15,
            },
            PeerOp::KvGetAck {
                token: 15,
                result: Err(FosError::NoSuchKey),
            },
        ];
        for op in ops {
            let bytes = op.to_bytes();
            assert_eq!(PeerOp::from_bytes(&bytes).unwrap(), op);
        }
    }

    #[test]
    fn garbage_never_panics() {
        for len in 0..64 {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
            let _ = PeerOp::from_bytes(&bytes);
        }
    }
}
