//! Core value types of the FractOS OS layer.
//!
//! The two programming abstractions of the paper (§3.1) are *Memory* and
//! *Request* objects. Their descriptors are the payloads stored in the
//! per-Controller capability tables; the syscall surface (Table 1) operates
//! on them through `cid` indices.

use core::fmt;

use fractos_cap::{CapError, CapRef, Cid, Perms};
use fractos_net::{Endpoint, Payload, TopologyError};

/// Globally unique Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The capability-layer token for this Process.
    pub fn token(self) -> fractos_cap::ProcessToken {
        fractos_cap::ProcessToken(self.0 as u64)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Descriptor of a registered Memory object (or a diminished view of one).
///
/// The `window` field identifies the memory window (rkey analogue) that the
/// owner Controller invalidates on revocation; RDMA-time checks consult it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryDesc {
    /// Process whose physical memory backs the object.
    pub proc: ProcId,
    /// Where that Process (and hence the memory) lives.
    pub location: Endpoint,
    /// Start address of the backing region within the owning Process's
    /// address space.
    pub addr: u64,
    /// Byte offset of this view inside the backing region (non-zero for
    /// views made by `memory_diminish`).
    pub view_off: u64,
    /// Length in bytes of this view.
    pub size: u64,
    /// Permissions of this view.
    pub perms: Perms,
}

/// One argument of a Request: an immediate value or a capability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arg {
    /// Immediate bytes, delivered verbatim to the receiver. The
    /// [`Payload`] handle clones by reference count, so forwarding an
    /// immediate through a chain of Requests never copies the bytes.
    Imm(Payload),
    /// A delegated capability; carries a Memory snapshot when the
    /// capability references memory, so data-plane operations need no
    /// owner round trip (the window check enforces revocation).
    Cap(CapArg),
}

/// A capability argument inside a Request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapArg {
    /// The (possibly delegation-minted) reference.
    pub cap: CapRef,
    /// Snapshot of the memory descriptor if this is a Memory capability.
    pub mem: Option<MemoryDesc>,
}

/// Descriptor of a Request object (§3.3–§3.4).
///
/// Initialized arguments are immutable; derivation may only *append*
/// arguments (the refinement security property of §3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestDesc {
    /// The Process that serves invocations of this Request.
    pub provider: ProcId,
    /// Provider-chosen tag identifying which RPC endpoint this is
    /// (conventionally the first immediate in the paper's prototype).
    pub tag: u64,
    /// Arguments accumulated across the derivation chain, in order.
    pub args: Vec<Arg>,
}

/// Payload stored in the capability tables: every FractOS object is a
/// Memory or a Request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjPayload {
    /// A Memory object.
    Memory(MemoryDesc),
    /// A Request object.
    Request(RequestDesc),
}

impl ObjPayload {
    /// The memory descriptor, if this is a Memory object.
    pub fn as_memory(&self) -> Option<&MemoryDesc> {
        match self {
            ObjPayload::Memory(m) => Some(m),
            ObjPayload::Request(_) => None,
        }
    }

    /// The request descriptor, if this is a Request object.
    pub fn as_request(&self) -> Option<&RequestDesc> {
        match self {
            ObjPayload::Request(r) => Some(r),
            ObjPayload::Memory(_) => None,
        }
    }
}

/// The asynchronous syscall set (Table 1 plus the bootstrap KV service and
/// a null op used by the Table 3 benchmark).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// No-op round trip (Table 3 latency benchmark).
    Null,
    /// `memory_create(addr, size, perms)`.
    MemoryCreate {
        /// Start of the registered buffer in the caller's memory.
        addr: u64,
        /// Buffer length.
        size: u64,
        /// Granted permissions.
        perms: Perms,
    },
    /// `memory_diminish(cid, offset, size, drop_perms)`.
    MemoryDiminish {
        /// Source Memory capability.
        cid: Cid,
        /// Offset of the new view inside the source view.
        offset: u64,
        /// Length of the new view.
        size: u64,
        /// Permissions to drop.
        drop_perms: Perms,
    },
    /// `memory_copy(cid1, cid2)` — copy all bytes of `src` into `dst`.
    MemoryCopy {
        /// Source Memory capability.
        src: Cid,
        /// Destination Memory capability.
        dst: Cid,
    },
    /// `request_create(...)`: new Request (no `base`) or derived/refined
    /// Request (`base` given). Arguments are appended in order.
    RequestCreate {
        /// Base Request to refine, if any.
        base: Option<Cid>,
        /// Provider tag (only meaningful for new Requests).
        tag: u64,
        /// Immediate arguments to append.
        imms: Vec<Payload>,
        /// Capability arguments to append (delegated to the provider).
        caps: Vec<Cid>,
    },
    /// `request_invoke(cid)`.
    RequestInvoke {
        /// The Request capability to invoke.
        cid: Cid,
    },
    /// `cap_create_revtree(cid)`.
    CapCreateRevtree {
        /// Capability to derive a separately revocable node from.
        cid: Cid,
    },
    /// `cap_revoke(cid)`.
    CapRevoke {
        /// Capability to revoke (invalidates its whole subtree).
        cid: Cid,
    },
    /// `monitor_delegate(cid, callback_id)` (§3.6).
    MonitorDelegate {
        /// Capability whose future delegations should be monitored.
        cid: Cid,
        /// Echoed back in the `monitor_delegate_cb`.
        callback_id: u64,
    },
    /// `monitor_receive(cid, callback_id)` (§3.6).
    MonitorReceive {
        /// Capability whose revocation should be monitored.
        cid: Cid,
        /// Echoed back in the `monitor_receive_cb`.
        callback_id: u64,
    },
    /// Owner-side introspection: the Process backing a Memory object may ask
    /// for its address/extent to access it locally (device adaptors use this
    /// to reach buffers handed to them by capability).
    MemoryStat {
        /// The Memory capability to inspect.
        cid: Cid,
    },
    /// Bootstrap/discovery: publish a capability under a name.
    KvPut {
        /// Registry key.
        key: String,
        /// Capability to publish.
        cid: Cid,
    },
    /// Bootstrap/discovery: look up a published capability.
    KvGet {
        /// Registry key.
        key: String,
    },
}

impl Syscall {
    /// Short operation name (for metrics and traces).
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Null => "null",
            Syscall::MemoryCreate { .. } => "memory_create",
            Syscall::MemoryDiminish { .. } => "memory_diminish",
            Syscall::MemoryCopy { .. } => "memory_copy",
            Syscall::RequestCreate { .. } => "request_create",
            Syscall::RequestInvoke { .. } => "request_invoke",
            Syscall::CapCreateRevtree { .. } => "cap_create_revtree",
            Syscall::CapRevoke { .. } => "cap_revoke",
            Syscall::MonitorDelegate { .. } => "monitor_delegate",
            Syscall::MonitorReceive { .. } => "monitor_receive",
            Syscall::MemoryStat { .. } => "memory_stat",
            Syscall::KvPut { .. } => "kv_put",
            Syscall::KvGet { .. } => "kv_get",
        }
    }
}

/// Result of a syscall, delivered asynchronously on the Process's channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallResult {
    /// Success with no value.
    Ok,
    /// Success returning a new capability index.
    NewCid(Cid),
    /// Success returning a numeric value (e.g. `cap_revoke` returns the
    /// number of revocation-tree nodes invalidated).
    Value(u64),
    /// Success of `memory_stat`: location of the view in the caller's own
    /// memory.
    Stat {
        /// Base address of the backing region.
        addr: u64,
        /// Offset of the view inside the region.
        off: u64,
        /// Length of the view.
        size: u64,
    },
    /// Failure.
    Err(FosError),
}

impl SyscallResult {
    /// Unwraps the new capability index.
    ///
    /// # Panics
    ///
    /// Panics if the result is not `NewCid` — used by code that knows the
    /// syscall kind it issued.
    pub fn cid(&self) -> Cid {
        match self {
            SyscallResult::NewCid(cid) => *cid,
            other => panic!("expected NewCid, got {other:?}"),
        }
    }

    /// Whether the result is a success.
    pub fn is_ok(&self) -> bool {
        !matches!(self, SyscallResult::Err(_))
    }

    /// Converts into a `Result`, mapping all success forms to `Ok`.
    pub fn into_result(self) -> Result<Option<Cid>, FosError> {
        match self {
            SyscallResult::Ok | SyscallResult::Value(_) | SyscallResult::Stat { .. } => Ok(None),
            SyscallResult::NewCid(cid) => Ok(Some(cid)),
            SyscallResult::Err(e) => Err(e),
        }
    }

    /// Unwraps a `Stat` result into `(addr, off, size)`.
    ///
    /// # Panics
    ///
    /// Panics if the result is not `Stat`.
    pub fn stat(&self) -> (u64, u64, u64) {
        match self {
            SyscallResult::Stat { addr, off, size } => (*addr, *off, *size),
            other => panic!("expected Stat, got {other:?}"),
        }
    }

    /// Unwraps a numeric value result.
    ///
    /// # Panics
    ///
    /// Panics if the result is not `Value`.
    pub fn value(&self) -> u64 {
        match self {
            SyscallResult::Value(v) => *v,
            other => panic!("expected Value, got {other:?}"),
        }
    }
}

/// A Request delivered to its provider (the `request_receive` descriptor of
/// Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncomingRequest {
    /// Provider tag of the invoked Request.
    pub tag: u64,
    /// Immediate arguments, in derivation order.
    pub imms: Vec<Payload>,
    /// Capability arguments, inserted into the receiver's capability space.
    pub caps: Vec<Cid>,
}

/// Monitor callback events (§3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorCb {
    /// `monitor_delegate_cb{callback_id}`.
    DelegateDrained {
        /// The id registered with `monitor_delegate`.
        callback_id: u64,
    },
    /// `monitor_receive_cb{callback_id}`.
    Receive {
        /// The id registered with `monitor_receive`.
        callback_id: u64,
    },
}

/// OS-layer errors surfaced to Processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FosError {
    /// Capability-layer failure (revoked, stale, bad cid, ...).
    Cap(CapError),
    /// The capability does not reference the kind of object the syscall
    /// needs (e.g. `memory_copy` on a Request).
    WrongObjectKind,
    /// Memory operation outside the view's extent.
    OutOfBounds,
    /// Memory permissions do not allow the operation.
    PermissionDenied,
    /// Source and destination views have different sizes.
    SizeMismatch,
    /// The named key is not in the registry.
    NoSuchKey,
    /// The target Controller is unreachable (failed).
    ControllerUnreachable,
    /// The target Process has failed.
    ProcessFailed,
    /// The topology rejected an endpoint.
    Topology(TopologyError),
    /// The RDMA window was invalidated (object revoked at its owner).
    WindowInvalid,
    /// An integrity envelope over the payload failed to verify at a
    /// consumption boundary (the bytes differ from what the producer
    /// stamped — corruption, a torn write, or a faulty device output).
    IntegrityViolation,
    /// The static Request-program verifier rejected the plan before
    /// dispatch (submission- or admission-side, see [`crate::verify`]).
    Verify(crate::verify::VerifyError),
}

impl From<CapError> for FosError {
    fn from(e: CapError) -> Self {
        FosError::Cap(e)
    }
}

impl From<crate::verify::VerifyError> for FosError {
    fn from(e: crate::verify::VerifyError) -> Self {
        FosError::Verify(e)
    }
}

impl fmt::Display for FosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FosError::Cap(e) => write!(f, "capability error: {e}"),
            FosError::WrongObjectKind => write!(f, "wrong object kind"),
            FosError::OutOfBounds => write!(f, "memory access out of bounds"),
            FosError::PermissionDenied => write!(f, "permission denied"),
            FosError::SizeMismatch => write!(f, "memory view size mismatch"),
            FosError::NoSuchKey => write!(f, "no such registry key"),
            FosError::ControllerUnreachable => write!(f, "controller unreachable"),
            FosError::ProcessFailed => write!(f, "process failed"),
            FosError::Topology(e) => write!(f, "topology error: {e}"),
            FosError::WindowInvalid => write!(f, "memory window invalidated"),
            FosError::IntegrityViolation => write!(f, "payload integrity violation"),
            FosError::Verify(e) => write!(f, "static verification failed: {e}"),
        }
    }
}

impl std::error::Error for FosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_names() {
        assert_eq!(Syscall::Null.name(), "null");
        assert_eq!(
            Syscall::MemoryCopy {
                src: Cid(0),
                dst: Cid(1)
            }
            .name(),
            "memory_copy"
        );
    }

    #[test]
    fn result_conversions() {
        assert_eq!(SyscallResult::Ok.into_result(), Ok(None));
        assert_eq!(
            SyscallResult::NewCid(Cid(3)).into_result(),
            Ok(Some(Cid(3)))
        );
        assert!(SyscallResult::Err(FosError::NoSuchKey)
            .into_result()
            .is_err());
        assert_eq!(SyscallResult::NewCid(Cid(3)).cid(), Cid(3));
    }

    #[test]
    #[should_panic(expected = "expected NewCid")]
    fn cid_on_err_panics() {
        SyscallResult::Ok.cid();
    }

    #[test]
    fn payload_accessors() {
        let mem = ObjPayload::Memory(MemoryDesc {
            proc: ProcId(1),
            location: Endpoint::cpu(fractos_net::NodeId(0)),
            addr: 0,
            view_off: 0,
            size: 16,
            perms: Perms::RW,
        });
        assert!(mem.as_memory().is_some());
        assert!(mem.as_request().is_none());
    }
}
