//! Integrity envelopes: checksums over memory-object extents.
//!
//! The disaggregated data plane moves payloads through devices and RDMA
//! transfers that can silently corrupt them (an ECC escape on the GPU, a
//! torn NVMe write, a bit flip in flight). FractOS's answer is an
//! *integrity envelope*: the producer of a payload stamps an FNV-1a
//! checksum over the extent it wrote, and every consumption boundary —
//! `memory_copy` completion, an FS extent read, a GPU kernel's
//! input/output — re-derives the sum and compares. A mismatch surfaces as
//! the typed [`FosError::IntegrityViolation`](crate::types::FosError)
//! instead of a silently wrong answer, which the error-continuation
//! machinery (§3.6) can then retry or degrade.
//!
//! The checks model the inline CRC engines of real NICs and drives, so
//! they charge no simulated time.

use std::collections::BTreeMap;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit checksum of `data`.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Flips bit `bit % (8 * data.len())` in place (no-op on an empty slice).
/// Fault injectors hand out a raw hash; this reduces it to a position.
pub fn flip_bit(data: &mut [u8], bit: u64) {
    if data.is_empty() {
        return;
    }
    let pos = bit % (8 * data.len() as u64);
    data[(pos / 8) as usize] ^= 1 << (pos % 8);
}

/// Producer-stamped checksums over extents of identified objects.
///
/// Keys are `(object id, extent offset)` — the object id is whatever the
/// owner uses to name a buffer (a volume id, a memory address, a slot
/// index). Stamping an extent invalidates any previously stamped extent
/// it overlaps, so stale sums can never false-positive after a rewrite.
#[derive(Debug, Default)]
pub struct ExtentSums {
    /// `(obj, offset)` → `(len, checksum)`.
    sums: BTreeMap<(u64, u64), (u64, u64)>,
}

impl ExtentSums {
    /// An empty table.
    pub fn new() -> Self {
        ExtentSums::default()
    }

    /// Stamps the checksum of `data` as the envelope of
    /// `[off, off + data.len())` in `obj`, dropping overlapped stamps.
    pub fn stamp(&mut self, obj: u64, off: u64, data: &[u8]) {
        let end = off + data.len() as u64;
        let stale: Vec<(u64, u64)> = self
            .sums
            .range((obj, 0)..(obj, u64::MAX))
            .filter(|(&(_, o), &(l, _))| o < end && o + l > off)
            .map(|(&k, _)| k)
            .collect();
        for k in stale {
            self.sums.remove(&k);
        }
        self.sums
            .insert((obj, off), (data.len() as u64, fnv1a(data)));
    }

    /// Verifies `data` against the stamp of exactly `(obj, off)` with the
    /// same length. `Some(true)` on match, `Some(false)` on mismatch,
    /// `None` when no matching stamp exists (nothing to verify against).
    pub fn verify(&self, obj: u64, off: u64, data: &[u8]) -> Option<bool> {
        let &(len, sum) = self.sums.get(&(obj, off))?;
        if len != data.len() as u64 {
            return None;
        }
        Some(fnv1a(data) == sum)
    }

    /// Drops every stamp of `obj`.
    pub fn forget(&mut self, obj: u64) {
        let keys: Vec<(u64, u64)> = self
            .sums
            .range((obj, 0)..(obj, u64::MAX))
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            self.sums.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_discriminates_single_bits() {
        let a = vec![0u8; 64];
        let mut b = a.clone();
        flip_bit(&mut b, 77);
        assert_ne!(fnv1a(&a), fnv1a(&b));
        assert_ne!(a, b);
        flip_bit(&mut b, 77);
        assert_eq!(a, b, "double flip restores");
    }

    #[test]
    fn flip_bit_reduces_modulo_length() {
        let mut d = vec![0u8; 4];
        flip_bit(&mut d, 32); // == bit 0
        assert_eq!(d, vec![1, 0, 0, 0]);
        flip_bit(&mut [], 5); // must not panic
    }

    #[test]
    fn stamp_verify_roundtrip() {
        let mut t = ExtentSums::new();
        let data: Vec<u8> = (0..32).collect();
        t.stamp(9, 128, &data);
        assert_eq!(t.verify(9, 128, &data), Some(true));
        let mut bad = data.clone();
        bad[3] ^= 0x10;
        assert_eq!(t.verify(9, 128, &bad), Some(false));
        assert_eq!(t.verify(9, 0, &data), None, "unstamped offset");
        assert_eq!(t.verify(8, 128, &data), None, "other object");
        assert_eq!(t.verify(9, 128, &data[..16]), None, "length mismatch");
    }

    #[test]
    fn overlapping_stamp_invalidates_stale_sums() {
        let mut t = ExtentSums::new();
        t.stamp(1, 0, &[1, 2, 3, 4]);
        t.stamp(1, 2, &[9, 9, 9, 9]); // overlaps [0,4)
        assert_eq!(t.verify(1, 0, &[1, 2, 3, 4]), None, "stale stamp dropped");
        assert_eq!(t.verify(1, 2, &[9, 9, 9, 9]), Some(true));
        // Disjoint extents coexist.
        t.stamp(1, 100, &[5; 8]);
        assert_eq!(t.verify(1, 2, &[9, 9, 9, 9]), Some(true));
        assert_eq!(t.verify(1, 100, &[5; 8]), Some(true));
    }

    #[test]
    fn forget_drops_only_that_object() {
        let mut t = ExtentSums::new();
        t.stamp(1, 0, &[1]);
        t.stamp(2, 0, &[2]);
        t.forget(1);
        assert_eq!(t.verify(1, 0, &[1]), None);
        assert_eq!(t.verify(2, 0, &[2]), Some(true));
    }
}
