//! Cluster assembly and failure injection.
//!
//! A [`Testbed`] bundles the simulator, the fabric, the shared memory store
//! and the cluster directory, and offers the operations an experimenter
//! needs: place Controllers (host CPU, SmartNIC, or remote/shared), attach
//! Processes running [`Service`] logic, start everything, and inject
//! Process/Controller/node failures (§3.6, §6).

use fractos_cap::ControllerAddr;
use fractos_net::{
    ComputeDomain, Endpoint, Fabric, FaultPlan, Location, NetParams, NodeId, Topology, TrafficStats,
};
use fractos_sim::{
    build_runtime, runtime_from_env, ActorId, NodeOutage, RunOutcome, Runtime, RuntimeConfig,
    RuntimeExt, RuntimeKind, Shared, SimDuration, SimTime, TelemetryConfig, TelemetryEvent,
    TelemetryKind, TELEMETRY_EXTERNAL,
};

use crate::controller::ControllerActor;
use crate::directory::Directory;
use crate::memstore::MemoryStore;
use crate::messages::{CtrlMsg, ProcMsg};
use crate::process::{Fos, ProcessActor, Service};
use crate::types::ProcId;

/// Where to deploy a Controller (§6 evaluates all of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlPlacement {
    /// On the node's host CPU.
    HostCpu(NodeId),
    /// On the node's SmartNIC.
    SmartNic(NodeId),
}

impl CtrlPlacement {
    fn endpoint(self) -> Endpoint {
        match self {
            CtrlPlacement::HostCpu(n) => Endpoint::cpu(n),
            CtrlPlacement::SmartNic(n) => Endpoint::snic(n),
        }
    }

    fn domain(self) -> ComputeDomain {
        match self {
            CtrlPlacement::HostCpu(_) => ComputeDomain::HostCpu,
            CtrlPlacement::SmartNic(_) => ComputeDomain::SmartNic,
        }
    }
}

/// A running FractOS cluster in a simulator.
pub struct Testbed {
    /// The simulation runtime (single-threaded by default; select with
    /// `FRACTOS_RUNTIME`); drive it with [`Testbed::run`] or directly.
    pub sim: Box<dyn Runtime>,
    /// The shared fabric (latency model + traffic accounting).
    pub fabric: Shared<Fabric>,
    /// All simulated Process memory.
    pub mem: Shared<MemoryStore>,
    /// The cluster directory.
    pub dir: Shared<Directory>,
    ctrls: Vec<(ControllerAddr, ActorId)>,
    procs: Vec<(ProcId, ActorId)>,
}

/// Delay between a Controller dying and the watchdog notifying its peers
/// (ZooKeeper-style external failure detection, §3.6).
pub const WATCHDOG_DETECT: SimDuration = SimDuration::from_micros(500);

impl Testbed {
    /// Creates an empty testbed over `topology` on the runtime backend
    /// selected by `FRACTOS_RUNTIME` (single-threaded when unset).
    pub fn new(topology: Topology, params: NetParams, seed: u64) -> Self {
        let config = Self::runtime_config(&topology, &params, seed);
        Self::with_runtime(topology, params, runtime_from_env(&config))
    }

    /// Creates an empty testbed on an explicitly chosen backend (the
    /// cross-backend equivalence suite builds one of each).
    pub fn new_on(topology: Topology, params: NetParams, seed: u64, kind: RuntimeKind) -> Self {
        let config = Self::runtime_config(&topology, &params, seed);
        Self::with_runtime(topology, params, build_runtime(kind, &config))
    }

    /// The [`RuntimeConfig`] a cluster of this shape needs: one shard per
    /// node, uniform lookahead from the fabric's minimum inter-node
    /// latency, plus the per-link matrix (same bound widened by the
    /// cross-rack extra for inter-rack node pairs) for the sharded
    /// backend's per-link synchronization windows.
    pub fn runtime_config(topology: &Topology, params: &NetParams, seed: u64) -> RuntimeConfig {
        RuntimeConfig::new(seed, topology.len(), params.conservative_lookahead())
            .with_link_lookahead(params.link_lookahead_matrix(topology))
    }

    /// Creates an empty testbed over an already-built runtime.
    pub fn with_runtime(topology: Topology, params: NetParams, sim: Box<dyn Runtime>) -> Self {
        let fabric = Shared::named("fabric", Fabric::new(topology, params));
        Testbed {
            sim,
            fabric,
            mem: Shared::named("mem", MemoryStore::new()),
            dir: Shared::named("dir", Directory::new()),
            ctrls: Vec::new(),
            procs: Vec::new(),
        }
    }

    /// The paper's 3-node testbed with default parameters.
    pub fn paper(seed: u64) -> Self {
        Testbed::new(Topology::paper_testbed(), NetParams::paper(), seed)
    }

    /// Adds a Controller at the given placement. The first Controller added
    /// hosts the bootstrap registry.
    pub fn add_controller(&mut self, placement: CtrlPlacement) -> ControllerAddr {
        let endpoint = placement.endpoint();
        self.fabric
            .borrow()
            .topology()
            .validate(endpoint)
            .expect("controller placement must exist in the topology");
        let addr = {
            let mut dir = self.dir.borrow_mut();
            dir.register_ctrl(ActorId::from_raw(0), endpoint, placement.domain())
        };
        let registry = self.ctrls.first().map_or(addr, |(a, _)| *a);
        let actor = ControllerActor::new(
            addr,
            endpoint,
            placement.domain(),
            registry,
            self.dir.clone(),
            self.fabric.clone(),
            self.mem.clone(),
        );
        let actor_id = self.sim.add_actor_on(
            endpoint.node.0 as usize,
            &format!("ctrl{}", addr.0),
            Box::new(actor),
        );
        self.dir.borrow_mut().set_ctrl_actor(addr, actor_id);
        self.ctrls.push((addr, actor_id));
        actor_id.index(); // silence unused in release
        addr
    }

    /// Adds a Process running `service` at `endpoint`, managed by `ctrl`.
    pub fn add_process<S: Service>(
        &mut self,
        name: &str,
        endpoint: Endpoint,
        ctrl: ControllerAddr,
        service: S,
    ) -> ProcId {
        self.fabric
            .borrow()
            .topology()
            .validate(endpoint)
            .expect("process placement must exist in the topology");
        let proc = {
            let mut dir = self.dir.borrow_mut();
            dir.register_proc(name, ActorId::from_raw(0), endpoint, ctrl)
        };
        let actor = ProcessActor::new(
            service,
            proc,
            endpoint,
            self.dir.clone(),
            self.fabric.clone(),
            self.mem.clone(),
        );
        let actor_id = self
            .sim
            .add_actor_on(endpoint.node.0 as usize, name, Box::new(actor));
        self.dir.borrow_mut().set_proc_actor(proc, actor_id);
        let ctrl_actor = self.ctrl_actor(ctrl);
        self.sim
            .with_actor::<ControllerActor, _>(ctrl_actor, |c| c.adopt(proc));
        self.procs.push((proc, actor_id));
        proc
    }

    /// Posts the `Start` event to one Process.
    pub fn start_process(&mut self, proc: ProcId) {
        let actor = self.proc_actor(proc);
        self.sim.post(SimDuration::ZERO, actor, ProcMsg::Start);
    }

    /// Posts `Start` to every Process, in registration order.
    pub fn start_all(&mut self) {
        for (proc, actor) in self.procs.clone() {
            let _ = proc;
            self.sim.post(SimDuration::ZERO, actor, ProcMsg::Start);
        }
    }

    /// Runs the simulation until the event queue drains.
    pub fn run(&mut self) -> RunOutcome {
        self.sim.run()
    }

    /// Runs the simulation until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.sim.run_until(deadline)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Snapshot of the fabric's traffic statistics.
    pub fn traffic(&self) -> TrafficStats {
        self.fabric.borrow().stats().clone()
    }

    /// Clears the fabric's traffic statistics (e.g. after a warm-up phase).
    pub fn reset_traffic(&self) {
        self.fabric.borrow_mut().reset_stats();
    }

    /// Enables the continuous telemetry plane on both the runtime (engine
    /// self-profiling + actor-sourced points) and the fabric (per-link
    /// traffic deltas). Off by default; enabling never perturbs the
    /// simulated execution — see `fractos_sim::telemetry`.
    pub fn enable_telemetry(&mut self, period: SimDuration) {
        self.sim.enable_telemetry(period);
        self.fabric.borrow_mut().enable_telemetry();
    }

    /// Enables telemetry as configured by `FRACTOS_TELEMETRY` (unset/`0`/
    /// `off` leave the plane disabled). Returns the parsed configuration.
    pub fn enable_telemetry_from_env(&mut self) -> Option<TelemetryConfig> {
        let cfg = TelemetryConfig::from_env()?;
        self.enable_telemetry(cfg.period);
        Some(cfg)
    }

    /// The telemetry sampling period, when the plane is enabled.
    pub fn telemetry_period(&self) -> Option<SimDuration> {
        self.sim.telemetry_period()
    }

    /// Drains every telemetry point recorded so far — engine stores plus
    /// the fabric's per-link deltas (attributed to the external sentinel
    /// actor) — in the canonical `(time, series, actor, ord)` order.
    pub fn take_telemetry(&mut self) -> Vec<TelemetryEvent> {
        let mut events = self.sim.take_telemetry();
        let fab = self.fabric.borrow_mut().take_telemetry();
        for (ord, e) in fab.into_iter().enumerate() {
            // Fabric points are pure counter deltas: window derivation is
            // order-independent, so the buffer position serves as ord.
            events.push(TelemetryEvent {
                time: e.time,
                actor: TELEMETRY_EXTERNAL,
                ord: ord as u64,
                series: e.series(),
                kind: TelemetryKind::Count(e.delta),
            });
        }
        fractos_sim::sort_canonical_telemetry(&mut events);
        events
    }

    /// Arms a fault plan: link faults on the shared fabric, node crashes
    /// as engine outage windows plus the in-simulation Kill/Reboot
    /// choreography. Every chaos run is replayable from `(seed, plan)`;
    /// an empty plan leaves the run bit-identical to one with no plan
    /// installed.
    pub fn install_fault_plan(&mut self, plan: FaultPlan, seed: u64) {
        self.arm_node_crashes(&plan);
        self.fabric.borrow_mut().install_fault_plan(plan, seed);
    }

    /// Disarms any installed fault plan (e.g. before a measurement phase).
    /// Scheduled crash/restart events already posted keep their place in
    /// the queue; only the delivery-drop windows and link faults lift.
    pub fn clear_fault_plan(&mut self) {
        self.sim.set_node_outages(Vec::new());
        self.fabric.borrow_mut().clear_fault_plan();
    }

    /// Translates the plan's node crashes into engine outage windows and
    /// scheduled control messages (§3.6): every Controller and Process on
    /// a crashed node is killed at the crash instant; at the optional
    /// restart its Controllers reboot with a fresh epoch (capabilities
    /// minted before become stale) while Processes stay dead — their
    /// state is gone, so they can only be re-deployed, not revived.
    fn arm_node_crashes(&mut self, plan: &FaultPlan) {
        if plan.node_crashes.is_empty() {
            return;
        }
        let now = self.now();
        let outages = plan
            .node_crashes
            .iter()
            .map(|c| NodeOutage {
                node: c.node.0 as usize,
                down: c.at,
                up: c.restart,
            })
            .collect();
        self.sim.set_node_outages(outages);
        for crash in &plan.node_crashes {
            let down_in = crash.at.saturating_duration_since(now);
            let victims_p: Vec<ActorId> = {
                let dir = self.dir.borrow();
                self.procs
                    .iter()
                    .filter(|(p, _)| dir.proc(*p).is_some_and(|e| e.endpoint.node == crash.node))
                    .map(|(_, a)| *a)
                    .collect()
            };
            for actor in victims_p {
                self.sim.post(down_in, actor, ProcMsg::Kill);
            }
            let victims_c: Vec<ActorId> = {
                let dir = self.dir.borrow();
                self.ctrls
                    .iter()
                    .filter(|(a, _)| dir.ctrl(*a).is_some_and(|e| e.endpoint.node == crash.node))
                    .map(|(_, id)| *id)
                    .collect()
            };
            for actor in &victims_c {
                self.sim.post(down_in, *actor, CtrlMsg::Kill);
            }
            if let Some(up) = crash.restart {
                let up_in = up.saturating_duration_since(now);
                for actor in victims_c {
                    self.sim.post(up_in, actor, CtrlMsg::Reboot);
                }
            }
        }
    }

    /// The simulation actor of a Controller.
    ///
    /// # Panics
    ///
    /// Panics if the Controller was never added.
    pub fn ctrl_actor(&self, addr: ControllerAddr) -> ActorId {
        self.ctrls
            .iter()
            .find(|(a, _)| *a == addr)
            .map(|(_, id)| *id)
            .expect("unknown controller")
    }

    /// The simulation actor of a Process.
    ///
    /// # Panics
    ///
    /// Panics if the Process was never added.
    pub fn proc_actor(&self, proc: ProcId) -> ActorId {
        self.procs
            .iter()
            .find(|(p, _)| *p == proc)
            .map(|(_, id)| *id)
            .expect("unknown process")
    }

    /// Inspects (or mutates) the service state of a Process between events.
    pub fn with_service<S: Service, R>(&mut self, proc: ProcId, f: impl FnOnce(&mut S) -> R) -> R {
        let actor = self.proc_actor(proc);
        self.sim
            .with_actor::<ProcessActor<S>, _>(actor, |p| f(p.service_mut()))
    }

    /// The `Fos` handle of a Process (to seed work from a harness).
    ///
    /// Syscalls issued through the handle are flushed the next time the
    /// Process handles an event; pair this with [`Testbed::poke`].
    pub fn fos_of<S: Service>(&mut self, proc: ProcId) -> Fos<S> {
        let actor = self.proc_actor(proc);
        self.sim
            .with_actor::<ProcessActor<S>, _>(actor, |p| p.fos())
    }

    /// Delivers a no-op event to a Process so it flushes pending syscalls
    /// seeded through [`Testbed::fos_of`].
    pub fn poke(&mut self, proc: ProcId) {
        let actor = self.proc_actor(proc);
        self.sim
            .post(SimDuration::ZERO, actor, ProcMsg::Timer { token: u64::MAX });
    }

    /// Caps a Process's capability space (call before it runs).
    pub fn set_capspace_quota(&mut self, proc: ProcId, quota: usize) {
        let ctrl = self.dir.borrow().proc(proc).expect("registered").ctrl;
        let actor = self.ctrl_actor(ctrl);
        self.sim
            .with_actor::<ControllerActor, _>(actor, |c| c.set_capspace_quota(proc, quota));
    }

    /// Inspects a Controller between events.
    pub fn with_controller<R>(
        &mut self,
        addr: ControllerAddr,
        f: impl FnOnce(&mut ControllerActor) -> R,
    ) -> R {
        let actor = self.ctrl_actor(addr);
        self.sim.with_actor::<ControllerActor, _>(actor, f)
    }

    /// Statically verifies every live Request plan on every Controller.
    ///
    /// Walks each Controller's object table with [`crate::verify::verify_table`]
    /// and returns the total number of plans checked, or the first defect
    /// found. Harnesses call this after building their plans to prove that
    /// everything they are about to invoke passes the same verifier the
    /// Controllers run at submission and admission.
    pub fn verify_all_plans(&mut self) -> Result<usize, crate::verify::VerifyError> {
        let ctrls: Vec<ControllerAddr> = self.ctrls.iter().map(|(addr, _)| *addr).collect();
        let mut total = 0;
        for addr in ctrls {
            total += self.with_controller(addr, |c| crate::verify::verify_table(c.table()))?;
        }
        Ok(total)
    }

    /// Starts the watchdog service (§3.6's ZooKeeper stand-in) on `node`'s
    /// host CPU: it pings every Controller and broadcasts `PeerFailed`
    /// notices on its own, so [`Testbed::kill_controller_silently`] failures
    /// are detected without harness help. Returns the watchdog's actor.
    pub fn start_watchdog(&mut self, node: NodeId) -> ActorId {
        let wd = crate::watchdog::WatchdogActor::new(
            Endpoint::cpu(node),
            self.dir.clone(),
            self.fabric.clone(),
        );
        let actor = self
            .sim
            .add_actor_on(node.0 as usize, "watchdog", Box::new(wd));
        self.sim
            .post(SimDuration::ZERO, actor, crate::watchdog::WatchdogMsg::Tick);
        actor
    }

    // ------------------------------------------------------------------
    // Failure injection (§3.6, §6)
    // ------------------------------------------------------------------

    /// Kills a Process; its Controller notices via the severed channel.
    pub fn kill_process(&mut self, proc: ProcId) {
        let actor = self.proc_actor(proc);
        self.sim.post(SimDuration::ZERO, actor, ProcMsg::Kill);
    }

    /// Kills a Controller *without* telling anyone — pair this with
    /// [`Testbed::start_watchdog`] to exercise real failure detection.
    pub fn kill_controller_silently(&mut self, addr: ControllerAddr) {
        let actor = self.ctrl_actor(addr);
        self.sim.post(SimDuration::ZERO, actor, CtrlMsg::Kill);
    }

    /// Kills a Controller; the watchdog notifies all peers after
    /// [`WATCHDOG_DETECT`].
    pub fn kill_controller(&mut self, addr: ControllerAddr) {
        let actor = self.ctrl_actor(addr);
        self.sim.post(SimDuration::ZERO, actor, CtrlMsg::Kill);
        for (peer, peer_actor) in self.ctrls.clone() {
            if peer != addr {
                self.sim.post(
                    WATCHDOG_DETECT,
                    peer_actor,
                    CtrlMsg::PeerFailed { peer: addr },
                );
            }
        }
    }

    /// Kills a node: its Controllers and Processes all fail (§3.6 "after a
    /// node failure, we inform the corresponding Controller to fail all
    /// Processes running in it").
    pub fn kill_node(&mut self, node: NodeId) {
        let victims_p: Vec<ProcId> = {
            let dir = self.dir.borrow();
            self.procs
                .iter()
                .filter(|(p, _)| dir.proc(*p).is_some_and(|e| e.endpoint.node == node))
                .map(|(p, _)| *p)
                .collect()
        };
        for p in victims_p {
            self.kill_process(p);
        }
        let victims_c: Vec<ControllerAddr> = {
            let dir = self.dir.borrow();
            self.ctrls
                .iter()
                .filter(|(a, _)| dir.ctrl(*a).is_some_and(|e| e.endpoint.node == node))
                .map(|(a, _)| *a)
                .collect()
        };
        for c in victims_c {
            self.kill_controller(c);
        }
    }

    /// Reboots a (dead or live) Controller: its epoch advances and every
    /// capability minted before becomes stale (§3.6).
    pub fn reboot_controller(&mut self, addr: ControllerAddr) {
        let actor = self.ctrl_actor(addr);
        self.sim.post(SimDuration::ZERO, actor, CtrlMsg::Reboot);
    }

    // ------------------------------------------------------------------
    // Common cluster shapes (§6 configurations)
    // ------------------------------------------------------------------

    /// Adds one Controller per node at the given location kind and returns
    /// their addresses, index-aligned with node ids.
    pub fn controllers_per_node(&mut self, on_snic: bool) -> Vec<ControllerAddr> {
        let n = self.fabric.borrow().topology().len();
        (0..n)
            .map(|i| {
                let node = NodeId(i as u32);
                self.add_controller(if on_snic {
                    CtrlPlacement::SmartNic(node)
                } else {
                    CtrlPlacement::HostCpu(node)
                })
            })
            .collect()
    }

    /// Adds a single shared Controller on `node`'s host CPU ("Shared HAL"
    /// configuration of §6.5) and returns it, repeated once per node for
    /// index compatibility with [`Testbed::controllers_per_node`].
    pub fn shared_controller(&mut self, node: NodeId) -> Vec<ControllerAddr> {
        let addr = self.add_controller(CtrlPlacement::HostCpu(node));
        vec![addr; self.fabric.borrow().topology().len()]
    }
}

/// Convenience: location of a Process on its node's host CPU.
pub fn cpu(node: u32) -> Endpoint {
    Endpoint::cpu(NodeId(node))
}

/// Convenience: a GPU endpoint.
pub fn gpu(node: u32) -> Endpoint {
    Endpoint::new(NodeId(node), Location::Gpu(0))
}

/// Convenience: an NVMe endpoint.
pub fn nvme(node: u32) -> Endpoint {
    Endpoint::new(NodeId(node), Location::Nvme(0))
}
