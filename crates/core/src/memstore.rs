//! Simulated physical memory of every Process, plus RDMA memory windows.
//!
//! Each Process has a private address space with bump allocation. Memory
//! objects registered via `memory_create` become *windows* — the rkey
//! analogue: one-sided RDMA operations name a window and are checked against
//! it at access time, on the node that owns the memory. Revoking a Memory
//! capability invalidates the window at its owner, which is exactly why
//! FractOS revocation is immediate without delegation tracking (§3.5).
//!
//! The store holds *real bytes*: `memory_copy` moves data end to end and the
//! integration tests verify content, not just timing.

use std::collections::BTreeMap;

use fractos_cap::{CapRef, Perms};

use crate::types::{FosError, MemoryDesc, ProcId};

/// State of one registered memory window.
#[derive(Debug, Clone)]
struct Window {
    desc: MemoryDesc,
    valid: bool,
}

/// One allocated region of Process memory.
#[derive(Debug)]
struct Region {
    data: Vec<u8>,
    /// Physical placement override: device memory (e.g. a GPU buffer
    /// allocated by its adaptor) lives at the device endpoint, so data
    /// transfers to it traverse the right links.
    location: Option<fractos_net::Endpoint>,
}

/// All simulated Process memory in the cluster.
///
/// All maps are BTreeMaps: window invalidation sweeps iterate them, and
/// sweep order must be reproducible for bit-identical replay.
#[derive(Debug, Default)]
pub struct MemoryStore {
    /// Per-process regions: `(proc, base addr) → region`.
    regions: BTreeMap<(ProcId, u64), Region>,
    /// Bump allocator cursor per process.
    next_addr: BTreeMap<ProcId, u64>,
    /// Registered RDMA windows keyed by the capability that minted them.
    windows: BTreeMap<CapRef, Window>,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }

    /// Allocates `size` bytes in `proc`'s address space, zero-initialized.
    /// Returns the start address.
    pub fn alloc(&mut self, proc: ProcId, size: u64) -> u64 {
        self.alloc_inner(proc, size, None)
    }

    /// Allocates memory physically placed at `location` (device memory
    /// managed by an adaptor Process).
    pub fn alloc_at(&mut self, proc: ProcId, size: u64, location: fractos_net::Endpoint) -> u64 {
        self.alloc_inner(proc, size, Some(location))
    }

    fn alloc_inner(
        &mut self,
        proc: ProcId,
        size: u64,
        location: Option<fractos_net::Endpoint>,
    ) -> u64 {
        let cursor = self.next_addr.entry(proc).or_insert(0x1000);
        let addr = *cursor;
        // Keep regions aligned and non-adjacent so bound bugs surface.
        *cursor += size.max(1).next_multiple_of(4096) + 4096;
        self.regions.insert(
            (proc, addr),
            Region {
                data: vec![0; size as usize],
                location,
            },
        );
        addr
    }

    /// Physical placement of the region at `addr`, if overridden.
    pub fn region_location(&self, proc: ProcId, addr: u64) -> Option<fractos_net::Endpoint> {
        self.regions.get(&(proc, addr)).and_then(|r| r.location)
    }

    /// Writes `data` into `proc`'s memory at `addr + offset`.
    pub fn write(
        &mut self,
        proc: ProcId,
        addr: u64,
        offset: u64,
        data: &[u8],
    ) -> Result<(), FosError> {
        let region = self.region_mut(proc, addr)?;
        let start = offset as usize;
        let end = start + data.len();
        if end > region.len() {
            return Err(FosError::OutOfBounds);
        }
        region[start..end].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes from `proc`'s memory at `addr + offset`.
    pub fn read(
        &self,
        proc: ProcId,
        addr: u64,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, FosError> {
        let region = self.region(proc, addr)?;
        let start = offset as usize;
        let end = start + len as usize;
        if end > region.len() {
            return Err(FosError::OutOfBounds);
        }
        Ok(region[start..end].to_vec())
    }

    /// Size of the region starting at `addr`, if it exists.
    pub fn region_size(&self, proc: ProcId, addr: u64) -> Option<u64> {
        self.regions.get(&(proc, addr)).map(|r| r.data.len() as u64)
    }

    fn region(&self, proc: ProcId, addr: u64) -> Result<&Vec<u8>, FosError> {
        self.regions
            .get(&(proc, addr))
            .map(|r| &r.data)
            .ok_or(FosError::OutOfBounds)
    }

    fn region_mut(&mut self, proc: ProcId, addr: u64) -> Result<&mut Vec<u8>, FosError> {
        self.regions
            .get_mut(&(proc, addr))
            .map(|r| &mut r.data)
            .ok_or(FosError::OutOfBounds)
    }

    /// Registers an RDMA window for the capability `cap` over `desc`.
    pub fn register_window(&mut self, cap: CapRef, desc: MemoryDesc) {
        self.windows.insert(cap, Window { desc, valid: true });
    }

    /// Invalidates the window minted by `cap` (owner-side revocation).
    /// Idempotent; unknown windows are ignored (they may belong to Request
    /// objects).
    pub fn invalidate_window(&mut self, cap: CapRef) {
        if let Some(w) = self.windows.get_mut(&cap) {
            w.valid = false;
        }
    }

    /// Invalidates every window owned by `proc` (process failure).
    pub fn invalidate_proc_windows(&mut self, proc: ProcId) {
        for w in self.windows.values_mut() {
            if w.desc.proc == proc {
                w.valid = false;
            }
        }
    }

    /// One-sided RDMA read through a window: checks validity, permissions
    /// and bounds at the target, then returns the bytes.
    pub fn rdma_read_window(
        &self,
        window: CapRef,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, FosError> {
        let w = self.check_window(window, offset, len, Perms::READ)?;
        self.read(w.desc.proc, w.desc.addr, w.desc.view_off + offset, len)
    }

    /// One-sided RDMA write through a window.
    pub fn rdma_write_window(
        &mut self,
        window: CapRef,
        offset: u64,
        data: &[u8],
    ) -> Result<(), FosError> {
        let w = self
            .check_window(window, offset, data.len() as u64, Perms::WRITE)?
            .clone();
        self.write(w.desc.proc, w.desc.addr, w.desc.view_off + offset, data)
    }

    fn check_window(
        &self,
        window: CapRef,
        offset: u64,
        len: u64,
        need: Perms,
    ) -> Result<&Window, FosError> {
        let w = self.windows.get(&window).ok_or(FosError::WindowInvalid)?;
        if !w.valid {
            return Err(FosError::WindowInvalid);
        }
        if !w.desc.perms.contains(need) {
            return Err(FosError::PermissionDenied);
        }
        if offset + len > w.desc.size {
            return Err(FosError::OutOfBounds);
        }
        Ok(w)
    }

    /// The descriptor behind a window, if it is still valid.
    pub fn window_desc(&self, window: CapRef) -> Result<&MemoryDesc, FosError> {
        let w = self.windows.get(&window).ok_or(FosError::WindowInvalid)?;
        if !w.valid {
            return Err(FosError::WindowInvalid);
        }
        Ok(&w.desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractos_cap::{ControllerAddr, Epoch, ObjectId};
    use fractos_net::{Endpoint, NodeId};

    const P: ProcId = ProcId(1);

    fn cap(n: u64) -> CapRef {
        CapRef {
            ctrl: ControllerAddr(0),
            epoch: Epoch(0),
            object: ObjectId(n),
        }
    }

    fn desc(addr: u64, size: u64, perms: Perms) -> MemoryDesc {
        MemoryDesc {
            proc: P,
            location: Endpoint::cpu(NodeId(0)),
            addr,
            view_off: 0,
            size,
            perms,
        }
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut m = MemoryStore::new();
        let addr = m.alloc(P, 64);
        m.write(P, addr, 0, b"hello").unwrap();
        assert_eq!(m.read(P, addr, 0, 5).unwrap(), b"hello");
        assert_eq!(m.read(P, addr, 5, 3).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn distinct_allocations_do_not_alias() {
        let mut m = MemoryStore::new();
        let a = m.alloc(P, 16);
        let b = m.alloc(P, 16);
        assert_ne!(a, b);
        m.write(P, a, 0, &[1; 16]).unwrap();
        assert_eq!(m.read(P, b, 0, 16).unwrap(), vec![0; 16]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = MemoryStore::new();
        let addr = m.alloc(P, 8);
        assert_eq!(m.write(P, addr, 4, &[0; 8]), Err(FosError::OutOfBounds));
        assert_eq!(m.read(P, addr, 0, 9).unwrap_err(), FosError::OutOfBounds);
        assert_eq!(m.read(P, 0xdead, 0, 1).unwrap_err(), FosError::OutOfBounds);
    }

    #[test]
    fn window_read_write_and_bounds() {
        let mut m = MemoryStore::new();
        let addr = m.alloc(P, 32);
        let w = cap(1);
        m.register_window(w, desc(addr, 32, Perms::RW));
        m.rdma_write_window(w, 4, b"abcd").unwrap();
        assert_eq!(m.rdma_read_window(w, 4, 4).unwrap(), b"abcd");
        assert_eq!(
            m.rdma_read_window(w, 30, 4).unwrap_err(),
            FosError::OutOfBounds
        );
    }

    #[test]
    fn window_permissions_enforced() {
        let mut m = MemoryStore::new();
        let addr = m.alloc(P, 16);
        let w = cap(2);
        m.register_window(w, desc(addr, 16, Perms::READ));
        assert!(m.rdma_read_window(w, 0, 4).is_ok());
        assert_eq!(
            m.rdma_write_window(w, 0, b"x").unwrap_err(),
            FosError::PermissionDenied
        );
    }

    #[test]
    fn invalidated_window_rejects_access() {
        let mut m = MemoryStore::new();
        let addr = m.alloc(P, 16);
        let w = cap(3);
        m.register_window(w, desc(addr, 16, Perms::RW));
        m.invalidate_window(w);
        assert_eq!(
            m.rdma_read_window(w, 0, 1).unwrap_err(),
            FosError::WindowInvalid
        );
        // Underlying memory still accessible by the owner itself.
        assert!(m.read(P, addr, 0, 1).is_ok());
    }

    #[test]
    fn unknown_window_rejected() {
        let m = MemoryStore::new();
        assert_eq!(
            m.rdma_read_window(cap(9), 0, 1).unwrap_err(),
            FosError::WindowInvalid
        );
    }

    #[test]
    fn process_failure_invalidates_all_its_windows() {
        let mut m = MemoryStore::new();
        let a1 = m.alloc(P, 8);
        let a2 = m.alloc(ProcId(2), 8);
        let w1 = cap(1);
        let w2 = cap(2);
        m.register_window(w1, desc(a1, 8, Perms::RW));
        m.register_window(
            w2,
            MemoryDesc {
                proc: ProcId(2),
                location: Endpoint::cpu(NodeId(0)),
                addr: a2,
                view_off: 0,
                size: 8,
                perms: Perms::RW,
            },
        );
        m.invalidate_proc_windows(P);
        assert!(m.rdma_read_window(w1, 0, 1).is_err());
        assert!(m.rdma_read_window(w2, 0, 1).is_ok());
    }
}
