//! Central registry of every wire code the protocols mint.
//!
//! One named constant per opcode, tag or error code that crosses the
//! simulated wire — the syscall surface ([`crate::wire`]), the
//! Controller ↔ Controller peer protocol ([`crate::wire_peer`]), the
//! device-adaptor error immediates (`fractos_devices::proto`) and the
//! storage-stack failure codes (`fractos_services`' `fs_err`). Scattering
//! these as magic numbers is how a protocol grows an opcode one end mints
//! and the other end silently drops; keeping them here lets
//! `fractos-analyze`'s wire-conformance pass check, across all crates,
//! that every code is minted somewhere, handled (or explicitly rejected
//! with a typed error) at every decode site, and never duplicated within
//! a group.
//!
//! Naming convention: the prefix up to the first `_` is the *group* — one
//! group per `match`-decoded tag space. The conformance pass derives
//! groups from these prefixes, so a new code only needs a constant here
//! and arms at the decode sites; the pass fails the build until both
//! exist. Groups annotated `analyze: mint-only` carry codes that
//! terminate at applications (asserted on by tests, not decoded by a
//! product `match`); the pass skips the decode-site requirement for
//! those.
//!
//! The numeric values are frozen: they are the on-wire representation the
//! round-trip tests and the byte-identical trace gates pin. Renumbering
//! is a protocol break, not a refactor.

/// Syscall opcodes (`Syscall` encode/decode).
pub const SC_NULL: u8 = 0;
/// `Syscall::MemoryCreate`.
pub const SC_MEMORY_CREATE: u8 = 1;
/// `Syscall::MemoryDiminish`.
pub const SC_MEMORY_DIMINISH: u8 = 2;
/// `Syscall::MemoryCopy`.
pub const SC_MEMORY_COPY: u8 = 3;
/// `Syscall::RequestCreate`.
pub const SC_REQUEST_CREATE: u8 = 4;
/// `Syscall::RequestInvoke`.
pub const SC_REQUEST_INVOKE: u8 = 5;
/// `Syscall::CapCreateRevtree`.
pub const SC_CAP_CREATE_REVTREE: u8 = 6;
/// `Syscall::CapRevoke`.
pub const SC_CAP_REVOKE: u8 = 7;
/// `Syscall::MonitorDelegate`.
pub const SC_MONITOR_DELEGATE: u8 = 8;
/// `Syscall::MonitorReceive`.
pub const SC_MONITOR_RECEIVE: u8 = 9;
/// `Syscall::KvPut`.
pub const SC_KV_PUT: u8 = 10;
/// `Syscall::KvGet`.
pub const SC_KV_GET: u8 = 11;
/// `Syscall::MemoryStat`.
pub const SC_MEMORY_STAT: u8 = 12;

/// `SyscallResult` tags.
pub const RES_OK: u8 = 0;
/// `SyscallResult::NewCid`.
pub const RES_NEW_CID: u8 = 1;
/// `SyscallResult::Err`.
pub const RES_ERR: u8 = 2;
/// `SyscallResult::Value`.
pub const RES_VALUE: u8 = 3;
/// `SyscallResult::Stat`.
pub const RES_STAT: u8 = 4;

/// `Arg` tags: immediate payload.
pub const ARG_IMM: u8 = 0;
/// `Arg::Cap`.
pub const ARG_CAP: u8 = 1;

/// Optional-field presence tags (`Option<MemoryDesc>`, `Option<Cid>`,
/// the verify-path per-step argument, …).
pub const OPT_NONE: u8 = 0;
/// The optional field is present.
pub const OPT_SOME: u8 = 1;

/// `Result<_, FosError>` wrappers in the peer protocol: success arm.
pub const RESULT_OK: u8 = 0;
/// Failure arm, followed by an encoded `FosError`.
pub const RESULT_ERR: u8 = 1;

/// `Location` tags: host CPU.
pub const LOC_HOST_CPU: u8 = 0;
/// `Location::SmartNic`.
pub const LOC_SMART_NIC: u8 = 1;
/// `Location::Gpu(n)`; the index follows.
pub const LOC_GPU: u8 = 2;
/// `Location::Nvme(n)`; the index follows.
pub const LOC_NVME: u8 = 3;

/// `FosError` codes: capability sub-error (sub-code + object follow).
pub const FOS_CAP: u8 = 0;
/// `FosError::WrongObjectKind`.
pub const FOS_WRONG_OBJECT_KIND: u8 = 1;
/// `FosError::OutOfBounds`.
pub const FOS_OUT_OF_BOUNDS: u8 = 2;
/// `FosError::PermissionDenied`.
pub const FOS_PERMISSION_DENIED: u8 = 3;
/// `FosError::SizeMismatch`.
pub const FOS_SIZE_MISMATCH: u8 = 4;
/// `FosError::NoSuchKey`.
pub const FOS_NO_SUCH_KEY: u8 = 5;
/// `FosError::ControllerUnreachable` (§3.6 typed verdict).
pub const FOS_CONTROLLER_UNREACHABLE: u8 = 6;
/// `FosError::ProcessFailed` (§3.6 typed verdict).
pub const FOS_PROCESS_FAILED: u8 = 7;
/// `FosError::Topology`.
pub const FOS_TOPOLOGY: u8 = 8;
/// `FosError::WindowInvalid`.
pub const FOS_WINDOW_INVALID: u8 = 9;
/// `FosError::IntegrityViolation` (end-to-end envelope mismatch).
pub const FOS_INTEGRITY_VIOLATION: u8 = 10;
/// `FosError::Verify` (static request-program verifier rejection).
pub const FOS_VERIFY: u8 = 11;

/// `CapError` sub-codes under [`FOS_CAP`]: no such object.
pub const CAPE_NO_SUCH_OBJECT: u8 = 0;
/// `CapError::Revoked`.
pub const CAPE_REVOKED: u8 = 1;
/// `CapError::StaleEpoch`.
pub const CAPE_STALE_EPOCH: u8 = 2;
/// `CapError::BadCid`.
pub const CAPE_BAD_CID: u8 = 3;
/// `CapError::SpaceExhausted`.
pub const CAPE_SPACE_EXHAUSTED: u8 = 4;
/// `CapError::PermissionDenied`.
pub const CAPE_PERMISSION_DENIED: u8 = 5;
/// `CapError::HasChildren`.
pub const CAPE_HAS_CHILDREN: u8 = 6;
/// `CapError::AlreadyMonitored`.
pub const CAPE_ALREADY_MONITORED: u8 = 7;

/// `VerifyErrorKind` codes under [`FOS_VERIFY`]: dangling capability.
pub const VK_DANGLING_CAP: u8 = 0;
/// `VerifyErrorKind::RevokedCap`.
pub const VK_REVOKED_CAP: u8 = 1;
/// `VerifyErrorKind::StaleEpoch`.
pub const VK_STALE_EPOCH: u8 = 2;
/// `VerifyErrorKind::CyclicContinuation`.
pub const VK_CYCLIC_CONTINUATION: u8 = 3;
/// `VerifyErrorKind::PrivilegeEscalation`.
pub const VK_PRIVILEGE_ESCALATION: u8 = 4;
/// `VerifyErrorKind::RefinementViolation`.
pub const VK_REFINEMENT_VIOLATION: u8 = 5;
/// `VerifyErrorKind::MissingPerm` (perm bits follow).
pub const VK_MISSING_PERM: u8 = 6;
/// `VerifyErrorKind::WrongObjectKind`.
pub const VK_WRONG_OBJECT_KIND: u8 = 7;

/// Peer-protocol opcodes (`PeerOp`): remote Request invocation.
pub const PEER_INVOKE: u8 = 0;
/// `PeerOp::InvokeAck`.
pub const PEER_INVOKE_ACK: u8 = 1;
/// `PeerOp::Derive`.
pub const PEER_DERIVE: u8 = 2;
/// `PeerOp::DeriveAck`.
pub const PEER_DERIVE_ACK: u8 = 3;
/// `PeerOp::Delegate`.
pub const PEER_DELEGATE: u8 = 4;
/// `PeerOp::DelegateAck`.
pub const PEER_DELEGATE_ACK: u8 = 5;
/// `PeerOp::Revoke`.
pub const PEER_REVOKE: u8 = 6;
/// `PeerOp::RevokeAck`.
pub const PEER_REVOKE_ACK: u8 = 7;
/// `PeerOp::Monitor`.
pub const PEER_MONITOR: u8 = 8;
/// `PeerOp::MonitorAck`.
pub const PEER_MONITOR_ACK: u8 = 9;
/// `PeerOp::MonitorEvent`.
pub const PEER_MONITOR_EVENT: u8 = 10;
/// `PeerOp::Cleanup`.
pub const PEER_CLEANUP: u8 = 11;
/// `PeerOp::FailProcess`.
pub const PEER_FAIL_PROCESS: u8 = 12;
/// `PeerOp::KvPut`.
pub const PEER_KV_PUT: u8 = 13;
/// `PeerOp::KvPutAck`.
pub const PEER_KV_PUT_ACK: u8 = 14;
/// `PeerOp::KvGet`.
pub const PEER_KV_GET: u8 = 15;
/// `PeerOp::KvGetAck`.
pub const PEER_KV_GET_ACK: u8 = 16;

/// `MonitorKind` tags: delegate-monitor.
pub const MON_DELEGATE: u8 = 0;
/// `MonitorKind::Receive`.
pub const MON_RECEIVE: u8 = 1;

/// `MonitorCb` tags: delegation tree drained.
pub const MCB_DELEGATE_DRAINED: u8 = 0;
/// `MonitorCb::Receive`.
pub const MCB_RECEIVE: u8 = 1;

/// `DeriveOp` tags: diminish (window/perm shrink).
pub const DRV_DIMINISH: u8 = 0;
/// `DeriveOp::Refine` (append-only argument refinement, §3.4).
pub const DRV_REFINE: u8 = 1;
/// `DeriveOp::Revtree`.
pub const DRV_REVTREE: u8 = 2;

/// Device-adaptor error codes (`fractos_devices::proto::DevError`,
/// carried as the first immediate of an error-continuation reply):
/// malformed request.
pub const DEV_BAD_REQUEST: u64 = 1;
/// `DevError::TooLarge`.
pub const DEV_TOO_LARGE: u64 = 2;
/// `DevError::Bounds`.
pub const DEV_BOUNDS: u64 = 3;
/// `DevError::Transfer`.
pub const DEV_TRANSFER: u64 = 4;
/// `DevError::NoKernel`.
pub const DEV_NO_KERNEL: u64 = 5;
/// `DevError::BadBuffer`.
pub const DEV_BAD_BUFFER: u64 = 6;
/// `DevError::Media`.
pub const DEV_MEDIA: u64 = 7;
/// `DevError::Launch`.
pub const DEV_LAUNCH: u64 = 8;
/// `DevError::Integrity`.
pub const DEV_INTEGRITY: u64 = 9;

/// Internal FS continuation kinds: the first immediate of a
/// `TAG_FS_INTERNAL` Request, minted by the FS service's `internal_cont`
/// and dispatched by its own `on_request` (the FS is both ends of this
/// private tag space): a volume extent finished deriving.
pub const FSI_EXTENT_READY: u64 = 0;
/// A block operation completed successfully.
pub const FSI_BLK_OK: u64 = 1;
/// A block operation failed; the adaptor's typed `DevError` code rides
/// at immediate index 2.
pub const FSI_BLK_ERR: u64 = 2;

// analyze: group FSE mint-only
/// Storage-stack failure codes (`fractos_services`' `fs_err`, replied as
/// a bare `[code]` immediate on the client's error continuation; clients
/// assert on them, no product `match` decodes them): bad range.
pub const FSE_RANGE: u64 = 1;
/// `fs_err::COMPOSE`: dynamic composition failed.
pub const FSE_COMPOSE: u64 = 2;
/// `fs_err::STAGING`: staging-buffer setup failed.
pub const FSE_STAGING: u64 = 3;
/// `fs_err::DEGRADED`: block adaptor unreachable.
pub const FSE_DEGRADED: u64 = 4;
/// `fs_err::NO_FILE`.
pub const FSE_NO_FILE: u64 = 5;
/// `fs_err::INTERNAL`: internal continuation/handle minting failed.
pub const FSE_INTERNAL: u64 = 6;
/// `fs_err::IO`: block-device operation failed.
pub const FSE_IO: u64 = 9;

#[cfg(test)]
mod tests {
    /// The registry's values are frozen protocol surface; spot-check the
    /// anchors documented throughout the tree so a renumbering attempt
    /// fails loudly here as well as at the round-trip suites.
    #[test]
    fn documented_anchors_hold() {
        assert_eq!(super::FOS_INTEGRITY_VIOLATION, 10);
        assert_eq!(super::FOS_VERIFY, 11);
        assert_eq!(super::SC_MEMORY_STAT, 12);
        assert_eq!(super::PEER_KV_GET_ACK, 16);
        assert_eq!(super::DEV_INTEGRITY, 9);
        assert_eq!(super::FSE_IO, 9);
    }
}
