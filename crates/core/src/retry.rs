//! Retransmission policy and duplicate suppression for control messages.
//!
//! The fabric's fault plan can drop control-plane messages
//! ([`fractos_net::Fabric::try_send`]). Every control channel therefore
//! carries wire-level sequence numbers (modeled inside the already-charged
//! 64-byte wire header, like a RoCE BTH PSN, so traffic accounting is
//! unchanged), and senders retransmit lost messages with exponential
//! backoff under a bounded retry budget. Receivers suppress duplicates with
//! a per-channel [`DedupFilter`], which keeps retransmitted Controller
//! operations idempotent.
//!
//! Exhausting the retry budget is translated into the existing §3.6 failure
//! verdicts by the caller (`ControllerUnreachable` for pending operations,
//! channel-severed translation for Processes) — it never *declares* a peer
//! dead; only the external watchdog does that.
//!
//! Timeouts and budgets (initial RTO, attempt caps, last-resort ack and
//! syscall timeouts) live in the typed [`fractos_net::RetryPolicy`] carried
//! on the fabric's `NetParams`, so every sender reads one consistent,
//! tweakable policy instead of scattered constants.
//!
//! Sequence assignment and duplicate filtering are always on (they are
//! cheap and memory-bounded); retransmit and timeout timers are armed only
//! while a fault plan is active, so fault-free runs schedule no extra
//! events and stay bit-identical to a build without this layer.

use std::collections::BTreeSet;

/// Monotonic per-channel sequence assigner.
#[derive(Debug, Default, Clone)]
pub struct SeqGen(u64);

impl SeqGen {
    /// A generator starting at sequence 0.
    pub fn new() -> Self {
        SeqGen(0)
    }

    /// Returns the next sequence number.
    pub fn next_seq(&mut self) -> u64 {
        let s = self.0;
        self.0 += 1;
        s
    }
}

/// Sliding-window duplicate filter over per-channel sequence numbers.
///
/// Tracks a contiguous frontier (`everything below `next` was delivered`)
/// plus the out-of-order set above it, so memory is bounded by the
/// reordering window plus the (finite) number of sequences whose every
/// transmit was lost.
#[derive(Debug, Default, Clone)]
pub struct DedupFilter {
    next: u64,
    pending: BTreeSet<u64>,
}

impl DedupFilter {
    /// An empty filter (no sequence seen yet).
    pub fn new() -> Self {
        DedupFilter::default()
    }

    /// Records a delivery. Returns `true` the first time `seq` is seen and
    /// `false` for duplicates.
    pub fn fresh(&mut self, seq: u64) -> bool {
        if seq < self.next {
            return false;
        }
        if !self.pending.insert(seq) {
            return false;
        }
        while self.pending.remove(&self.next) {
            self.next += 1;
        }
        true
    }

    /// Number of sequences seen above the contiguous frontier (tests).
    pub fn out_of_order(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_gen_is_monotonic() {
        let mut g = SeqGen::new();
        assert_eq!(g.next_seq(), 0);
        assert_eq!(g.next_seq(), 1);
        assert_eq!(g.next_seq(), 2);
    }

    #[test]
    fn dedup_accepts_in_order_with_no_memory_growth() {
        let mut f = DedupFilter::new();
        for s in 0..1000 {
            assert!(f.fresh(s));
        }
        assert_eq!(f.out_of_order(), 0);
    }

    #[test]
    fn dedup_rejects_duplicates_before_and_after_frontier() {
        let mut f = DedupFilter::new();
        assert!(f.fresh(0));
        assert!(f.fresh(1));
        assert!(!f.fresh(0), "below the frontier");
        assert!(f.fresh(5));
        assert!(!f.fresh(5), "above the frontier");
        assert_eq!(f.out_of_order(), 1);
    }

    #[test]
    fn dedup_handles_reordering_then_compacts() {
        let mut f = DedupFilter::new();
        assert!(f.fresh(2));
        assert!(f.fresh(1));
        assert_eq!(f.out_of_order(), 2);
        assert!(f.fresh(0));
        // Frontier advanced through the gap: set drained.
        assert_eq!(f.out_of_order(), 0);
        assert!(!f.fresh(2));
    }
}
