//! The Process runtime and the `libfractos` user API.
//!
//! A FractOS Process is a user-level program connected to exactly one
//! Controller through an asynchronous request/response queue pair (§3.1).
//! Application logic implements [`Service`]; the [`Fos`] handle issues
//! syscalls in continuation-passing style — the paper notes that execution
//! in FractOS "is, in fact, a distributed form of the continuation-passing
//! style (CPS) model", and its prototype builds a bespoke promise/future
//! library for the same purpose (§4). Continuations receive `&mut S`, so
//! services keep plain owned state without interior mutability.

use std::collections::{HashMap, VecDeque};

use fractos_cap::{Cid, Perms};
use fractos_net::{Endpoint, Payload, TrafficClass};
use fractos_sim::{
    Actor, Ctx, Msg, Shared, SimDuration, SimTime, SpanKind, TelemetryKind, TraceCtx,
};

use crate::directory::Directory;
use crate::memstore::MemoryStore;
use crate::messages::{syscall_msg_size, CtrlMsg, CtrlToProc, ProcMsg};
use crate::retry::{DedupFilter, SeqGen};
use crate::types::{FosError, IncomingRequest, MonitorCb, ProcId, Syscall, SyscallResult};

/// Application logic of a FractOS Process (user service or device adaptor).
///
/// All methods run inside the simulation; they must not block. Asynchrony is
/// expressed by issuing syscalls with continuations through [`Fos`]. The
/// `Send` bound lets runtime backends host the enclosing Process actor on a
/// worker thread.
pub trait Service: Send + 'static {
    /// Called once when the Process starts.
    fn on_start(&mut self, fos: &Fos<Self>)
    where
        Self: Sized,
    {
        let _ = fos;
    }

    /// Called when a Request this Process provides is invoked.
    fn on_request(&mut self, req: IncomingRequest, fos: &Fos<Self>)
    where
        Self: Sized;

    /// Called when a monitor callback arrives (§3.6).
    fn on_monitor(&mut self, cb: MonitorCb, fos: &Fos<Self>)
    where
        Self: Sized,
    {
        let _ = (cb, fos);
    }
}

type Cont<S> = Box<dyn FnOnce(&mut S, SyscallResult, &Fos<S>) + Send>;
type TimerCont<S> = Box<dyn FnOnce(&mut S, &Fos<S>) + Send>;

enum Out {
    Syscall {
        token: u64,
        sc: Syscall,
    },
    Timer {
        token: u64,
        delay: SimDuration,
        /// Device label for span attribution (`Fos::sleep_dev`); `None` for
        /// plain timers, which silently thread the current trace context
        /// through to the continuation instead of opening a Device span.
        dev: Option<&'static str>,
    },
    /// A buffered telemetry point (`Fos::telemetry_*`), drained into the
    /// engine's telemetry store on the next flush. Only ever queued while
    /// the telemetry plane is enabled.
    Telemetry {
        series: String,
        kind: TelemetryKind,
    },
}

struct FosInner<S> {
    proc: ProcId,
    now: SimTime,
    next_token: u64,
    conts: HashMap<u64, Cont<S>>,
    timers: HashMap<u64, TimerCont<S>>,
    out: Vec<Out>,
    // Congestion control (§4): bounded outstanding syscalls; excess queues.
    outstanding: u32,
    window: u32,
    backlog: VecDeque<(u64, Syscall)>,
    mem: Shared<MemoryStore>,
    fabric: Shared<fractos_net::Fabric>,
    /// Mirror of `Ctx::telemetry_enabled`, refreshed on every delivery.
    /// `Fos::telemetry_*` are complete no-ops while this is false, so a
    /// disabled run allocates nothing (zero-perturbation invariant).
    telemetry_on: bool,
    // --- causal tracing (all no-ops while span recording is off) ---
    /// Trace context the currently-running handler descends from.
    cur: TraceCtx,
    /// The next posted syscall roots a new trace (`Fos::trace_root`).
    root_armed: bool,
    /// Per-pending-syscall span context (parents retransmits/timeouts and
    /// chains continuations when a reply carries no context).
    sc_ctx: HashMap<u64, TraceCtx>,
    /// Context to restore when an armed timer fires.
    timer_ctx: HashMap<u64, TraceCtx>,
}

/// Handle through which a [`Service`] uses FractOS.
///
/// Cheap to clone; all clones refer to the same Process.
pub struct Fos<S> {
    inner: Shared<FosInner<S>>,
}

impl<S> Clone for Fos<S> {
    fn clone(&self) -> Self {
        Fos {
            inner: self.inner.clone(),
        }
    }
}

impl<S: Service> Fos<S> {
    /// This Process's id.
    pub fn proc_id(&self) -> ProcId {
        self.inner.borrow().proc
    }

    /// Current virtual time (updated on every delivery to this Process).
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// The retry policy carried on the fabric parameters. Services use
    /// the application-level budgets (`fs_io_retries`, `fv_retries`,
    /// `stage_retries`); the syscall transport reads the rest itself.
    pub fn retry_policy(&self) -> fractos_net::RetryPolicy {
        self.inner.borrow().fabric.borrow().params().retry
    }

    /// Sets the congestion-control window: the maximum number of
    /// simultaneously outstanding syscalls (further calls queue FIFO).
    pub fn set_window(&self, window: u32) {
        self.inner.borrow_mut().window = window.max(1);
    }

    /// Issues an asynchronous syscall; `k` runs when the reply arrives.
    pub fn call(
        &self,
        sc: Syscall,
        k: impl FnOnce(&mut S, SyscallResult, &Fos<S>) + Send + 'static,
    ) {
        let mut inner = self.inner.borrow_mut();
        let token = inner.next_token;
        inner.next_token += 1;
        inner.conts.insert(token, Box::new(k));
        if inner.outstanding < inner.window {
            inner.outstanding += 1;
            inner.out.push(Out::Syscall { token, sc });
        } else {
            inner.backlog.push_back((token, sc));
        }
    }

    /// Issues a syscall and ignores its result.
    pub fn call_ignore(&self, sc: Syscall) {
        self.call(sc, |_, _, _| {});
    }

    /// Issues several syscalls concurrently and runs `k` once with all the
    /// results, in call order — the fan-in (`join`) combinator of the
    /// paper's promise/future library (§4).
    pub fn call_all(
        &self,
        calls: Vec<Syscall>,
        k: impl FnOnce(&mut S, Vec<SyscallResult>, &Fos<S>) + Send + 'static,
    ) {
        let n = calls.len();
        if n == 0 {
            // Degenerate join: complete via a null syscall so `k` still
            // runs from a continuation context.
            self.call(Syscall::Null, move |s, _res, fos| k(s, Vec::new(), fos));
            return;
        }
        struct Join<S> {
            slots: Vec<Option<SyscallResult>>,
            left: usize,
            #[allow(clippy::type_complexity)]
            k: Option<Box<dyn FnOnce(&mut S, Vec<SyscallResult>, &Fos<S>) + Send>>,
        }
        let join = Shared::named(
            "state",
            Join {
                slots: vec![None; n],
                left: n,
                k: Some(Box::new(k)),
            },
        );
        for (i, sc) in calls.into_iter().enumerate() {
            let join = join.clone();
            self.call(sc, move |s, res, fos| {
                let done = {
                    let mut j = join.borrow_mut();
                    j.slots[i] = Some(res);
                    j.left -= 1;
                    j.left == 0
                };
                if done {
                    let (k, slots) = {
                        let mut j = join.borrow_mut();
                        (j.k.take(), std::mem::take(&mut j.slots))
                    };
                    if let Some(k) = k {
                        // `left` hit zero, so every slot holds a result; a
                        // hole would mean a completion fired twice — fill it
                        // with a typed error instead of unwinding.
                        let results = slots
                            .into_iter()
                            .map(|r| {
                                r.unwrap_or(SyscallResult::Err(FosError::ControllerUnreachable))
                            })
                            .collect();
                        k(s, results, fos);
                    }
                }
            });
        }
    }

    /// Arms a local timer; `k` runs after `delay` of virtual time. Used by
    /// device adaptors to model device service times.
    pub fn sleep(&self, delay: SimDuration, k: impl FnOnce(&mut S, &Fos<S>) + Send + 'static) {
        self.arm_timer(delay, None, k);
    }

    /// Like [`Fos::sleep`], but labels the wait as device processing time
    /// for latency attribution: with span recording enabled, the interval
    /// becomes a `Device` span (e.g. `"gpu.exec"`, `"nvme.read"`) in the
    /// invoking request's trace. Identical to `sleep` when recording is off.
    pub fn sleep_dev(
        &self,
        delay: SimDuration,
        label: &'static str,
        k: impl FnOnce(&mut S, &Fos<S>) + Send + 'static,
    ) {
        self.arm_timer(delay, Some(label), k);
    }

    fn arm_timer(
        &self,
        delay: SimDuration,
        dev: Option<&'static str>,
        k: impl FnOnce(&mut S, &Fos<S>) + Send + 'static,
    ) {
        let mut inner = self.inner.borrow_mut();
        let token = inner.next_token;
        inner.next_token += 1;
        inner.timers.insert(token, Box::new(k));
        inner.out.push(Out::Timer { token, delay, dev });
    }

    /// True while the runtime's telemetry plane is enabled (refreshed on
    /// every delivery to this Process). Services use this to skip building
    /// expensive series names when nobody is sampling.
    pub fn telemetry_enabled(&self) -> bool {
        self.inner.borrow().telemetry_on
    }

    /// Records a telemetry counter delta under `series`. A no-op (no
    /// allocation, no queued output) while the telemetry plane is disabled.
    pub fn telemetry_count(&self, series: &str, delta: u64) {
        self.telemetry(series, TelemetryKind::Count(delta));
    }

    /// Records a telemetry gauge level under `series`. Gauge series must be
    /// single-writer (one Process per series name) for cross-backend
    /// determinism; see `fractos_sim::telemetry`. No-op while disabled.
    pub fn telemetry_gauge(&self, series: &str, value: u64) {
        self.telemetry(series, TelemetryKind::Gauge(value));
    }

    /// Records one telemetry sample (e.g. a request latency in nanoseconds)
    /// under `series`. No-op while disabled.
    pub fn telemetry_sample(&self, series: &str, value: u64) {
        self.telemetry(series, TelemetryKind::Sample(value));
    }

    fn telemetry(&self, series: &str, kind: TelemetryKind) {
        let mut inner = self.inner.borrow_mut();
        if inner.telemetry_on {
            inner.out.push(Out::Telemetry {
                series: series.to_string(),
                kind,
            });
        }
    }

    /// Marks the next syscall this Process posts as the root of a new trace:
    /// one top-level Request, one root span. Root creation is explicit —
    /// traffic outside an armed root (boot, background chatter) records no
    /// spans — so span trees correspond 1:1 with requests. Has no observable
    /// effect while span recording is disabled on the runtime.
    pub fn trace_root(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.cur = TraceCtx::NONE;
        inner.root_armed = true;
    }

    /// Allocates a buffer in this Process's (simulated) memory.
    pub fn mem_alloc(&self, size: u64) -> u64 {
        let inner = self.inner.borrow();
        let proc = inner.proc;
        let mem = inner.mem.clone();
        drop(inner);
        let addr = mem.borrow_mut().alloc(proc, size);
        addr
    }

    /// Allocates a buffer physically placed at a device endpoint (adaptors
    /// managing device memory, e.g. GPU buffers).
    pub fn mem_alloc_at(&self, size: u64, location: Endpoint) -> u64 {
        let inner = self.inner.borrow();
        let proc = inner.proc;
        let mem = inner.mem.clone();
        drop(inner);
        let addr = mem.borrow_mut().alloc_at(proc, size, location);
        addr
    }

    /// `memory_stat`: resolve a Memory capability backed by this Process's
    /// own memory to `(addr, off, size)`.
    pub fn memory_stat(
        &self,
        cid: Cid,
        k: impl FnOnce(&mut S, SyscallResult, &Fos<S>) + Send + 'static,
    ) {
        self.call(Syscall::MemoryStat { cid }, k);
    }

    /// The service-reply idiom: derive the received continuation Request
    /// with result arguments and invoke it (§3.4 — a reply *is* the
    /// invocation of a continuation).
    pub fn reply_via(&self, cont: Cid, imms: Vec<Payload>, caps: Vec<Cid>) {
        self.request_derive(cont, imms, caps, |_s, res, fos| {
            // A failed derivation means the continuation was revoked or its
            // holder died; there is nobody left to answer.
            if let SyscallResult::NewCid(cid) = res {
                fos.request_invoke(cid, |_, _, _| {});
            }
        });
    }

    /// Writes into this Process's own memory (ordinary local access, not a
    /// syscall).
    pub fn mem_write(&self, addr: u64, offset: u64, data: &[u8]) -> Result<(), FosError> {
        let inner = self.inner.borrow();
        let proc = inner.proc;
        let mem = inner.mem.clone();
        drop(inner);
        let r = mem.borrow_mut().write(proc, addr, offset, data);
        r
    }

    /// Reads from this Process's own memory. The bytes come back as a
    /// [`Payload`], so forwarding them into a reply or a derived Request
    /// costs a reference-count bump, not a copy.
    pub fn mem_read(&self, addr: u64, offset: u64, len: u64) -> Result<Payload, FosError> {
        let inner = self.inner.borrow();
        let proc = inner.proc;
        let mem = inner.mem.clone();
        drop(inner);
        let r = mem.borrow().read(proc, addr, offset, len);
        r.map(Payload::from)
    }

    /// Draws the fault-plan decision for the next operation of class `op`
    /// on the device this adaptor fronts. Deterministic (hashed from the
    /// plan seed and the per-device op index, not this Process's RNG);
    /// returns `None` when no plan names the device. Device adaptors call
    /// this once per media/launch operation, in their own serial order, so
    /// the sequence replays bit-identically on both runtime backends.
    pub fn device_fault(
        &self,
        device: Endpoint,
        op: fractos_net::DeviceOp,
    ) -> fractos_net::DeviceFaultOutcome {
        let inner = self.inner.borrow();
        let fabric = inner.fabric.clone();
        drop(inner);
        let outcome = fabric.borrow_mut().device_fault(device, op);
        outcome
    }

    // ---- Table 1 convenience wrappers -------------------------------

    /// `memory_create`: registers `[addr, addr+size)` and continues with the
    /// new Memory capability.
    pub fn memory_create(
        &self,
        addr: u64,
        size: u64,
        perms: Perms,
        k: impl FnOnce(&mut S, SyscallResult, &Fos<S>) + Send + 'static,
    ) {
        self.call(Syscall::MemoryCreate { addr, size, perms }, k);
    }

    /// Allocates a fresh buffer and registers it in one step, continuing
    /// with `(addr, cid)`.
    pub fn memory_create_new(
        &self,
        size: u64,
        perms: Perms,
        k: impl FnOnce(&mut S, u64, Result<Cid, FosError>, &Fos<S>) + Send + 'static,
    ) {
        let addr = self.mem_alloc(size);
        self.memory_create(addr, size, perms, move |s, res, fos| {
            // A successful MemoryCreate always mints a cid; an Ok reply
            // without one is a protocol violation, surfaced as a typed
            // error rather than a panic.
            let r = res
                .into_result()
                .and_then(|c| c.ok_or(FosError::WrongObjectKind));
            k(s, addr, r, fos);
        });
    }

    /// `memory_copy(src, dst)`.
    pub fn memory_copy(
        &self,
        src: Cid,
        dst: Cid,
        k: impl FnOnce(&mut S, SyscallResult, &Fos<S>) + Send + 'static,
    ) {
        self.call(Syscall::MemoryCopy { src, dst }, k);
    }

    /// `request_create` for a brand-new Request this Process provides.
    pub fn request_create_new(
        &self,
        tag: u64,
        imms: Vec<Payload>,
        caps: Vec<Cid>,
        k: impl FnOnce(&mut S, SyscallResult, &Fos<S>) + Send + 'static,
    ) {
        self.call(
            Syscall::RequestCreate {
                base: None,
                tag,
                imms,
                caps,
            },
            k,
        );
    }

    /// `request_create` deriving (refining) an existing Request.
    pub fn request_derive(
        &self,
        base: Cid,
        imms: Vec<Payload>,
        caps: Vec<Cid>,
        k: impl FnOnce(&mut S, SyscallResult, &Fos<S>) + Send + 'static,
    ) {
        self.call(
            Syscall::RequestCreate {
                base: Some(base),
                tag: 0,
                imms,
                caps,
            },
            k,
        );
    }

    /// `request_invoke(cid)`.
    pub fn request_invoke(
        &self,
        cid: Cid,
        k: impl FnOnce(&mut S, SyscallResult, &Fos<S>) + Send + 'static,
    ) {
        self.call(Syscall::RequestInvoke { cid }, k);
    }

    /// Publish a capability in the bootstrap registry.
    pub fn kv_put(
        &self,
        key: &str,
        cid: Cid,
        k: impl FnOnce(&mut S, SyscallResult, &Fos<S>) + Send + 'static,
    ) {
        self.call(
            Syscall::KvPut {
                key: key.to_string(),
                cid,
            },
            k,
        );
    }

    /// Look up a capability from the bootstrap registry.
    pub fn kv_get(
        &self,
        key: &str,
        k: impl FnOnce(&mut S, SyscallResult, &Fos<S>) + Send + 'static,
    ) {
        self.call(
            Syscall::KvGet {
                key: key.to_string(),
            },
            k,
        );
    }
}

/// The simulation actor hosting one Process: its [`Service`] logic plus the
/// channel to its Controller.
pub struct ProcessActor<S: Service> {
    service: S,
    fos: Fos<S>,
    proc: ProcId,
    endpoint: Endpoint,
    dir: Shared<Directory>,
    fabric: Shared<fractos_net::Fabric>,
    dead: bool,
    /// Outgoing wire sequence numbers on the syscall channel.
    seq_gen: SeqGen,
    /// Duplicate suppression for messages from the Controller.
    seen: DedupFilter,
}

/// Virtual time a Controller needs to notice a severed Process channel.
pub const CHANNEL_SEVER_DETECT: SimDuration = SimDuration::from_micros(10);

impl<S: Service> ProcessActor<S> {
    /// Creates the actor. `proc` and `endpoint` must match the directory
    /// registration (the testbed builder guarantees this).
    pub fn new(
        service: S,
        proc: ProcId,
        endpoint: Endpoint,
        dir: Shared<Directory>,
        fabric: Shared<fractos_net::Fabric>,
        mem: Shared<MemoryStore>,
    ) -> Self {
        let fos = Fos {
            inner: Shared::named(
                "inner",
                FosInner {
                    proc,
                    now: SimTime::ZERO,
                    next_token: 0,
                    conts: HashMap::new(),
                    timers: HashMap::new(),
                    out: Vec::new(),
                    outstanding: 0,
                    window: 256,
                    backlog: VecDeque::new(),
                    mem,
                    fabric: fabric.clone(),
                    telemetry_on: false,
                    cur: TraceCtx::NONE,
                    root_armed: false,
                    sc_ctx: HashMap::new(),
                    timer_ctx: HashMap::new(),
                },
            ),
        };
        ProcessActor {
            service,
            fos,
            proc,
            endpoint,
            dir,
            fabric,
            dead: false,
            seq_gen: SeqGen::new(),
            seen: DedupFilter::new(),
        }
    }

    /// Number of syscalls whose continuations are still pending (tests: a
    /// drained run must leave none behind).
    pub fn pending_syscalls(&self) -> usize {
        self.fos.inner.borrow().conts.len()
    }

    /// Number of backlogged (window-throttled) syscalls (tests).
    pub fn backlogged(&self) -> usize {
        self.fos.inner.borrow().backlog.len()
    }

    /// Read-only access to the service (harness inspection between events).
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Mutable access to the service (harness inspection between events).
    pub fn service_mut(&mut self) -> &mut S {
        &mut self.service
    }

    /// The user-API handle (harnesses use it to seed initial work).
    pub fn fos(&self) -> Fos<S> {
        self.fos.clone()
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let drained: Vec<Out> = {
                let mut inner = self.fos.inner.borrow_mut();
                std::mem::take(&mut inner.out)
            };
            if drained.is_empty() {
                return;
            }
            for out in drained {
                match out {
                    Out::Syscall { token, sc } => {
                        if ctx.spans_enabled() {
                            let (parent, rooting) = {
                                let mut inner = self.fos.inner.borrow_mut();
                                let rooting = inner.root_armed;
                                inner.root_armed = false;
                                (inner.cur, rooting)
                            };
                            // Spans are recorded only inside an active trace;
                            // roots come solely from `Fos::trace_root`.
                            if rooting || parent.is_some() {
                                let parent = if rooting { TraceCtx::NONE } else { parent };
                                let t = ctx.span(
                                    SpanKind::Syscall,
                                    sc.name(),
                                    parent,
                                    ctx.now(),
                                    ctx.now(),
                                );
                                self.fos.inner.borrow_mut().sc_ctx.insert(token, t);
                            }
                        }
                        self.post_syscall(ctx, token, sc);
                    }
                    Out::Telemetry { series, kind } => match kind {
                        TelemetryKind::Count(d) => ctx.telemetry_count(&series, d),
                        TelemetryKind::Gauge(v) => ctx.telemetry_gauge(&series, v),
                        TelemetryKind::Sample(v) => ctx.telemetry_sample(&series, v),
                    },
                    Out::Timer { token, delay, dev } => {
                        // A labeled sleep is device busy time: count it at
                        // arming, in virtual nanoseconds, so per-device
                        // utilization falls out of the window series.
                        if let Some(label) = dev {
                            if ctx.telemetry_enabled() {
                                let series = format!("dev.{label}.busy_ns");
                                ctx.telemetry_count(&series, delay.as_nanos());
                            }
                        }
                        if ctx.spans_enabled() {
                            let cur = self.fos.inner.borrow().cur;
                            let t = match dev {
                                // A labeled sleep models device time: the
                                // whole wait is a Device span (the timer
                                // fires exactly at its end).
                                Some(label) if cur.is_some() => ctx.span(
                                    SpanKind::Device,
                                    label,
                                    cur,
                                    ctx.now(),
                                    ctx.now() + delay,
                                ),
                                _ => cur,
                            };
                            if t.is_some() {
                                self.fos.inner.borrow_mut().timer_ctx.insert(token, t);
                            }
                        }
                        ctx.schedule_self(delay, ProcMsg::Timer { token });
                    }
                }
            }
        }
    }

    fn post_syscall(&mut self, ctx: &mut Ctx<'_>, token: u64, sc: Syscall) {
        let seq = self.seq_gen.next_seq();
        self.transmit_syscall(ctx, token, sc, seq, 0);
    }

    fn transmit_syscall(
        &mut self,
        ctx: &mut Ctx<'_>,
        token: u64,
        sc: Syscall,
        seq: u64,
        attempt: u32,
    ) {
        // A Process or Controller missing from the directory behaves like
        // an unreachable Controller: the QP errors out locally.
        let entry = {
            let dir = self.dir.borrow();
            dir.proc(self.proc)
                .and_then(|pe| dir.ctrl(pe.ctrl))
                .map(|ce| (ce.actor, ce.endpoint, ce.alive))
        };
        let Some((ctrl_actor, ctrl_ep, ctrl_alive)) = entry else {
            self.deliver_reply(token, SyscallResult::Err(FosError::ControllerUnreachable));
            return;
        };
        if !ctrl_alive {
            // The QP to a failed Controller errors out locally.
            self.deliver_reply(token, SyscallResult::Err(FosError::ControllerUnreachable));
            return;
        }
        let size = syscall_msg_size(&sc);
        let (faults, retry) = {
            let fabric = self.fabric.borrow();
            (fabric.has_faults(), fabric.params().retry)
        };
        if faults && attempt == 0 {
            // Last-resort request timeout: covers replies the Controller
            // could not get back to us despite its own retries.
            ctx.schedule_self(retry.syscall_timeout, ProcMsg::SyscallTimeout { token });
        }
        // Base span context of this syscall (set by `flush` when the call
        // was posted inside an active trace); `NONE` outside traces.
        let base = self
            .fos
            .inner
            .borrow()
            .sc_ctx
            .get(&token)
            .copied()
            .unwrap_or(TraceCtx::NONE);
        let outcome = self.fabric.borrow_mut().try_send_parts(
            ctx.now(),
            ctx.rng(),
            self.endpoint,
            ctrl_ep,
            size,
            TrafficClass::Control,
        );
        match outcome {
            Some((delay, prop)) => {
                // Two hop spans split the fabric delay: serialization (link
                // occupancy + queueing) then propagation. The envelope
                // carries the propagation span so the Controller parents
                // its own work under the arriving hop.
                let tctx = if base.is_some() {
                    let depart = ctx.now();
                    let ser_end = depart + delay.saturating_sub(prop);
                    let ser = ctx.span(SpanKind::FabricSer, "proc->ctrl", base, depart, ser_end);
                    ctx.span(
                        SpanKind::FabricProp,
                        "proc->ctrl",
                        ser,
                        ser_end,
                        depart + delay,
                    )
                } else {
                    TraceCtx::NONE
                };
                // A delivery slower than one RTO under active faults is
                // presumed lost and re-fired once; the Controller's
                // sequence filter absorbs the duplicate. The duplicate
                // rides the same trace context — no extra spans.
                if attempt == 0 && delay > retry.rto(0) && faults {
                    let dup = self.fabric.borrow_mut().try_send_parts(
                        ctx.now(),
                        ctx.rng(),
                        self.endpoint,
                        ctrl_ep,
                        size,
                        TrafficClass::Control,
                    );
                    if let Some((d2, _)) = dup {
                        ctx.send_after(
                            d2,
                            ctrl_actor,
                            CtrlMsg::FromProc {
                                proc: self.proc,
                                token,
                                sc: sc.clone(),
                                seq,
                                tctx,
                            },
                        );
                    }
                }
                ctx.send_after(
                    delay,
                    ctrl_actor,
                    CtrlMsg::FromProc {
                        proc: self.proc,
                        token,
                        sc,
                        seq,
                        tctx,
                    },
                );
            }
            None => {
                if attempt + 1 < retry.max_attempts {
                    if base.is_some() {
                        ctx.span(SpanKind::Fault, "drop", base, ctx.now(), ctx.now());
                        ctx.span(
                            SpanKind::Retransmit,
                            "proc->ctrl",
                            base,
                            ctx.now(),
                            ctx.now() + retry.rto(attempt),
                        );
                    }
                    ctx.schedule_self(
                        retry.rto(attempt),
                        ProcMsg::Retransmit {
                            token,
                            sc,
                            seq,
                            attempt: attempt + 1,
                        },
                    );
                } else {
                    // Retry budget exhausted: resolve the syscall with the
                    // §3.6 verdict instead of hanging the continuation.
                    self.deliver_reply(token, SyscallResult::Err(FosError::ControllerUnreachable));
                }
            }
        }
    }

    fn deliver_reply(&mut self, token: u64, result: SyscallResult) {
        let fos = self.fos.clone();
        let (cont, next) = {
            let mut inner = fos.inner.borrow_mut();
            let sctx = inner.sc_ctx.remove(&token);
            // A token with no continuation was already resolved (e.g. a
            // real reply racing a timeout verdict): nothing to do, and the
            // window accounting must not be decremented twice.
            let Some(cont) = inner.conts.remove(&token) else {
                return;
            };
            // Replies that arrive without a wire context (local error
            // verdicts, timeouts) still continue the issuing trace.
            if inner.cur.is_none() {
                if let Some(t) = sctx {
                    inner.cur = t;
                }
            }
            inner.outstanding = inner.outstanding.saturating_sub(1);
            let next = if inner.outstanding < inner.window {
                inner.backlog.pop_front()
            } else {
                None
            };
            if next.is_some() {
                inner.outstanding += 1;
            }
            (cont, next)
        };
        if let Some((tok, sc)) = next {
            fos.inner
                .borrow_mut()
                .out
                .push(Out::Syscall { token: tok, sc });
        }
        cont(&mut self.service, result, &fos);
    }
}

impl<S: Service> Actor for ProcessActor<S> {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        if self.dead {
            return;
        }
        // A message of any other type is a harness wiring bug; dropping it
        // is safer than unwinding mid-event (poisoned shared state).
        let Ok(msg) = msg.downcast::<ProcMsg>() else {
            return;
        };
        let msg = *msg;
        {
            // Each event starts outside any trace; the matching arm below
            // restores the context carried by the envelope or timer.
            let mut inner = self.fos.inner.borrow_mut();
            inner.now = ctx.now();
            inner.telemetry_on = ctx.telemetry_enabled();
            inner.cur = TraceCtx::NONE;
        }
        match msg {
            ProcMsg::Start => {
                let fos = self.fos.clone();
                self.service.on_start(&fos);
            }
            ProcMsg::FromCtrl { seq, tctx, msg } => {
                if !self.seen.fresh(seq) {
                    // Duplicate transmit of an already-delivered message.
                    return;
                }
                self.fos.inner.borrow_mut().cur = tctx;
                match msg {
                    CtrlToProc::Reply { token, result } => {
                        self.deliver_reply(token, result);
                    }
                    CtrlToProc::Deliver(req) => {
                        ctx.trace(format!("{} deliver tag={:#x}", self.proc, req.tag));
                        if tctx.is_some() {
                            let t = ctx.span(
                                SpanKind::Deliver,
                                "on_request",
                                tctx,
                                ctx.now(),
                                ctx.now(),
                            );
                            self.fos.inner.borrow_mut().cur = t;
                        }
                        let fos = self.fos.clone();
                        self.service.on_request(req, &fos);
                    }
                    CtrlToProc::Monitor(cb) => {
                        let fos = self.fos.clone();
                        self.service.on_monitor(cb, &fos);
                    }
                }
            }
            ProcMsg::Retransmit {
                token,
                sc,
                seq,
                attempt,
            } => {
                // Only retransmit while the syscall is still unresolved; a
                // timeout verdict may have raced the retry timer.
                if self.fos.inner.borrow().conts.contains_key(&token) {
                    self.transmit_syscall(ctx, token, sc, seq, attempt);
                }
            }
            ProcMsg::SyscallTimeout { token } => {
                if ctx.spans_enabled() && self.fos.inner.borrow().conts.contains_key(&token) {
                    let base = self
                        .fos
                        .inner
                        .borrow()
                        .sc_ctx
                        .get(&token)
                        .copied()
                        .unwrap_or(TraceCtx::NONE);
                    if base.is_some() {
                        ctx.span(
                            SpanKind::Fault,
                            "syscall-timeout",
                            base,
                            ctx.now(),
                            ctx.now(),
                        );
                    }
                }
                self.deliver_reply(token, SyscallResult::Err(FosError::ControllerUnreachable));
            }
            ProcMsg::Timer { token } => {
                let fos = self.fos.clone();
                let cont = {
                    let mut inner = fos.inner.borrow_mut();
                    if let Some(t) = inner.timer_ctx.remove(&token) {
                        inner.cur = t;
                    }
                    inner.timers.remove(&token)
                };
                if let Some(k) = cont {
                    k(&mut self.service, &fos);
                }
            }
            ProcMsg::Kill => {
                self.dead = true;
                self.dir.borrow_mut().kill_proc(self.proc);
                let mem_proc = self.proc;
                // The node's NIC tears the QP down; the Controller notices
                // after a short detection delay (§3.6).
                let ctrl_actor = {
                    let dir = self.dir.borrow();
                    dir.proc(self.proc)
                        .and_then(|pe| dir.ctrl(pe.ctrl))
                        .map(|c| c.actor)
                };
                if let Some(ctrl) = ctrl_actor {
                    ctx.send_after(
                        CHANNEL_SEVER_DETECT,
                        ctrl,
                        CtrlMsg::ProcChannelSevered { proc: mem_proc },
                    );
                }
                return;
            }
        }
        self.flush(ctx);
    }
}

/// A minimal service that does nothing; useful as a pure syscall client in
/// tests and benches when combined with [`ProcessActor::fos`].
#[derive(Debug, Default)]
pub struct NullService;

impl Service for NullService {
    fn on_request(&mut self, _req: IncomingRequest, _fos: &Fos<Self>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_fabric() -> Shared<fractos_net::Fabric> {
        Shared::named(
            "fabric",
            fractos_net::Fabric::new(
                fractos_net::Topology::paper_testbed(),
                fractos_net::NetParams::paper(),
            ),
        )
    }

    #[test]
    fn fos_queues_syscalls_beyond_window() {
        let mem = Shared::named("mem", MemoryStore::new());
        let inner = FosInner::<NullService> {
            proc: ProcId(0),
            now: SimTime::ZERO,
            next_token: 0,
            conts: HashMap::new(),
            timers: HashMap::new(),
            out: Vec::new(),
            outstanding: 0,
            window: 2,
            backlog: VecDeque::new(),
            mem,
            fabric: test_fabric(),
            telemetry_on: false,
            cur: TraceCtx::NONE,
            root_armed: false,
            sc_ctx: HashMap::new(),
            timer_ctx: HashMap::new(),
        };
        let fos = Fos {
            inner: Shared::named("inner", inner),
        };
        for _ in 0..5 {
            fos.call(Syscall::Null, |_, _, _| {});
        }
        let i = fos.inner.borrow();
        assert_eq!(i.out.len(), 2, "only window-many go out");
        assert_eq!(i.backlog.len(), 3);
        assert_eq!(i.conts.len(), 5);
    }

    #[test]
    fn mem_helpers_roundtrip() {
        let mem = Shared::named("mem", MemoryStore::new());
        let inner = FosInner::<NullService> {
            proc: ProcId(3),
            now: SimTime::ZERO,
            next_token: 0,
            conts: HashMap::new(),
            timers: HashMap::new(),
            out: Vec::new(),
            outstanding: 0,
            window: 8,
            backlog: VecDeque::new(),
            mem,
            fabric: test_fabric(),
            telemetry_on: false,
            cur: TraceCtx::NONE,
            root_armed: false,
            sc_ctx: HashMap::new(),
            timer_ctx: HashMap::new(),
        };
        let fos = Fos {
            inner: Shared::named("inner", inner),
        };
        let addr = fos.mem_alloc(16);
        fos.mem_write(addr, 2, b"xy").unwrap();
        assert_eq!(fos.mem_read(addr, 2, 2).unwrap(), b"xy");
        assert_eq!(fos.proc_id(), ProcId(3));
    }
}
